#include "lint/lock_regions.hpp"

#include <algorithm>
#include <string_view>

namespace astra::lint {
namespace {

bool IsIdent(const Token* token, std::string_view text) noexcept {
  return token->kind == TokKind::kIdentifier && token->text == text;
}

bool IsPunct(const Token* token, std::string_view text) noexcept {
  return token->kind == TokKind::kPunct && token->text == text;
}

const Token* At(const std::vector<const Token*>& code, std::size_t i) noexcept {
  static const Token kNull{TokKind::kPunct, "", 0, 0};
  return i < code.size() ? code[i] : &kNull;
}

bool IsGuardType(std::string_view text) noexcept {
  return text == "lock_guard" || text == "scoped_lock" || text == "unique_lock";
}

// Index of the ')' matching the '(' at `open`, or code.size() when unbalanced.
std::size_t MatchParen(const std::vector<const Token*>& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    if (IsPunct(code[i], ")") && --depth == 0) return i;
  }
  return code.size();
}

// Index past a balanced `<...>` starting at `open`, or `open` when it is not
// a template argument list we can match (a ';' or '{' before balance means
// the '<' was a comparison).
std::size_t SkipAngles(const std::vector<const Token*>& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "<")) ++depth;
    if (IsPunct(code[i], ">") && --depth == 0) return i + 1;
    if (IsPunct(code[i], ";") || IsPunct(code[i], "{")) break;
  }
  return open;
}

// Final identifier in code[begin, end): `slot.mutex` -> "mutex", `*mu` -> "mu".
std::string LastIdentIn(const std::vector<const Token*>& code, std::size_t begin,
                        std::size_t end) {
  std::string last;
  for (std::size_t i = begin; i < end; ++i) {
    if (code[i]->kind == TokKind::kIdentifier) last = code[i]->text;
  }
  return last;
}

constexpr std::string_view kAnnotationMacros[] = {
    "ASTRA_GUARDED_BY", "ASTRA_REQUIRES", "ASTRA_EXCLUDES", "ASTRA_BLOCKING"};

bool IsAnnotationMacro(std::string_view text) noexcept {
  return std::find(std::begin(kAnnotationMacros), std::end(kAnnotationMacros),
                   text) != std::end(kAnnotationMacros);
}

// Function name an annotation at code[macro] is attached to: walk left over
// trailing specifiers (`const`, `noexcept`, ...) and earlier annotations to
// the ')' closing the parameter list, then name the identifier before its
// '('.  Empty when the shape does not match (e.g. the macro's own #define).
std::string FunctionNameBefore(const std::vector<const Token*>& code,
                               std::size_t macro) {
  std::size_t j = macro;
  while (j > 0) {
    const Token* prev = code[j - 1];
    if (IsIdent(prev, "const") || IsIdent(prev, "noexcept") ||
        IsIdent(prev, "override") || IsIdent(prev, "final") ||
        (prev->kind == TokKind::kIdentifier && IsAnnotationMacro(prev->text))) {
      --j;
      continue;
    }
    if (!IsPunct(prev, ")")) return {};
    // Match the ')' back to its '('.  An annotation's own argument list was
    // already skipped above because the macro name precedes it.
    int depth = 0;
    std::size_t open = j - 1;
    while (true) {
      if (IsPunct(code[open], ")")) ++depth;
      if (IsPunct(code[open], "(") && --depth == 0) break;
      if (open == 0) return {};
      --open;
    }
    if (open == 0 || code[open - 1]->kind != TokKind::kIdentifier) return {};
    if (IsAnnotationMacro(code[open - 1]->text)) {
      j = open - 1;  // earlier annotation: keep walking left
      continue;
    }
    return code[open - 1]->text;
  }
  return {};
}

}  // namespace

std::vector<const Token*> CodeTokens(const LexedFile& lexed) {
  std::vector<const Token*> code;
  code.reserve(lexed.tokens.size());
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokKind::kComment) code.push_back(&token);
  }
  return code;
}

LockAnnotations HarvestLockAnnotations(const std::vector<const Token*>& code) {
  LockAnnotations out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier) continue;

    if (token->text == "ASTRA_GUARDED_BY") {
      if (i == 0 || code[i - 1]->kind != TokKind::kIdentifier) continue;
      if (!IsPunct(At(code, i + 1), "(")) continue;
      const std::size_t close = MatchParen(code, i + 1);
      if (close >= code.size()) continue;
      std::string key = LastIdentIn(code, i + 2, close);
      if (!key.empty()) out.guarded[code[i - 1]->text] = std::move(key);
      i = close;
      continue;
    }
    if (token->text == "ASTRA_EXCLUDES") {
      if (!IsPunct(At(code, i + 1), "(")) continue;
      const std::size_t close = MatchParen(code, i + 1);
      if (close >= code.size()) continue;
      const std::string key = LastIdentIn(code, i + 2, close);
      const std::string fn = FunctionNameBefore(code, i);
      if (!key.empty() && !fn.empty()) out.excludes[fn].insert(key);
      i = close;
      continue;
    }
    if (token->text == "ASTRA_BLOCKING") {
      const std::string fn = FunctionNameBefore(code, i);
      if (!fn.empty()) out.blocking.insert(fn);
    }
  }
  return out;
}

LockScan ScanLockRegions(const std::vector<const Token*>& code) {
  LockScan scan;

  struct Scope {
    bool deferred = false;        // lambda body outside a cv-wait call
    int ns_components = 0;        // namespace names this brace pushed
    std::size_t open_index = 0;
    std::vector<std::size_t> regions;  // region indices closing at this '}'
  };
  struct Paren {
    bool is_wait = false;              // `.wait(` / `.wait_for(` / ...
    std::vector<std::size_t> guards;   // control-header guard regions
  };

  std::vector<Scope> scopes;
  std::vector<Paren> parens;
  std::vector<std::size_t> active;        // open region indices
  std::vector<std::string> ns_path;
  std::map<std::size_t, bool> lambda_body_at;  // '{' index -> deferred?
  std::map<std::string, std::vector<std::size_t>> guard_regions;
  std::vector<std::size_t> awaiting_body;  // header guards awaiting body
  std::vector<std::pair<std::string, int>> pending_requires;

  auto qualify = [&](const std::string& key) {
    std::string qualified;
    for (const std::string& ns : ns_path) qualified += ns + "::";
    return qualified + key;
  };
  auto close_region = [&](std::size_t idx, std::size_t end) {
    if (scan.regions[idx].end != code.size()) return;  // already closed
    scan.regions[idx].end = end;
    active.erase(std::remove(active.begin(), active.end(), idx), active.end());
  };
  // Open one region per key; edges only against regions held BEFORE this
  // declaration (a multi-mutex scoped_lock is deadlock-free by contract, so
  // its members impose no order on each other).
  auto open_regions = [&](const std::vector<std::string>& keys, int line,
                          std::size_t begin) {
    const std::vector<std::size_t> held = active;
    std::vector<std::size_t> opened;
    for (const std::string& key : keys) {
      LockRegion region;
      region.mutex = key;
      region.qualified = qualify(key);
      region.begin = begin;
      region.end = code.size();
      region.line = line;
      for (const std::size_t h : held) {
        if (scan.regions[h].qualified != region.qualified) {
          scan.edges.push_back({scan.regions[h].qualified, region.qualified, line});
        }
      }
      scan.regions.push_back(std::move(region));
      active.push_back(scan.regions.size() - 1);
      opened.push_back(scan.regions.size() - 1);
    }
    return opened;
  };
  auto attach = [&](const std::vector<std::size_t>& opened) {
    if (!parens.empty()) {
      parens.back().guards.insert(parens.back().guards.end(), opened.begin(),
                                  opened.end());
    } else if (!scopes.empty()) {
      scopes.back().regions.insert(scopes.back().regions.end(), opened.begin(),
                                   opened.end());
    }
    // File scope (no brace open): the region runs to EOF.
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];

    if (IsPunct(token, "{")) {
      Scope scope;
      scope.open_index = i;
      const auto lambda = lambda_body_at.find(i);
      if (lambda != lambda_body_at.end()) {
        scope.deferred = lambda->second;
      } else {
        // `namespace [inline] a::b {` — push the name components.
        std::size_t back = i;
        while (back >= 1 && (code[back - 1]->kind == TokKind::kIdentifier ||
                             IsPunct(code[back - 1], "::"))) {
          --back;
          if (IsIdent(code[back], "namespace")) break;
        }
        if (back < i && IsIdent(code[back], "namespace")) {
          for (std::size_t k = back + 1; k < i; ++k) {
            if (code[k]->kind == TokKind::kIdentifier) {
              ns_path.push_back(code[k]->text);
              ++scope.ns_components;
            }
          }
        }
      }
      if (!awaiting_body.empty()) {
        scope.regions = std::move(awaiting_body);
        awaiting_body.clear();
      }
      for (const auto& [key, line] : pending_requires) {
        const std::vector<std::size_t> opened = open_regions({key}, line, i);
        scope.regions.insert(scope.regions.end(), opened.begin(), opened.end());
      }
      pending_requires.clear();
      scopes.push_back(std::move(scope));
      continue;
    }

    if (IsPunct(token, "}")) {
      if (scopes.empty()) continue;
      Scope scope = std::move(scopes.back());
      scopes.pop_back();
      for (const std::size_t idx : scope.regions) close_region(idx, i);
      if (scope.deferred) scan.deferred.emplace_back(scope.open_index + 1, i);
      for (int k = 0; k < scope.ns_components; ++k) ns_path.pop_back();
      continue;
    }

    if (IsPunct(token, "(")) {
      Paren paren;
      if (i >= 2 && (IsPunct(code[i - 2], ".") || IsPunct(code[i - 2], "->")) &&
          (IsIdent(code[i - 1], "wait") || IsIdent(code[i - 1], "wait_for") ||
           IsIdent(code[i - 1], "wait_until"))) {
        paren.is_wait = true;
      }
      parens.push_back(std::move(paren));
      continue;
    }

    if (IsPunct(token, ")")) {
      if (parens.empty()) continue;
      Paren paren = std::move(parens.back());
      parens.pop_back();
      if (!paren.guards.empty()) {
        // `if (guard; cond)` header closed: the body (next '{', or the
        // single statement up to the next top-level ';') owns the regions.
        awaiting_body.insert(awaiting_body.end(), paren.guards.begin(),
                             paren.guards.end());
      }
      continue;
    }

    if (IsPunct(token, ";") && parens.empty()) {
      for (const std::size_t idx : awaiting_body) close_region(idx, i);
      awaiting_body.clear();
      pending_requires.clear();
      continue;
    }

    if (IsPunct(token, "[")) {
      // Lambda introducer: the previous code token cannot continue an
      // expression (then `[` would be a subscript).
      const Token* prev = i > 0 ? code[i - 1] : nullptr;
      const bool introducer =
          prev == nullptr || IsPunct(prev, "(") || IsPunct(prev, ",") ||
          IsPunct(prev, "{") || IsPunct(prev, "}") || IsPunct(prev, ";") ||
          IsPunct(prev, "=") || IsPunct(prev, "?") || IsPunct(prev, ":") ||
          IsPunct(prev, "<") || IsIdent(prev, "return");
      if (!introducer) continue;
      int depth = 0;
      std::size_t close = i;
      for (; close < code.size(); ++close) {
        if (IsPunct(code[close], "[")) ++depth;
        if (IsPunct(code[close], "]") && --depth == 0) break;
      }
      if (close >= code.size()) continue;
      std::size_t j = close + 1;
      if (IsPunct(At(code, j), "(")) {
        j = MatchParen(code, j);
        if (j >= code.size()) continue;
        ++j;
      }
      // Specifiers / trailing return between params and body, bounded.
      bool found = false;
      for (std::size_t steps = 0; steps < 16 && j < code.size(); ++steps, ++j) {
        if (IsPunct(code[j], "{")) {
          found = true;
          break;
        }
        if (code[j]->kind != TokKind::kIdentifier && !IsPunct(code[j], "->") &&
            !IsPunct(code[j], "::") && !IsPunct(code[j], "<") &&
            !IsPunct(code[j], ">") && !IsPunct(code[j], "*") &&
            !IsPunct(code[j], "&")) {
          break;  // not a lambda after all
        }
      }
      if (!found) continue;
      const bool in_wait = std::any_of(parens.begin(), parens.end(),
                                       [](const Paren& p) { return p.is_wait; });
      lambda_body_at[j] = !in_wait;
      continue;
    }

    if (token->kind != TokKind::kIdentifier) continue;

    if (token->text == "ASTRA_REQUIRES" && IsPunct(At(code, i + 1), "(")) {
      const std::size_t close = MatchParen(code, i + 1);
      if (close >= code.size()) continue;
      std::string key = LastIdentIn(code, i + 2, close);
      if (!key.empty()) pending_requires.emplace_back(std::move(key), token->line);
      i = close;
      continue;
    }
    if (IsAnnotationMacro(token->text)) {
      // Skip the argument list so it never perturbs the paren stack.
      if (IsPunct(At(code, i + 1), "(")) {
        const std::size_t close = MatchParen(code, i + 1);
        if (close < code.size()) i = close;
      }
      continue;
    }

    // RAII guard declaration: [std ::] guard_type [<...>] name ( args ) —
    // also `if (guard_type name(mu); ...)` header forms.
    if (IsGuardType(token->text)) {
      const Token* prev = i > 0 ? code[i - 1] : nullptr;
      if (prev != nullptr && (IsPunct(prev, ".") || IsPunct(prev, "->"))) continue;
      std::size_t j = i + 1;
      if (IsPunct(At(code, j), "<")) {
        const std::size_t past = SkipAngles(code, j);
        if (past == j) continue;
        j = past;
      }
      if (At(code, j)->kind != TokKind::kIdentifier) continue;
      const std::string guard_name = code[j]->text;
      if (!IsPunct(At(code, j + 1), "(")) continue;  // parameter, alias, ...
      const std::size_t open = j + 1;
      const std::size_t close = MatchParen(code, open);
      if (close >= code.size()) continue;
      // Argument keys: final identifier of each top-level comma segment.
      std::vector<std::string> keys;
      bool deferred_lock = false;
      std::size_t seg = open + 1;
      int depth = 0;
      for (std::size_t k = open + 1; k <= close; ++k) {
        if (IsPunct(code[k], "(") || IsPunct(code[k], "<")) ++depth;
        if (IsPunct(code[k], ")") && k < close) --depth;
        if (IsPunct(code[k], ">")) --depth;
        const bool split =
            k == close || (depth == 0 && IsPunct(code[k], ","));
        if (!split) continue;
        std::string key = LastIdentIn(code, seg, k);
        seg = k + 1;
        if (key.empty()) continue;
        if (key == "defer_lock") {
          deferred_lock = true;  // not locked at construction
          continue;
        }
        if (key == "adopt_lock" || key == "try_to_lock") continue;
        keys.push_back(std::move(key));
      }
      if (!deferred_lock && !keys.empty()) {
        const std::vector<std::size_t> opened =
            open_regions(keys, token->line, i);
        attach(opened);
        auto& known = guard_regions[guard_name];
        known.insert(known.end(), opened.begin(), opened.end());
      }
      i = close;
      continue;
    }

    // Early `guard.unlock()` ends its regions; `guard.lock()` reopens them.
    if ((token->text == "unlock" || token->text == "lock") && i >= 2 &&
        (IsPunct(code[i - 1], ".") || IsPunct(code[i - 1], "->")) &&
        code[i - 2]->kind == TokKind::kIdentifier &&
        IsPunct(At(code, i + 1), "(") && IsPunct(At(code, i + 2), ")")) {
      const auto known = guard_regions.find(code[i - 2]->text);
      if (known == guard_regions.end()) continue;
      if (token->text == "unlock") {
        for (const std::size_t idx : known->second) close_region(idx, i);
        continue;
      }
      // Relock: new regions with the original keys, scoped to the innermost
      // open brace.
      std::vector<std::string> keys;
      for (const std::size_t idx : known->second) {
        if (std::find(keys.begin(), keys.end(), scan.regions[idx].mutex) ==
            keys.end()) {
          keys.push_back(scan.regions[idx].mutex);
        }
      }
      const std::vector<std::size_t> opened =
          open_regions(keys, token->line, i);
      if (!scopes.empty()) {
        scopes.back().regions.insert(scopes.back().regions.end(),
                                     opened.begin(), opened.end());
      }
      known->second = opened;
    }
  }
  return scan;
}

namespace {

bool MaskedAt(const LockScan& scan, const LockRegion& region,
              std::size_t index) {
  for (const auto& [begin, end] : scan.deferred) {
    if (begin > region.begin && index >= begin && index < end) return true;
  }
  return false;
}

}  // namespace

bool InRegionOf(const LockScan& scan, std::size_t index,
                const std::string& mutex_key) {
  for (const LockRegion& region : scan.regions) {
    if (region.mutex == mutex_key && index >= region.begin &&
        index < region.end && !MaskedAt(scan, region, index)) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> OpenMutexesAt(const LockScan& scan,
                                       std::size_t index) {
  std::vector<std::string> open;
  for (const LockRegion& region : scan.regions) {
    if (index >= region.begin && index < region.end &&
        !MaskedAt(scan, region, index)) {
      open.push_back(region.mutex);
    }
  }
  std::sort(open.begin(), open.end());
  open.erase(std::unique(open.begin(), open.end()), open.end());
  return open;
}

}  // namespace astra::lint
