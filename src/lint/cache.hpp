// Per-file analysis facts and the incremental lint database.
//
// The v2 engine splits analysis into facts it can persist: everything the
// GLOBAL rules (lock-order, arch-upward-include) and cross-file features
// (paired headers, include graph) need from a file is harvested once and
// stored next to a content hash.  On the next run an unchanged file is
// never lexed again — its facts come from the database — and its per-file
// diagnostics replay only when the environment hash (rule-set version,
// report-linked bit, paired-header facts, global annotation maps) also
// matches.  Global rules always recompute, from facts alone, so a change in
// one file can introduce a lock-order cycle without invalidating others.
//
// The database is a versioned line-oriented text file; unknown versions and
// parse errors load as an empty cache (worst case: a full re-lex, never a
// wrong diagnostic).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/lexer.hpp"
#include "lint/lock_regions.hpp"

namespace astra::lint {

// Everything the engine needs from a file WITHOUT its token stream.
struct FileFacts {
  std::vector<std::pair<int, std::string>> quoted_includes;  // line, path
  LockAnnotations annotations;
  std::vector<LockEdge> lock_edges;              // namespace-qualified keys
  std::map<int, std::set<std::string>> allows;   // line -> allowed rule ids
  std::vector<std::string> unordered_names;      // for paired-.cpp consumers
};

// Harvest facts from a lexed file.  `scope_path` only scopes the harvested
// suppression diagnostics' rule-id validation (none today — kept for parity
// with ParseSuppressions' signature).
[[nodiscard]] FileFacts HarvestFileFacts(const LexedFile& lexed);

// Canonical one-string form; input to environment hashes.
[[nodiscard]] std::string SerializeFacts(const FileFacts& facts);

struct CacheEntry {
  std::string scope_path;   // post-override rule-scoping path
  std::uint64_t content_hash = 0;
  std::uint64_t env_hash = 0;
  FileFacts facts;
  // Per-file rule diagnostics, post-suppression (global rules recompute).
  std::vector<Diagnostic> diagnostics;
};

struct LintCache {
  std::map<std::string, CacheEntry> entries;  // keyed by disk path
};

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

// FNV-1a over bytes; chain hashes by passing the previous value as `seed`.
[[nodiscard]] std::uint64_t HashBytes(std::string_view bytes,
                                      std::uint64_t seed = kFnvOffset) noexcept;

// Load `path` into `cache`.  Missing, unreadable, version-mismatched, or
// corrupt databases yield an empty cache and return false.
bool LoadLintCache(const std::string& path, LintCache& cache);

// Persist the cache; returns false on I/O failure.
bool SaveLintCache(const std::string& path, const LintCache& cache);

}  // namespace astra::lint
