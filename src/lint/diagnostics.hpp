// Rule catalogue and diagnostic record shared by the rule implementations,
// the engine, and the CLI renderers.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace astra::lint {

// Every rule astra-lint enforces.  Order here is the order `--list-rules`
// prints and the order the DESIGN.md catalogue documents.
enum class Rule {
  kDetRandom,         // wall-clock / libc randomness outside the sim clock
  kDetUnorderedIter,  // hash-order iteration in determinism-scoped files
  kDetPointerKey,     // pointer-keyed ordered containers (ASLR order)
  kSerRawBytes,       // raw byte (de)serialization outside util/binio
  kErrCatchAll,       // bare catch (...)
  kErrExit,           // exit()/abort() outside src/tools/
  kErrIgnoredStatus,  // discarded status from ingest/checkpoint APIs
  kHdrPragmaOnce,     // header missing #pragma once
  kHdrUsingNamespace, // using namespace at header scope
  kPerfStringByValue, // by-value std::string parameter on a hot-path signature
  kBadSuppression,    // malformed allow() suppression comment
  kLockGuardedField,  // ASTRA_GUARDED_BY member touched outside its mutex
  kLockBlockingCall,  // blocking / EXCLUDES call inside an open lock region
  kLockOrder,         // cycle in the cross-TU lock acquisition graph
  kArchUpwardInclude, // include edge the layer matrix forbids
};

inline constexpr int kRuleCount = 15;

// Bumped whenever rule behavior changes; part of the incremental cache's
// environment hash so stale databases never replay old diagnostics.
inline constexpr int kRuleSetVersion = 2;

struct RuleInfo {
  Rule rule;
  std::string_view id;       // stable kebab-case id used in allow(...)
  std::string_view summary;  // one-line description for --list-rules
};

inline constexpr std::array<RuleInfo, kRuleCount> kRules = {{
    {Rule::kDetRandom, "det-random",
     "std::rand/srand, time(nullptr), system_clock::now, random_device are "
     "banned outside util/sim_time (stream/ may read wall clocks for polling)"},
    {Rule::kDetUnorderedIter, "det-unordered-iter",
     "no range-for or .begin() iteration over unordered_map/unordered_set in "
     "core/, stream/, or files reachable from the report renderer"},
    {Rule::kDetPointerKey, "det-pointer-key",
     "std::map/std::set keyed by a raw pointer iterate in allocation order"},
    {Rule::kSerRawBytes, "ser-raw-bytes",
     "memcpy/reinterpret_cast/fwrite in checkpoint paths (stream/, "
     "util/binio*) must go through util/binio readers and writers"},
    {Rule::kErrCatchAll, "err-catch-all", "bare catch (...) swallows failures"},
    {Rule::kErrExit, "err-exit",
     "exit()/abort() outside src/tools/ kills the embedding process"},
    {Rule::kErrIgnoredStatus, "err-ignored-status",
     "status result of an ingest/checkpoint API discarded as a statement"},
    {Rule::kHdrPragmaOnce, "hdr-pragma-once", "header is missing #pragma once"},
    {Rule::kHdrUsingNamespace, "hdr-using-namespace",
     "using namespace at header scope leaks into every includer"},
    {Rule::kPerfStringByValue, "perf-string-by-value",
     "by-value std::string parameter in logs/ or core/ copies on every call — "
     "take std::string_view or const std::string&"},
    {Rule::kBadSuppression, "bad-suppression",
     "an allow() suppression needs a known rule and a non-empty justification"},
    {Rule::kLockGuardedField, "lock-guarded-field",
     "member annotated ASTRA_GUARDED_BY(mu) accessed outside a lock region of "
     "mu (and outside any ASTRA_REQUIRES(mu) function body)"},
    {Rule::kLockBlockingCall, "lock-blocking-call",
     "call that can block indefinitely (ASTRA_BLOCKING, sleep_for/until, or an "
     "ASTRA_EXCLUDES(mu) function with mu held) made inside a lock region"},
    {Rule::kLockOrder, "lock-order",
     "the cross-TU lock acquisition graph has a cycle — two call paths take "
     "the same mutexes in opposite orders"},
    {Rule::kArchUpwardInclude, "arch-upward-include",
     "quoted include crosses the layer matrix upward (e.g. core/ including "
     "serve/) — lower layers must not depend on higher ones"},
}};

[[nodiscard]] constexpr std::string_view RuleId(Rule rule) noexcept {
  for (const RuleInfo& info : kRules) {
    if (info.rule == rule) return info.id;
  }
  return "unknown";
}

struct Diagnostic {
  std::string file;  // repo-relative path as scanned
  int line = 0;
  Rule rule = Rule::kBadSuppression;
  std::string message;
};

}  // namespace astra::lint
