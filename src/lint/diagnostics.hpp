// Rule catalogue and diagnostic record shared by the rule implementations,
// the engine, and the CLI renderers.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace astra::lint {

// Every rule astra-lint enforces.  Order here is the order `--list-rules`
// prints and the order the DESIGN.md catalogue documents.
enum class Rule {
  kDetRandom,         // wall-clock / libc randomness outside the sim clock
  kDetUnorderedIter,  // hash-order iteration in determinism-scoped files
  kDetPointerKey,     // pointer-keyed ordered containers (ASLR order)
  kSerRawBytes,       // raw byte (de)serialization outside util/binio
  kErrCatchAll,       // bare catch (...)
  kErrExit,           // exit()/abort() outside src/tools/
  kErrIgnoredStatus,  // discarded status from ingest/checkpoint APIs
  kHdrPragmaOnce,     // header missing #pragma once
  kHdrUsingNamespace, // using namespace at header scope
  kPerfStringByValue, // by-value std::string parameter on a hot-path signature
  kBadSuppression,    // malformed allow() suppression comment
};

inline constexpr int kRuleCount = 11;

struct RuleInfo {
  Rule rule;
  std::string_view id;       // stable kebab-case id used in allow(...)
  std::string_view summary;  // one-line description for --list-rules
};

inline constexpr std::array<RuleInfo, kRuleCount> kRules = {{
    {Rule::kDetRandom, "det-random",
     "std::rand/srand, time(nullptr), system_clock::now, random_device are "
     "banned outside util/sim_time (stream/ may read wall clocks for polling)"},
    {Rule::kDetUnorderedIter, "det-unordered-iter",
     "no range-for or .begin() iteration over unordered_map/unordered_set in "
     "core/, stream/, or files reachable from the report renderer"},
    {Rule::kDetPointerKey, "det-pointer-key",
     "std::map/std::set keyed by a raw pointer iterate in allocation order"},
    {Rule::kSerRawBytes, "ser-raw-bytes",
     "memcpy/reinterpret_cast/fwrite in checkpoint paths (stream/, "
     "util/binio*) must go through util/binio readers and writers"},
    {Rule::kErrCatchAll, "err-catch-all", "bare catch (...) swallows failures"},
    {Rule::kErrExit, "err-exit",
     "exit()/abort() outside src/tools/ kills the embedding process"},
    {Rule::kErrIgnoredStatus, "err-ignored-status",
     "status result of an ingest/checkpoint API discarded as a statement"},
    {Rule::kHdrPragmaOnce, "hdr-pragma-once", "header is missing #pragma once"},
    {Rule::kHdrUsingNamespace, "hdr-using-namespace",
     "using namespace at header scope leaks into every includer"},
    {Rule::kPerfStringByValue, "perf-string-by-value",
     "by-value std::string parameter in logs/ or core/ copies on every call — "
     "take std::string_view or const std::string&"},
    {Rule::kBadSuppression, "bad-suppression",
     "an allow() suppression needs a known rule and a non-empty justification"},
}};

[[nodiscard]] constexpr std::string_view RuleId(Rule rule) noexcept {
  for (const RuleInfo& info : kRules) {
    if (info.rule == rule) return info.id;
  }
  return "unknown";
}

struct Diagnostic {
  std::string file;  // repo-relative path as scanned
  int line = 0;
  Rule rule = Rule::kBadSuppression;
  std::string message;
};

}  // namespace astra::lint
