#include "lint/lexer.hpp"

#include <cctype>

namespace astra::lint {
namespace {

bool IsIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Phase-2 translation: delete backslash-newline splices while recording the
// original 1-based line of every surviving byte.
void Splice(std::string_view source, std::string& out, std::vector<int>& line_of) {
  out.reserve(source.size());
  line_of.reserve(source.size());
  int line = 1;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\\' && i + 1 < source.size() &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < source.size() && source[i + 2] == '\n'))) {
      i += source[i + 1] == '\r' ? 2 : 1;
      ++line;
      continue;
    }
    out.push_back(c);
    line_of.push_back(line);
    if (c == '\n') ++line;
  }
}

// Raw-string prefix (`R`, `u8R`, `uR`, `UR`, `LR`) or plain encoding prefix.
bool IsRawPrefix(std::string_view ident) noexcept {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

bool IsEncodingPrefix(std::string_view ident) noexcept {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) { Splice(source, text_, line_of_); }

  LexedFile Run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        LexString(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        LexNumber();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      LexPunct();
    }
    return std::move(result_);
  }

 private:
  char Peek(std::size_t ahead) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  int LineAt(std::size_t pos) const noexcept {
    if (line_of_.empty()) return 1;
    return line_of_[pos < line_of_.size() ? pos : line_of_.size() - 1];
  }

  void Emit(TokKind kind, std::size_t begin, std::size_t end) {
    Token token;
    token.kind = kind;
    token.text.assign(text_, begin, end - begin);
    token.line = LineAt(begin);
    token.end_line = LineAt(end == begin ? begin : end - 1);
    result_.tokens.push_back(std::move(token));
  }

  void LexLineComment() {
    const std::size_t begin = pos_ + 2;
    std::size_t end = text_.find('\n', begin);
    if (end == std::string::npos) end = text_.size();
    Emit(TokKind::kComment, begin, end);
    pos_ = end;
  }

  void LexBlockComment() {
    const std::size_t begin = pos_ + 2;
    std::size_t end = text_.find("*/", begin);
    std::size_t resume;
    if (end == std::string::npos) {
      end = text_.size();
      resume = end;
      result_.had_unterminated = true;
    } else {
      resume = end + 2;
    }
    Emit(TokKind::kComment, begin, end);
    pos_ = resume;
  }

  // Whole `#...` logical line (splices already applied).  The directive is
  // recorded but its tokens are NOT pushed into the code stream: `#pragma
  // once` and `#include <sys/time.h>` must never look like calls to rules.
  void LexDirective() {
    const int line = LineAt(pos_);
    ++pos_;  // '#'
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
    const std::size_t name_begin = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    Directive directive;
    directive.name.assign(text_, name_begin, pos_ - name_begin);
    directive.line = line;
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;

    std::size_t end = text_.find('\n', pos_);
    if (end == std::string::npos) end = text_.size();
    // Comments after the argument belong to the comment stream (suppression
    // directives may trail a #include).
    std::size_t arg_end = end;
    const std::size_t comment = text_.find("//", pos_);
    if (comment != std::string::npos && comment < end) arg_end = comment;

    std::string_view arg(text_.data() + pos_, arg_end - pos_);
    while (!arg.empty() &&
           (arg.back() == ' ' || arg.back() == '\t' || arg.back() == '\r')) {
      arg.remove_suffix(1);
    }
    if (directive.name == "include" && arg.size() >= 2) {
      if (arg.front() == '"' && arg.back() == '"') {
        directive.quoted_include = true;
        directive.argument = std::string(arg.substr(1, arg.size() - 2));
      } else if (arg.front() == '<' && arg.back() == '>') {
        directive.argument = std::string(arg.substr(1, arg.size() - 2));
      } else {
        directive.argument = std::string(arg);
      }
    } else {
      directive.argument = std::string(arg);
    }
    result_.directives.push_back(std::move(directive));
    pos_ = arg_end;  // re-lex any trailing comment normally
    at_line_start_ = false;
  }

  void LexString(bool raw) {
    if (raw) {
      LexRawString();
      return;
    }
    const std::size_t begin = ++pos_;  // past opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '"' || c == '\n') break;  // newline: unterminated, resync
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] == '\n') result_.had_unterminated = true;
    Emit(TokKind::kString, begin, pos_);
    if (pos_ < text_.size() && text_[pos_] == '"') ++pos_;
  }

  void LexRawString() {
    // At `"` of R"delim( ... )delim".
    const std::size_t quote = pos_;
    std::size_t paren = quote + 1;
    while (paren < text_.size() && text_[paren] != '(') ++paren;
    const std::string delim = text_.substr(quote + 1, paren - quote - 1);
    const std::string closer = ")" + delim + "\"";
    const std::size_t body = paren + 1;
    std::size_t end = text_.find(closer, body);
    std::size_t resume;
    if (end == std::string::npos || paren >= text_.size()) {
      end = text_.size();
      resume = end;
      result_.had_unterminated = true;
    } else {
      resume = end + closer.size();
    }
    Emit(TokKind::kString, body < end ? body : end, end);
    pos_ = resume;
  }

  void LexCharLiteral() {
    const std::size_t begin = ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\'' || c == '\n') break;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] == '\n') result_.had_unterminated = true;
    Emit(TokKind::kCharLiteral, begin, pos_);
    if (pos_ < text_.size() && text_[pos_] == '\'') ++pos_;
  }

  void LexNumber() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' || c == '_') {
        ++pos_;
        continue;
      }
      // Digit separator: 1'000'000 — a quote BETWEEN digit-ish characters.
      if (c == '\'' && pos_ + 1 < text_.size() &&
          std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])) != 0) {
        pos_ += 2;
        continue;
      }
      // Exponent sign: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, begin, pos_);
  }

  void LexIdentifierOrLiteralPrefix() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    const std::string_view ident(text_.data() + begin, pos_ - begin);
    if (pos_ < text_.size() && text_[pos_] == '"') {
      if (IsRawPrefix(ident)) {
        LexString(/*raw=*/true);
        return;
      }
      if (IsEncodingPrefix(ident)) {
        LexString(/*raw=*/false);
        return;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '\'' && IsEncodingPrefix(ident)) {
      LexCharLiteral();
      return;
    }
    Emit(TokKind::kIdentifier, begin, pos_);
  }

  void LexPunct() {
    const std::size_t begin = pos_;
    const char c = text_[pos_];
    if (c == ':' && Peek(1) == ':') {
      pos_ += 2;
    } else if (c == '-' && Peek(1) == '>') {
      pos_ += 2;
    } else if (c == '.' && Peek(1) == '.' && Peek(2) == '.') {
      pos_ += 3;
    } else {
      ++pos_;
    }
    Emit(TokKind::kPunct, begin, pos_);
  }

  std::string text_;
  std::vector<int> line_of_;
  std::size_t pos_ = 0;
  bool at_line_start_ = true;
  LexedFile result_;
};

}  // namespace

LexedFile Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace astra::lint
