// astra-lint driver: file discovery, parallel per-file analysis, the
// incremental cache, global (cross-TU) rules, and text/JSON/SARIF rendering.
//
// The v2 engine runs in three phases:
//
//   A (parallel)  read + content-hash every file; unchanged files replay
//                 their FACTS from the incremental database, changed files
//                 are lexed exactly once and re-harvested.
//   -- serial --  include graph (report-linked scope), tree-wide
//                 ASTRA_BLOCKING / ASTRA_EXCLUDES maps, and the global
//                 rules that only need facts: arch-upward-include over the
//                 layer matrix and lock-order cycle detection over the
//                 union of every file's acquisition edges.
//   B (parallel)  per-file rules.  A file replays its cached diagnostics
//                 when both its content hash AND its environment hash
//                 (rule-set version, report-linked bit, paired-header
//                 facts, global annotation maps) match; otherwise its
//                 tokens (from phase A, or a single lazy lex) run the full
//                 rule set.
//
// Diagnostics merge in file-index order and then sort by (file, line,
// rule), so output is byte-identical at any --threads value.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace astra::lint {

struct LintOptions {
  // Honor `astra-lint-test: path=...` overrides (the golden corpus relies
  // on them; they are inert on the real tree, which never contains one).
  bool honor_test_overrides = true;
  // Worker threads for the parallel phases; 0 = hardware concurrency.
  unsigned threads = 0;
  // Incremental database path; empty disables persistence (every run still
  // lexes each file at most once in memory).
  std::string cache_path;
  // Layer-matrix conf for arch-upward-include; empty = the compiled-in
  // DefaultLayerMatrix().  An unreadable/invalid file is an io_error and
  // the compiled matrix is used.
  std::string layers_path;
};

struct LintStats {
  std::size_t files = 0;             // source files analyzed
  std::size_t lexed = 0;             // full lexes this run
  std::size_t lex_cache_hits = 0;    // paired-header fact reuses (no re-lex)
  std::size_t incremental_hits = 0;  // diagnostics replayed from the cache
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::vector<std::string> io_errors;   // unreadable files / bad roots
  LintStats stats;
};

// Lint every *.hpp / *.cpp under the given roots (files may also be named
// directly).  Paths are normalized to be src-relative for rule scoping.
[[nodiscard]] LintResult LintTree(const std::vector<std::string>& roots,
                                  const LintOptions& options = {});

// Lint one in-memory source — the unit-test entry point.  `path` plays the
// role of the repo-relative path unless the source carries a test override.
// Runs the full rule set including the global rules (the lock-order graph
// and include checks see just this one file).
[[nodiscard]] LintResult LintSource(const std::string& path,
                                    std::string_view source,
                                    const LintOptions& options = {});

// Strip everything up to and including the last `src/` component, yielding
// the rule-scoping path ("core/report.cpp").  Paths without a src/
// component are returned unchanged (minus any leading "./").
[[nodiscard]] std::string NormalizeRepoPath(std::string_view path);

void RenderText(std::ostream& out, const LintResult& result);
void RenderJson(std::ostream& out, const LintResult& result);
// SARIF 2.1.0 with one run; file URIs are prefixed "src/" so GitHub code
// scanning anchors them at the repo root.
void RenderSarif(std::ostream& out, const LintResult& result);
// One-line `--stats` summary (written to stderr by the CLI so stdout stays
// byte-identical whatever the cache state).
void RenderStats(std::ostream& out, const LintResult& result);

}  // namespace astra::lint
