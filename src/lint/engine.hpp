// astra-lint driver: file discovery, include-graph scoping, suppression
// filtering, and text/JSON rendering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

namespace astra::lint {

struct LintOptions {
  // Honor `astra-lint-test: path=...` overrides (the golden corpus relies
  // on them; they are inert on the real tree, which never contains one).
  bool honor_test_overrides = true;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::vector<std::string> io_errors;   // unreadable files / bad roots
};

// Lint every *.hpp / *.cpp under the given roots (files may also be named
// directly).  Paths are normalized to be src-relative for rule scoping.
[[nodiscard]] LintResult LintTree(const std::vector<std::string>& roots,
                                  const LintOptions& options = {});

// Lint one in-memory source — the unit-test entry point.  `path` plays the
// role of the repo-relative path unless the source carries a test override.
[[nodiscard]] LintResult LintSource(const std::string& path,
                                    std::string_view source,
                                    const LintOptions& options = {});

// Strip everything up to and including the last `src/` component, yielding
// the rule-scoping path ("core/report.cpp").  Paths without a src/
// component are returned unchanged (minus any leading "./").
[[nodiscard]] std::string NormalizeRepoPath(std::string_view path);

void RenderText(std::ostream& out, const LintResult& result);
void RenderJson(std::ostream& out, const LintResult& result);

}  // namespace astra::lint
