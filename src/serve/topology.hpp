// Serving topology: how many racks the daemon monitors and how many node
// streams each rack carries.  The default is the paper's Astra machine (36
// racks x 72 nodes = 2592 streams); tests and small deployments shrink it
// via flags or a topology file.  Node streams live in per-node dataset
// directories under one root, named by NodeDirName — the same §2.4 layout
// `analyze` reads, one directory per node instead of one for the fleet.
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "geometry/topology.hpp"

namespace astra::serve {

struct ServeTopology {
  int racks = kNumRacks;
  int nodes_per_rack = kNodesPerRack;

  [[nodiscard]] int NodeCount() const noexcept { return racks * nodes_per_rack; }
  [[nodiscard]] int RackOf(int node_index) const noexcept {
    return node_index / nodes_per_rack;
  }
  // First node index of `rack` (the rack's nodes are the contiguous range
  // [RackBegin, RackBegin + nodes_per_rack)).
  [[nodiscard]] int RackBegin(int rack) const noexcept {
    return rack * nodes_per_rack;
  }
  [[nodiscard]] bool Valid() const noexcept {
    // The product must be computed wide: `int` overflow is UB, not a check.
    return racks > 0 && nodes_per_rack > 0 &&
           static_cast<long long>(racks) * nodes_per_rack <=
               std::numeric_limits<int>::max();
  }

  friend bool operator==(const ServeTopology&, const ServeTopology&) = default;
};

// "node-0007" — the per-node dataset directory name under the serve root.
// Four digits cover Astra (2592 nodes); wider fleets grow the field.
[[nodiscard]] std::string NodeDirName(int node_index);

// Parse a topology file: `key value` or `key=value` lines for keys `racks`
// and `nodes_per_rack`, '#' comments and blank lines ignored.  nullopt on an
// unreadable file, an unknown key, an unparseable value, or an invalid
// resulting topology.  Reads through io::Current() so chaos tests can
// exercise the failure path.
[[nodiscard]] std::optional<ServeTopology> ParseTopologyFile(
    const std::string& path);

// Parse topology file CONTENTS (the file-free core of ParseTopologyFile).
[[nodiscard]] std::optional<ServeTopology> ParseTopologyText(
    std::string_view text);

}  // namespace astra::serve
