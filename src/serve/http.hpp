// Minimal embedded HTTP/1.1 over loopback: the daemon's query surface and
// the webhook pusher's transport.  Deliberately tiny — one request per
// connection (Connection: close), no TLS, no chunked encoding, bound to
// 127.0.0.1 only — because the job is serving a handful of well-known local
// endpoints and posting small JSON bodies, not being a web server.  Requests
// are size-capped and read under a socket timeout so a stuck client can
// never wedge a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace astra::serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/fleet/report" (no query-string splitting)
  std::string body;    // present when the request carried Content-Length
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Must be callable from several worker threads at once.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

[[nodiscard]] std::string_view HttpStatusText(int status) noexcept;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Bind 127.0.0.1:`port` (0 = kernel-assigned, see Port()), start the
  // accept loop plus `workers` handler threads.  False when the socket
  // cannot be created/bound or the server is already running.
  [[nodiscard]] bool Start(HttpHandler handler, std::uint16_t port = 0,
                           int workers = 4);
  // Idempotent; joins every thread and closes queued connections.
  void Stop();

  [[nodiscard]] bool Running() const noexcept { return running_; }
  // The bound port (the kernel's pick when Start was given 0).
  [[nodiscard]] std::uint16_t Port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t RequestsServed() const noexcept {
    return requests_served_.load();
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  // Accepted fds awaiting a worker.
  std::deque<int> queue_ ASTRA_GUARDED_BY(queue_mutex_);
};

// One-shot client request against 127.0.0.1-reachable `host`:`port`.
// nullopt on connect/transport failure or an unparseable response.
struct HttpResult {
  int status = 0;
  std::string body;
};
[[nodiscard]] std::optional<HttpResult> HttpFetch(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& path, const std::string& body = {},
    int timeout_ms = 5000) ASTRA_BLOCKING;

// "http://host:port/path" or "host:port/path" (path optional, default "/").
struct HttpUrl {
  std::string host;
  std::uint16_t port = 0;
  std::string path = "/";
};
[[nodiscard]] std::optional<HttpUrl> ParseHttpUrl(const std::string& url);

}  // namespace astra::serve
