// ServeDaemon: the long-running fleet monitor behind `astra_serve`.  One
// chaos-hardened StreamMonitor per node directory tails that node's logs;
// poller threads sweep contiguous node ranges; a merger thread drains
// alerts, reduces per-node alert engines rack -> fleet (surfacing
// cross-node bursts no single stream sees), and checkpoints the whole tree
// under one manifest.  Queries reduce per-node engine copies on demand
// through serve/merge_tree.hpp, so a served report is byte-identical to
// `analyze` over the same delivered records at any instant.
//
// Locking: one mutex per node slot guards its monitor; every copy (query
// sampling, alert draining, checkpoint snapshots) happens under that slot's
// lock and every reduction happens on the copies outside it.  Rendered
// fleet/rack reports are cached against a data generation counter bumped on
// every productive poll, so an idle fleet serves queries without touching a
// single node lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/alert_hub.hpp"
#include "serve/http.hpp"
#include "serve/merge_tree.hpp"
#include "serve/topology.hpp"
#include "serve/tree_checkpoint.hpp"
#include "stream/monitor.hpp"
#include "util/thread_annotations.hpp"

namespace astra::serve {

struct ServeOptions {
  std::string root;  // holds one node-XXXX/ dataset dir per node
  ServeTopology topology;
  stream::MonitorConfig monitor;
  int poll_ms = 200;
  int merge_ms = 1000;
  int pollers = 4;
  std::string checkpoint_dir;       // empty = checkpointing off
  int checkpoint_every_merges = 5;  // manifest cadence, in merge cycles
  // When > 0: once every stream has been idle this long, drain the fleet
  // (Finish per node — terminal) and keep serving the now-final reports.
  // For bounded campaigns and tests, where "the logs stopped growing" means
  // "the campaign ended"; a forever-tailing deployment leaves this 0.
  int quiesce_ms = 0;
  RetryPolicy retry;                // checkpoint/manifest I/O
  SleepFn retry_sleep;              // paces checkpoint retries (null = none)
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options);
  ~ServeDaemon() { StopServing(); }
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Build the node monitors and, when a checkpoint manifest exists, restore
  // every node from it (a missing manifest is a fresh start; a damaged one
  // is an error — the operator decides whether to delete it).  False with a
  // diagnostic in `error` on invalid options or a failed restore.
  [[nodiscard]] bool Init(std::string* error);

  // Spawn the poller and merger threads.  Init must have succeeded.
  [[nodiscard]] bool StartServing();
  // Join every thread.  Idempotent; does NOT checkpoint (callers decide
  // whether the exit is clean enough to deserve one).
  void StopServing();

  // One synchronous sweep: poll every node once on the calling thread.
  // The one-shot drain path and tests use this instead of StartServing.
  void PollAll();
  // Consume everything currently in every node's files and close the
  // accounting (monitor Finish per node).  Returns the number of nodes
  // whose primary log was never readable.
  std::size_t Drain();

  // Save the whole tree now: per-node checkpoints for a new generation,
  // then the manifest (the commit point), then a stale-generation sweep.
  // False — previous manifest left in force — on any I/O failure.
  [[nodiscard]] bool SaveCheckpoint();

  // True once every node has been polled at least once (or drained).
  [[nodiscard]] bool Ready() const { return ready_.load(); }
  // True once the fleet has been drained (ServeOptions::quiesce_ms fired, or
  // Drain was called directly): reports are final from here on.
  [[nodiscard]] bool Quiesced() const { return quiesced_.load(); }
  // Bumped on every productive poll; queries cache against it.
  [[nodiscard]] std::uint64_t DataGeneration() const {
    return data_generation_.load();
  }

  [[nodiscard]] std::string FleetReport();
  [[nodiscard]] std::optional<std::string> RackReport(int rack);
  [[nodiscard]] std::optional<std::string> NodeReport(int node);
  [[nodiscard]] std::string StatsJson();

  [[nodiscard]] AlertHub& Hub() { return hub_; }
  [[nodiscard]] const ServeOptions& Options() const { return options_; }

 private:
  struct NodeSlot {
    NodeSlot(const core::DatasetPaths& paths,
             const stream::MonitorConfig& config)
        // astra-lint: allow(lock-guarded-field): constructing the slot — no other thread can hold a reference yet
        : stream_monitor(paths, config) {}
    std::mutex mutex;
    stream::StreamMonitor stream_monitor ASTRA_GUARDED_BY(mutex);
    std::uint64_t polls ASTRA_GUARDED_BY(mutex) = 0;
    bool missing_primary ASTRA_GUARDED_BY(mutex) = false;
  };

  [[nodiscard]] core::EngineSetConfig EngineConfig() const;
  void PollRange(int begin, int end);
  void PollerLoop(int begin, int end);
  void MergerLoop();
  void MergeCycle();
  [[nodiscard]] std::vector<NodeSample> SampleRange(int begin, int end);
  [[nodiscard]] std::string RenderRange(int begin, int end);
  // Serve `key` from the rendered-report cache, rebuilding when the data
  // generation moved past the cached copy.
  [[nodiscard]] std::string CachedReport(const std::string& key, int begin,
                                         int end);
  [[nodiscard]] bool RestoreFromManifest(std::string* error);

  ServeOptions options_;
  std::vector<std::unique_ptr<NodeSlot>> slots_;
  AlertHub hub_;

  std::atomic<bool> ready_{false};
  std::atomic<bool> quiesced_{false};
  std::atomic<std::uint64_t> data_generation_{0};
  std::atomic<std::uint64_t> merge_cycles_{0};
  std::atomic<std::uint64_t> checkpoint_generation_{0};
  std::atomic<std::uint64_t> checkpoint_failures_{0};
  std::atomic<int> pollers_swept_{0};
  int pollers_started_ = 0;  // set before the threads spawn

  std::vector<std::thread> threads_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ ASTRA_GUARDED_BY(stop_mutex_) = false;
  bool serving_ = false;  // touched only by the Start/Stop caller thread

  std::mutex cache_mutex_;
  struct CachedEntry {
    std::uint64_t generation = 0;
    std::string text;
  };
  std::map<std::string, CachedEntry> report_cache_
      ASTRA_GUARDED_BY(cache_mutex_);

  std::mutex checkpoint_mutex_;  // serializes SaveCheckpoint callers
};

// The daemon's HTTP surface: /healthz, /fleet/report, /rack/{id}/report,
// /node/{id}/report, /alerts, /stats.  The handler outlives neither the
// daemon nor the hub — stop the server before destroying the daemon.
[[nodiscard]] HttpHandler MakeDaemonHandler(ServeDaemon& daemon);

}  // namespace astra::serve
