// AlertHub: the fan-in point where node-level alerts (drained from each
// monitor) and merge-raised alerts (cross-node threshold crossings only the
// merged window sees) become one bounded, queryable stream — served as JSON
// at /alerts and pushed to an optional webhook under util/retry bounded
// backoff.
//
// Merge-raised alerts need their own rising-edge discipline: every merge
// cycle rebuilds a fresh merged StreamingAlerts, so a burst that persists
// across cycles would re-fire each time.  The hub latches per (scope, kind,
// node): the first cycle that raises a crossing publishes it, subsequent
// cycles that raise it again are suppressed, and a cycle that does NOT
// raise it re-arms the latch (the fresh merged engine fires whenever the
// window stands over the threshold, so "absent" means "subsided").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "stream/alerts.hpp"
#include "util/retry.hpp"
#include "util/thread_annotations.hpp"

namespace astra::serve {

// Posts one JSON body; false on delivery failure (retried under the policy).
using WebhookSender = std::function<bool(const std::string& json_body)>;

[[nodiscard]] std::string_view AlertKindName(stream::Alert::Kind kind) noexcept;

// One published alert plus where in the tree it fired ("node-0007",
// "rack-03", "fleet").
struct ScopedAlert {
  std::string scope;
  stream::Alert alert;
};

[[nodiscard]] std::string ScopedAlertJson(const ScopedAlert& entry);

class AlertHub {
 public:
  explicit AlertHub(std::size_t capacity = 1024) : capacity_(capacity) {}

  // Install the webhook; every subsequently published alert is posted (one
  // JSON object per alert) with `retry` attempts.  Call before publishing
  // starts — installation is not synchronized against publishers.
  void SetWebhook(WebhookSender sender, const RetryPolicy& retry,
                  const SleepFn& sleep = {});

  // Node-level alerts are already rising-edge filtered by their engine;
  // publish them all.
  void PublishNode(const std::string& scope,
                   const std::vector<stream::Alert>& alerts);

  // Merge-raised alerts from one scope's merge cycle: latch per (scope,
  // kind, node) as documented above.  Pass the FULL set the cycle raised —
  // absence is what re-arms.
  void PublishMerged(const std::string& scope,
                     const std::vector<stream::Alert>& alerts);

  // Newest-last JSON array of the retained ring (oldest entries beyond the
  // capacity are dropped, counted in `dropped`).
  [[nodiscard]] std::string JsonSnapshot() const;

  [[nodiscard]] std::uint64_t Published() const;
  [[nodiscard]] std::uint64_t WebhookFailures() const;

 private:
  void Retain(std::vector<ScopedAlert> entries);

  // Webhook delivery stays OUTSIDE the ring lock: the sender does network
  // I/O under bounded retry/backoff, and holding mutex_ across it would
  // stall every publisher and /alerts reader for the full retry budget.
  // ASTRA_EXCLUDES makes the convention a checked invariant — astra-lint
  // goes red if a call site ever moves inside a mutex_ region.
  void DeliverWebhooks(const std::vector<ScopedAlert>& entries)
      ASTRA_EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<ScopedAlert> ring_ ASTRA_GUARDED_BY(mutex_);
  std::uint64_t published_ ASTRA_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ ASTRA_GUARDED_BY(mutex_) = 0;
  std::uint64_t webhook_failures_ ASTRA_GUARDED_BY(mutex_) = 0;
  // (scope, kind, node) crossings currently latched by PublishMerged.
  std::set<std::tuple<std::string, int, NodeId>> merged_latched_
      ASTRA_GUARDED_BY(mutex_);

  WebhookSender webhook_;
  RetryPolicy webhook_retry_ = RetryPolicy::None();
  SleepFn webhook_sleep_;
};

}  // namespace astra::serve
