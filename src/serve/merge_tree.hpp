// The fleet-of-fleets reduction: per-node engine state copied under the
// owner's lock, merged node -> rack -> fleet through the same MergeFrom
// contract the parallel batch driver uses (core/engine.hpp), then rendered
// through the shared core/report layer.  Because merging is associative and
// every engine's state is a pure function of the observed multiset (plus
// per-DIMM sequence tie-breaks, which per-node streams preserve), the fleet
// report over N drained node streams is BYTE-IDENTICAL to `analyze` over
// the concatenation of their logs — the serve determinism suite pins this
// for 1, 4 and 36 streams and across checkpoint/restore.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>

#include "core/engine.hpp"
#include "logs/ingest.hpp"
#include "stream/alerts.hpp"
#include "stream/monitor.hpp"

namespace astra::serve {

// One node monitor's mergeable state, copied at a single instant.  Copies,
// not references: the monitor keeps observing while the tree reduces.
struct NodeSample {
  core::AnalysisEngineSet engines;
  stream::StreamingAlerts alerts;
  logs::IngestReport memory_report;
  logs::IngestReport het_report;
  bool memory_seen = false;
  bool het_seen = false;
  bool rejected = false;
};

// Copy `monitor`'s mergeable state.  The caller holds whatever lock guards
// the monitor — the sample itself is immutable data afterwards.
[[nodiscard]] NodeSample SampleMonitor(const stream::StreamMonitor& monitor);

// A rack's or the fleet's reduced state.
struct MergedView {
  core::AnalysisEngineSet engines;
  stream::StreamingAlerts alerts;
  logs::IngestReport memory_report;
  logs::IngestReport het_report;
  bool any_memory_seen = false;
  bool any_het_seen = false;
  // Strict-policy rejection, evaluated per stream at the node (each node's
  // malformed budget is its own file's fraction, exactly like one `watch`
  // per directory); any rejected member stream rejects the merged view.
  bool rejected = false;
  int nodes_merged = 0;

  [[nodiscard]] std::uint64_t Delivered() const { return engines.Delivered(); }
  // Merged het absence mirrors StreamMonitor::HetMissing: the memory side is
  // accepted and producing, but no member stream ever saw a het file.
  [[nodiscard]] bool HetMissing() const {
    return !rejected && any_memory_seen && !any_het_seen;
  }
  [[nodiscard]] core::DataQuality Quality() const;
};

// Reduce `samples` in index order into one view.  `engine_config` and
// `alert_config` must match the configs the samples were observed under
// (MergeFrom enforces this); nullopt on a mismatch.
[[nodiscard]] std::optional<MergedView> MergeSamples(
    const core::EngineSetConfig& engine_config,
    const stream::AlertConfig& alert_config,
    std::span<const NodeSample> samples);

// Render exactly what `analyze` prints to stdout over the concatenation of
// the merged streams: ingest accounting first, then the empty-dataset or
// full analysis report (nothing more when the view stands rejected — the
// batch CLI's rejection note goes to stderr, not the report).
void RenderMergedReport(std::ostream& out, const logs::IngestPolicy& policy,
                        const MergedView& view);

}  // namespace astra::serve
