#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/strings.hpp"

namespace astra::serve {
namespace {

// A request larger than this is hostile or a bug, not traffic.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;
constexpr int kSocketTimeoutMs = 5000;
constexpr int kAcceptPollMs = 100;

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  // Best-effort: a socket without timeouts still works, it just loses the
  // stuck-peer bound; there is no recovery path that could use the status.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

[[nodiscard]] bool SendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Read until `terminator` appears in `buffer` (which may already hold bytes),
// or the size cap / timeout trips.  Returns the terminator's end offset.
[[nodiscard]] std::optional<std::size_t> ReadUntil(int fd, std::string& buffer,
                                                   std::string_view terminator,
                                                   std::size_t max_bytes) {
  while (true) {
    const auto at = buffer.find(terminator);
    if (at != std::string::npos) return at + terminator.size();
    if (buffer.size() >= max_bytes) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;  // peer closed or timed out mid-header
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

[[nodiscard]] bool ReadExactly(int fd, std::string& buffer, std::size_t total) {
  while (buffer.size() < total) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

// Content-Length from raw header bytes; 0 when absent, nullopt when present
// but unparseable (a malformed request, not a missing header).
[[nodiscard]] std::optional<std::size_t> ContentLengthOf(
    std::string_view headers) {
  for (std::string_view line : SplitView(headers, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(TrimView(line.substr(0, colon)));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name != "content-length") continue;
    const auto value = ParseInt64(TrimView(line.substr(colon + 1)));
    if (!value || *value < 0) return std::nullopt;
    return static_cast<std::size_t>(*value);
  }
  return 0;
}

[[nodiscard]] std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += HttpStatusText(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

std::string_view HttpStatusText(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool HttpServer::Start(HttpHandler handler, std::uint16_t port, int workers) {
  if (running_ || !handler) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int reuse = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(fd);
    return false;
  }

  handler_ = std::move(handler);
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stop_ = false;
  running_ = true;
  const int worker_count = workers < 1 ? 1 : workers;
  workers_.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_) return;
  stop_ = true;
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections accepted but never claimed by a worker.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (const int fd : queue_) ::close(fd);
  queue_.clear();
  running_ = false;
}

void HttpServer::AcceptLoop() {
  while (!stop_) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout (re-check stop_) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, kSocketTimeoutMs);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string buffer;
  const auto header_end =
      ReadUntil(fd, buffer, "\r\n\r\n", kMaxHeaderBytes + kMaxBodyBytes);
  if (!header_end) return;  // torn/oversized request: drop the connection

  const std::string_view head = std::string_view(buffer).substr(0, *header_end);
  const auto line_end = head.find("\r\n");
  const auto request_line = head.substr(0, line_end);
  const auto parts = SplitWhitespace(request_line);

  HttpResponse response;
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/1.")) {
    response.status = 400;
    response.body = "malformed request\n";
    (void)SendAll(fd, RenderResponse(response));
    return;
  }

  HttpRequest request;
  request.method = std::string(parts[0]);
  request.path = std::string(parts[1]);

  const auto content_length =
      ContentLengthOf(head.substr(line_end == std::string_view::npos
                                      ? head.size()
                                      : line_end + 2));
  if (!content_length || *content_length > kMaxBodyBytes) {
    response.status = 400;
    response.body = "bad content length\n";
    (void)SendAll(fd, RenderResponse(response));
    return;
  }
  if (*content_length > 0) {
    std::string body = buffer.substr(*header_end);
    if (!ReadExactly(fd, body, *content_length)) return;
    body.resize(*content_length);
    request.body = std::move(body);
  }

  response = handler_(request);
  requests_served_.fetch_add(1);
  (void)SendAll(fd, RenderResponse(response));
}

std::optional<HttpResult> HttpFetch(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& method,
                                    const std::string& path,
                                    const std::string& body, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  SetSocketTimeouts(fd, timeout_ms);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;  // loopback client: numeric IPv4 hosts only
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  if (!SendAll(fd, request)) {
    ::close(fd);
    return std::nullopt;
  }

  std::string response;
  while (true) {
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
    if (response.size() > kMaxHeaderBytes + kMaxBodyBytes) break;
  }
  ::close(fd);

  const auto header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos || !StartsWith(response, "HTTP/1.")) {
    return std::nullopt;
  }
  const auto status_line =
      std::string_view(response).substr(0, response.find("\r\n"));
  const auto parts = SplitWhitespace(status_line);
  if (parts.size() < 2) return std::nullopt;
  const auto status = ParseInt64(parts[1]);
  if (!status || *status < 100 || *status > 599) return std::nullopt;

  HttpResult result;
  result.status = static_cast<int>(*status);
  result.body = response.substr(header_end + 4);
  return result;
}

std::optional<HttpUrl> ParseHttpUrl(const std::string& url) {
  std::string_view rest = url;
  if (StartsWith(rest, "http://")) rest.remove_prefix(7);
  const auto slash = rest.find('/');
  const std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  const auto colon = authority.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  const auto port = ParseInt64(authority.substr(colon + 1));
  if (!port || *port < 1 || *port > 65535) return std::nullopt;

  HttpUrl parsed;
  parsed.host = std::string(authority.substr(0, colon));
  parsed.port = static_cast<std::uint16_t>(*port);
  if (slash != std::string_view::npos) {
    parsed.path = std::string(rest.substr(slash));
  }
  if (parsed.host == "localhost") parsed.host = "127.0.0.1";
  return parsed;
}

}  // namespace astra::serve
