// Tree checkpoints: the daemon's whole state as per-node v2 ASTRACKP
// monitor checkpoints (stream/checkpoint.hpp, unchanged format) under ONE
// manifest that makes the set atomic.
//
// Save protocol for generation G:
//   1. every node monitor -> <dir>/node-XXXX.g<G>.ckp (each file is itself
//      tmp+fsync+rename atomic);
//   2. the manifest -> <dir>/manifest.ckp LAST, same durability protocol.
// The manifest names generation G's files, so a crash anywhere before step
// 2 completes leaves the previous manifest — and therefore the previous
// CONSISTENT generation — in force; the half-written G files are inert and
// swept by the next successful save.  Restore trusts only the manifest.
//
// Manifest envelope (all integers little-endian):
//   offset  size  field
//   0       8     magic "ASTRASRV"
//   8       4     format version (currently 1)
//   12      8     payload length in bytes
//   20      4     CRC-32 of the payload bytes
//   24      n     payload: u64 generation, u32 racks, u32 nodes_per_rack,
//                 u64 file count, then length-prefixed file names (relative
//                 to the manifest's directory, node index order)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "serve/topology.hpp"
#include "stream/checkpoint.hpp"

namespace astra::serve {

inline constexpr std::string_view kManifestMagic = "ASTRASRV";
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::string_view kManifestFileName = "manifest.ckp";

struct TreeManifest {
  std::uint64_t generation = 0;
  ServeTopology topology;
  std::vector<std::string> node_files;  // node index order, dir-relative
};

// "node-0007.g12.ckp" — node `node_index`'s checkpoint file in generation
// `generation`.
[[nodiscard]] std::string NodeCheckpointName(int node_index,
                                             std::uint64_t generation);

// Write `manifest` to `dir`/manifest.ckp atomically and durably (tmp +
// fsync + rename + dir fsync), retrying each I/O step under `retry`.
[[nodiscard]] stream::CheckpointStatus SaveTreeManifest(
    const TreeManifest& manifest, const std::string& dir,
    const RetryPolicy& retry, const SleepFn& sleep = {});

// Read and validate `dir`/manifest.ckp.  Statuses mirror the monitor
// checkpoint's: environmental failures (kIoError/kTruncated/kBadCrc) are
// retried, structural rejections are not.  On any non-kOk status `manifest`
// is reset to a default-constructed state.
[[nodiscard]] stream::CheckpointStatus LoadTreeManifest(
    TreeManifest& manifest, const std::string& dir, const RetryPolicy& retry,
    const SleepFn& sleep = {});

// Delete checkpoint files in `dir` that belong to generations other than
// `keep_generation` (the one the freshly durable manifest names).  Best
// effort: returns the number of files removed; files that cannot be listed
// or removed are left for the next sweep.
std::size_t SweepStaleGenerations(const std::string& dir,
                                  std::uint64_t keep_generation);

}  // namespace astra::serve
