// Fleet dataset layout: one §2.4 dataset directory PER NODE under a common
// root, plus an optional `combined/` directory holding the concatenated
// fleet-wide logs.  The daemon tails the per-node directories; `analyze`
// over combined/ is the parity oracle the serve determinism tests (and the
// CI smoke job) compare /fleet/report against byte for byte.
//
// The split preserves arrival order: records land in each node's file in
// campaign order, so the order of any node's records relative to each other
// is identical in the combined file and that node's file — the property the
// merge tree's byte-parity rests on (core/engine.hpp determinism rules).
#pragma once

#include <string>

#include "faultsim/fleet.hpp"
#include "serve/topology.hpp"

namespace astra::serve {

// Write `result`'s failure telemetry (memory errors + HET stream) as
// `root/node-XXXX/` per-node dataset directories for every node in
// `topology`, records routed by their node id modulo the node count.  Every
// node directory is created and gets both headers even when the node saw no
// records — an empty stream is data, a missing one is an outage.  False on
// any directory or write failure.
[[nodiscard]] bool WriteFleetDataset(const faultsim::CampaignResult& result,
                                     const std::string& root,
                                     const ServeTopology& topology);

// Write the fleet-wide concatenated logs to `dir` (analyze's input).
[[nodiscard]] bool WriteCombinedDataset(const faultsim::CampaignResult& result,
                                        const std::string& dir);

// `root/node-XXXX` for node `node_index`.
[[nodiscard]] std::string NodeDir(const std::string& root, int node_index);

}  // namespace astra::serve
