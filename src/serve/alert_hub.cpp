#include "serve/alert_hub.hpp"

#include <limits>

namespace astra::serve {
namespace {

// Alert fields are numeric or from a fixed vocabulary, but the scope string
// passes through caller data — escape defensively.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view AlertKindName(stream::Alert::Kind kind) noexcept {
  switch (kind) {
    case stream::Alert::Kind::kFleetCeRate: return "fleet_ce_rate";
    case stream::Alert::Kind::kNodeCeRate: return "node_ce_rate";
    case stream::Alert::Kind::kDue: return "due";
  }
  return "unknown";
}

std::string ScopedAlertJson(const ScopedAlert& entry) {
  std::string json = "{\"scope\": \"" + EscapeJson(entry.scope) + "\"";
  json += ", \"kind\": \"";
  json += AlertKindName(entry.alert.kind);
  json += "\", \"at\": " + std::to_string(entry.alert.at.Seconds());
  json += ", \"node\": " + std::to_string(entry.alert.node);
  json += ", \"count\": " + std::to_string(entry.alert.count);
  json += ", \"window_seconds\": " + std::to_string(entry.alert.window_seconds);
  json += ", \"message\": \"" + EscapeJson(entry.alert.Message()) + "\"}";
  return json;
}

void AlertHub::SetWebhook(WebhookSender sender, const RetryPolicy& retry,
                          const SleepFn& sleep) {
  webhook_ = std::move(sender);
  webhook_retry_ = retry;
  webhook_sleep_ = sleep;
}

void AlertHub::Retain(std::vector<ScopedAlert> entries) {
  if (entries.empty()) return;
  // Ring + counters under the lock; webhook delivery outside it, so a slow
  // receiver throttles only the publishing thread, never the query path.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (ScopedAlert& entry : entries) {
      ring_.push_back(entry);
      if (ring_.size() > capacity_) {
        ring_.pop_front();
        ++dropped_;
      }
      ++published_;
    }
  }
  DeliverWebhooks(entries);
}

void AlertHub::DeliverWebhooks(const std::vector<ScopedAlert>& entries) {
  if (!webhook_) return;
  for (const ScopedAlert& entry : entries) {
    const std::string body = ScopedAlertJson(entry);
    const bool delivered = RetryWithBackoff(
        webhook_retry_, [&] { return webhook_(body); }, webhook_sleep_);
    if (!delivered) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++webhook_failures_;
    }
  }
}

void AlertHub::PublishNode(const std::string& scope,
                           const std::vector<stream::Alert>& alerts) {
  std::vector<ScopedAlert> entries;
  entries.reserve(alerts.size());
  for (const stream::Alert& alert : alerts) {
    entries.push_back(ScopedAlert{scope, alert});
  }
  Retain(std::move(entries));
}

void AlertHub::PublishMerged(const std::string& scope,
                             const std::vector<stream::Alert>& alerts) {
  std::vector<ScopedAlert> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::tuple<std::string, int, NodeId>> present;
    for (const stream::Alert& alert : alerts) {
      auto key = std::make_tuple(scope, static_cast<int>(alert.kind),
                                 alert.node);
      present.insert(key);
      if (merged_latched_.insert(key).second) {
        entries.push_back(ScopedAlert{scope, alert});
      }
    }
    // Latched crossings this cycle did NOT raise have subsided: re-arm.
    const auto begin = merged_latched_.lower_bound(
        std::make_tuple(scope, 0, std::numeric_limits<NodeId>::min()));
    for (auto it = begin;
         it != merged_latched_.end() && std::get<0>(*it) == scope;) {
      if (present.count(*it) == 0) {
        it = merged_latched_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Retain(std::move(entries));
}

std::string AlertHub::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string json = "{\"published\": " + std::to_string(published_) +
                     ", \"dropped\": " + std::to_string(dropped_) +
                     ", \"alerts\": [";
  bool first = true;
  for (const ScopedAlert& entry : ring_) {
    if (!first) json += ", ";
    json += ScopedAlertJson(entry);
    first = false;
  }
  json += "]}\n";
  return json;
}

std::uint64_t AlertHub::Published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

std::uint64_t AlertHub::WebhookFailures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return webhook_failures_;
}

}  // namespace astra::serve
