#include "serve/topology.hpp"

#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::serve {

std::string NodeDirName(int node_index) {
  std::string digits = std::to_string(node_index);
  const std::size_t width = digits.size() < 4 ? 4 : digits.size();
  return "node-" + std::string(width - digits.size(), '0') + digits;
}

std::optional<ServeTopology> ParseTopologyText(std::string_view text) {
  ServeTopology topology;
  for (std::string_view raw : SplitView(text, '\n')) {
    std::string_view line = TrimView(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = TrimView(line.substr(0, hash));
    }
    if (line.empty()) continue;

    std::string_view key = line;
    std::string_view value;
    if (const auto eq = line.find('='); eq != std::string_view::npos) {
      key = TrimView(line.substr(0, eq));
      value = TrimView(line.substr(eq + 1));
    } else if (const auto sp = line.find_first_of(" \t");
               sp != std::string_view::npos) {
      key = TrimView(line.substr(0, sp));
      value = TrimView(line.substr(sp + 1));
    } else {
      return std::nullopt;  // a key with no value
    }

    const auto parsed = ParseInt64(value);
    if (!parsed || *parsed <= 0 || *parsed > 1'000'000) return std::nullopt;
    if (key == "racks") {
      topology.racks = static_cast<int>(*parsed);
    } else if (key == "nodes_per_rack") {
      topology.nodes_per_rack = static_cast<int>(*parsed);
    } else {
      return std::nullopt;  // unknown keys are config typos, not extensions
    }
  }
  if (!topology.Valid()) return std::nullopt;
  return topology;
}

std::optional<ServeTopology> ParseTopologyFile(const std::string& path) {
  const auto bytes = io::Current().ReadFile(path);
  if (!bytes) return std::nullopt;
  return ParseTopologyText(*bytes);
}

}  // namespace astra::serve
