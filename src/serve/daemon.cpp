#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "core/dataset.hpp"
#include "serve/fleet_dataset.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::serve {

ServeDaemon::ServeDaemon(ServeOptions options) : options_(std::move(options)) {}

core::EngineSetConfig ServeDaemon::EngineConfig() const {
  core::EngineSetConfig config;
  config.predictor = options_.monitor.predictor;
  return config;
}

bool ServeDaemon::Init(std::string* error) {
  if (!options_.topology.Valid()) {
    if (error) *error = "invalid topology";
    return false;
  }
  if (options_.root.empty()) {
    if (error) *error = "serve root directory required";
    return false;
  }
  const int nodes = options_.topology.NodeCount();
  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    const auto paths =
        core::DatasetPaths::InDirectory(NodeDir(options_.root, node));
    slots_.push_back(std::make_unique<NodeSlot>(paths, options_.monitor));
  }
  if (!options_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      if (error) {
        *error = "cannot create checkpoint directory " +
                 options_.checkpoint_dir + ": " + ec.message();
      }
      return false;
    }
    return RestoreFromManifest(error);
  }
  return true;
}

bool ServeDaemon::RestoreFromManifest(std::string* error) {
  const std::string& dir = options_.checkpoint_dir;
  const std::string manifest_path = dir + "/" + std::string(kManifestFileName);
  if (!stream::RemoveStaleCheckpointTmp(manifest_path)) {
    if (error) *error = "cannot remove stale manifest tmp in " + dir;
    return false;
  }
  if (!io::Current().FileSize(manifest_path).has_value()) {
    return true;  // no manifest yet: a fresh start, not an error
  }
  TreeManifest manifest;
  const auto status = LoadTreeManifest(manifest, dir, options_.retry,
                                       options_.retry_sleep);
  if (status != stream::CheckpointStatus::kOk) {
    if (error) {
      *error = "checkpoint manifest rejected (" +
               std::string(stream::CheckpointStatusMessage(status)) + "): " +
               manifest_path;
    }
    return false;
  }
  if (!(manifest.topology == options_.topology)) {
    if (error) {
      *error = "checkpoint manifest topology (" +
               std::to_string(manifest.topology.racks) + "x" +
               std::to_string(manifest.topology.nodes_per_rack) +
               ") does not match the serving topology";
    }
    return false;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::string path = dir + "/" + manifest.node_files[i];
    // astra-lint: allow(lock-guarded-field): Init-time restore — the poller and merger threads that contend for slot mutexes do not exist yet
    stream::StreamMonitor& restored = slots_[i]->stream_monitor;
    const auto node_status = stream::RestoreMonitorCheckpoint(
        restored, path, options_.retry, options_.retry_sleep);
    if (node_status != stream::CheckpointStatus::kOk) {
      if (error) {
        *error = "node checkpoint rejected (" +
                 std::string(stream::CheckpointStatusMessage(node_status)) +
                 "): " + path;
      }
      return false;
    }
  }
  checkpoint_generation_ = manifest.generation;
  return true;
}

void ServeDaemon::PollRange(int begin, int end) {
  bool advanced = false;
  for (int node = begin; node < end; ++node) {
    NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    const auto status = slot.stream_monitor.Poll();
    ++slot.polls;
    slot.missing_primary = status == stream::MonitorStatus::kMissingPrimary;
    advanced = advanced || status == stream::MonitorStatus::kAdvanced;
  }
  if (advanced) data_generation_.fetch_add(1);
}

void ServeDaemon::PollAll() {
  PollRange(0, options_.topology.NodeCount());
  ready_ = true;
}

std::size_t ServeDaemon::Drain() {
  std::size_t missing = 0;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    const auto status = slot->stream_monitor.Finish();
    slot->missing_primary = status == stream::MonitorStatus::kMissingPrimary;
    if (slot->missing_primary) ++missing;
  }
  data_generation_.fetch_add(1);
  ready_ = true;
  quiesced_ = true;
  return missing;
}

bool ServeDaemon::StartServing() {
  if (serving_ || slots_.empty()) return false;
  {
    // Threads from an earlier Start/Stop cycle are joined, but a new poller
    // reads stop_ as soon as it spawns — reset it under the lock it is read
    // under.
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_ = false;
  }
  serving_ = true;
  pollers_swept_ = 0;

  const int nodes = options_.topology.NodeCount();
  const int pollers = std::min(options_.pollers < 1 ? 1 : options_.pollers,
                               nodes);
  const int per_poller = (nodes + pollers - 1) / pollers;
  for (int p = 0; p < pollers; ++p) {
    const int begin = p * per_poller;
    const int end = std::min(nodes, begin + per_poller);
    if (begin >= end) break;
    threads_.emplace_back([this, begin, end] { PollerLoop(begin, end); });
  }
  pollers_started_ = static_cast<int>(threads_.size());
  threads_.emplace_back([this] { MergerLoop(); });
  return true;
}

void ServeDaemon::StopServing() {
  if (!serving_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  serving_ = false;
}

void ServeDaemon::PollerLoop(int begin, int end) {
  bool first_sweep = true;
  while (true) {
    PollRange(begin, end);
    if (first_sweep) {
      first_sweep = false;
      if (pollers_swept_.fetch_add(1) + 1 >= pollers_started_) ready_ = true;
    }
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                      [this] { return stop_; });
    if (stop_) return;
  }
}

void ServeDaemon::MergerLoop() {
  std::uint64_t last_generation = data_generation_.load();
  auto last_change = std::chrono::steady_clock::now();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.merge_ms),
                        [this] { return stop_; });
      if (stop_) return;
    }
    MergeCycle();
    if (options_.quiesce_ms > 0 && !quiesced_.load() && Ready()) {
      const auto now = std::chrono::steady_clock::now();
      const std::uint64_t generation = data_generation_.load();
      if (generation != last_generation) {
        last_generation = generation;
        last_change = now;
      } else if (now - last_change >=
                 std::chrono::milliseconds(options_.quiesce_ms)) {
        // The logs stopped growing: close the books.  Drain flushes every
        // reorder buffer and finalizes the ingest accounting, so from here
        // the served reports are byte-identical to batch `analyze` over the
        // same files.  Finished monitors make later polls cheap no-ops.
        (void)Drain();
      }
    }
  }
}

void ServeDaemon::MergeCycle() {
  // Drain node alerts and copy alert engines in one pass, so a pending
  // alert is published exactly once (the copies carry empty queues into the
  // merges below — anything a merge drains was raised BY the merge).
  const int nodes = options_.topology.NodeCount();
  std::vector<stream::StreamingAlerts> copies;
  copies.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
    std::vector<stream::Alert> drained;
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      drained = slot.stream_monitor.DrainAlerts();
      copies.push_back(slot.stream_monitor.AlertEngine());
    }
    if (!drained.empty()) hub_.PublishNode(NodeDirName(node), drained);
  }

  // Rack reductions first, fleet from the (drained) rack engines: crossings
  // a rack sees are published at rack scope and — because the fleet engine
  // inherits the rack's fired latches — never re-raised at fleet scope.
  const stream::AlertConfig& alert_config = options_.monitor.alerts;
  stream::StreamingAlerts fleet{alert_config};
  bool merged_ok = true;
  for (int rack = 0; rack < options_.topology.racks; ++rack) {
    stream::StreamingAlerts merged{alert_config};
    const int begin = options_.topology.RackBegin(rack);
    for (int node = begin; node < begin + options_.topology.nodes_per_rack;
         ++node) {
      merged_ok &= merged.MergeFrom(copies[static_cast<std::size_t>(node)]);
    }
    hub_.PublishMerged("rack-" + std::to_string(rack), merged.Drain());
    merged_ok &= fleet.MergeFrom(merged);
  }
  if (merged_ok) hub_.PublishMerged("fleet", fleet.Drain());

  const std::uint64_t cycle = merge_cycles_.fetch_add(1) + 1;
  if (!options_.checkpoint_dir.empty() &&
      options_.checkpoint_every_merges > 0 &&
      cycle % static_cast<std::uint64_t>(options_.checkpoint_every_merges) ==
          0) {
    if (!SaveCheckpoint()) checkpoint_failures_.fetch_add(1);
  }
}

bool ServeDaemon::SaveCheckpoint() {
  if (options_.checkpoint_dir.empty()) return true;
  std::lock_guard<std::mutex> save_lock(checkpoint_mutex_);
  const std::uint64_t generation = checkpoint_generation_.load() + 1;
  const std::string& dir = options_.checkpoint_dir;

  TreeManifest manifest;
  manifest.generation = generation;
  manifest.topology = options_.topology;
  manifest.node_files.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::string name =
        NodeCheckpointName(static_cast<int>(i), generation);
    NodeSlot& slot = *slots_[i];
    stream::CheckpointStatus status;
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      // The checkpoint must serialize a frozen monitor; holding this one
      // slot's lock across the bounded write is the documented cost (other
      // pollers keep sweeping every slot but this one).
      // astra-lint: allow(lock-blocking-call): snapshot-under-lock is the whole point here; the write is retry-bounded, not indefinite
      status = stream::SaveMonitorCheckpoint(
          slot.stream_monitor, dir + "/" + name, options_.retry, options_.retry_sleep);
    }
    if (status != stream::CheckpointStatus::kOk) return false;
    manifest.node_files.push_back(name);
  }
  const auto status =
      SaveTreeManifest(manifest, dir, options_.retry, options_.retry_sleep);
  if (status != stream::CheckpointStatus::kOk) return false;
  checkpoint_generation_ = generation;
  // Only now is the new generation the one a restart reads; everything else
  // is garbage, including any half-written generation a crash left behind.
  (void)SweepStaleGenerations(dir, generation);
  return true;
}

std::vector<NodeSample> ServeDaemon::SampleRange(int begin, int end) {
  std::vector<NodeSample> samples;
  samples.reserve(static_cast<std::size_t>(end - begin));
  for (int node = begin; node < end; ++node) {
    NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    samples.push_back(SampleMonitor(slot.stream_monitor));
  }
  return samples;
}

std::string ServeDaemon::RenderRange(int begin, int end) {
  const auto samples = SampleRange(begin, end);
  const auto view =
      MergeSamples(EngineConfig(), options_.monitor.alerts, samples);
  if (!view) return std::string("merge failed: engine config mismatch\n");
  std::ostringstream out;
  RenderMergedReport(out, options_.monitor.policy, *view);
  return std::move(out).str();
}

std::string ServeDaemon::CachedReport(const std::string& key, int begin,
                                      int end) {
  const std::uint64_t generation = data_generation_.load();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = report_cache_.find(key);
    if (it != report_cache_.end() && it->second.generation == generation) {
      return it->second.text;
    }
  }
  std::string text = RenderRange(begin, end);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto& entry = report_cache_[key];
  entry.generation = generation;
  entry.text = text;
  return text;
}

std::string ServeDaemon::FleetReport() {
  return CachedReport("fleet", 0, options_.topology.NodeCount());
}

std::optional<std::string> ServeDaemon::RackReport(int rack) {
  if (rack < 0 || rack >= options_.topology.racks) return std::nullopt;
  const int begin = options_.topology.RackBegin(rack);
  return CachedReport("rack-" + std::to_string(rack), begin,
                      begin + options_.topology.nodes_per_rack);
}

std::optional<std::string> ServeDaemon::NodeReport(int node) {
  if (node < 0 || node >= options_.topology.NodeCount()) return std::nullopt;
  return RenderRange(node, node + 1);
}

std::string ServeDaemon::StatsJson() {
  std::uint64_t delivered = 0;
  std::uint64_t total_polls = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t nodes_missing = 0;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    delivered += slot->stream_monitor.Delivered();
    total_polls += slot->polls;
    io_retries += slot->stream_monitor.IoRetries();
    if (slot->missing_primary) ++nodes_missing;
  }
  std::string json = "{";
  json += "\"nodes\": " + std::to_string(options_.topology.NodeCount());
  json += ", \"racks\": " + std::to_string(options_.topology.racks);
  json += ", \"ready\": ";
  json += Ready() ? "true" : "false";
  json += ", \"quiesced\": ";
  json += Quiesced() ? "true" : "false";
  json += ", \"delivered\": " + std::to_string(delivered);
  json += ", \"polls\": " + std::to_string(total_polls);
  json += ", \"io_retries\": " + std::to_string(io_retries);
  json += ", \"missing_primary\": " + std::to_string(nodes_missing);
  json += ", \"data_generation\": " + std::to_string(data_generation_.load());
  json += ", \"merge_cycles\": " + std::to_string(merge_cycles_.load());
  json += ", \"checkpoint_generation\": " +
          std::to_string(checkpoint_generation_.load());
  json += ", \"checkpoint_failures\": " +
          std::to_string(checkpoint_failures_.load());
  json += ", \"alerts_published\": " + std::to_string(hub_.Published());
  json += ", \"webhook_failures\": " + std::to_string(hub_.WebhookFailures());
  json += "}\n";
  return json;
}

namespace {

// "/rack/12/report" -> 12 for prefix "/rack/" and suffix "/report".
std::optional<int> PathId(const std::string& path, std::string_view prefix,
                          std::string_view suffix) {
  if (path.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (path.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const auto id = ParseInt64(std::string_view(path).substr(
      prefix.size(), path.size() - prefix.size() - suffix.size()));
  if (!id || *id < 0 || *id > 1'000'000) return std::nullopt;
  return static_cast<int>(*id);
}

}  // namespace

HttpHandler MakeDaemonHandler(ServeDaemon& daemon) {
  return [&daemon](const HttpRequest& request) -> HttpResponse {
    HttpResponse response;
    if (request.method != "GET") {
      response.status = 405;
      response.body = "method not allowed\n";
      return response;
    }
    if (request.path == "/healthz") {
      if (daemon.Ready()) {
        response.body = "ok\n";
      } else {
        response.status = 503;
        response.body = "starting\n";
      }
      return response;
    }
    if (request.path == "/fleet/report") {
      response.body = daemon.FleetReport();
      return response;
    }
    if (const auto rack = PathId(request.path, "/rack/", "/report")) {
      if (auto report = daemon.RackReport(*rack)) {
        response.body = std::move(*report);
      } else {
        response.status = 404;
        response.body = "no such rack\n";
      }
      return response;
    }
    if (const auto node = PathId(request.path, "/node/", "/report")) {
      if (auto report = daemon.NodeReport(*node)) {
        response.body = std::move(*report);
      } else {
        response.status = 404;
        response.body = "no such node\n";
      }
      return response;
    }
    if (request.path == "/alerts") {
      response.content_type = "application/json";
      response.body = daemon.Hub().JsonSnapshot();
      return response;
    }
    if (request.path == "/stats") {
      response.content_type = "application/json";
      response.body = daemon.StatsJson();
      return response;
    }
    response.status = 404;
    response.body = "unknown endpoint\n";
    return response;
  };
}

}  // namespace astra::serve
