#include "serve/tree_checkpoint.hpp"

#include <filesystem>

#include "util/binio.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::serve {

std::string NodeCheckpointName(int node_index, std::uint64_t generation) {
  return NodeDirName(node_index) + ".g" + std::to_string(generation) + ".ckp";
}

stream::CheckpointStatus SaveTreeManifest(const TreeManifest& manifest,
                                          const std::string& dir,
                                          const RetryPolicy& retry,
                                          const SleepFn& sleep) {
  std::string payload;
  binio::Writer payload_writer(payload);
  payload_writer.PutU64(manifest.generation);
  payload_writer.PutU32(static_cast<std::uint32_t>(manifest.topology.racks));
  payload_writer.PutU32(
      static_cast<std::uint32_t>(manifest.topology.nodes_per_rack));
  payload_writer.PutU64(manifest.node_files.size());
  for (const std::string& name : manifest.node_files) {
    payload_writer.PutString(name);
  }

  std::string envelope;
  envelope += kManifestMagic;
  binio::Writer envelope_writer(envelope);
  envelope_writer.PutU32(kManifestVersion);
  envelope_writer.PutU64(payload.size());
  envelope_writer.PutU32(binio::Crc32(payload));
  envelope += payload;

  // Same durability ladder as the monitor checkpoint: tmp, fsync, rename,
  // dir fsync — the manifest is the commit point for the whole generation.
  io::Io& io = io::Current();
  const std::string path = dir + "/" + std::string(kManifestFileName);
  const std::string tmp = path + ".tmp";
  const bool written = RetryWithBackoff(
      retry, [&] { return io.WriteFile(tmp, envelope) && io.SyncFile(tmp); },
      sleep);
  if (!written) {
    (void)io.Remove(tmp);
    return stream::CheckpointStatus::kIoError;
  }
  if (!RetryWithBackoff(retry, [&] { return io.Rename(tmp, path); }, sleep)) {
    (void)io.Remove(tmp);
    return stream::CheckpointStatus::kIoError;
  }
  if (!RetryWithBackoff(retry, [&] { return io.SyncDir(dir); }, sleep)) {
    return stream::CheckpointStatus::kIoError;
  }
  return stream::CheckpointStatus::kOk;
}

namespace {

stream::CheckpointStatus LoadOnce(TreeManifest& manifest,
                                  const std::string& dir) {
  manifest = TreeManifest{};
  const std::string path = dir + "/" + std::string(kManifestFileName);
  const auto bytes = io::Current().ReadFile(path);
  if (!bytes) return stream::CheckpointStatus::kIoError;
  const std::string_view view = *bytes;
  if (view.size() < kManifestMagic.size()) {
    return stream::CheckpointStatus::kTruncated;
  }
  if (view.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return stream::CheckpointStatus::kBadMagic;
  }

  binio::Reader header(view.substr(kManifestMagic.size()));
  const std::uint32_t version = header.GetU32();
  const std::uint64_t payload_len = header.GetU64();
  const std::uint32_t crc = header.GetU32();
  if (!header.Ok()) return stream::CheckpointStatus::kTruncated;
  if (version != kManifestVersion) {
    return stream::CheckpointStatus::kBadVersion;
  }
  if (payload_len > header.Remaining()) {
    return stream::CheckpointStatus::kTruncated;
  }
  if (payload_len < header.Remaining()) {
    return stream::CheckpointStatus::kBadPayload;
  }
  const std::string_view payload = view.substr(view.size() - payload_len);
  if (binio::Crc32(payload) != crc) return stream::CheckpointStatus::kBadCrc;

  binio::Reader reader(payload);
  TreeManifest decoded;
  decoded.generation = reader.GetU64();
  decoded.topology.racks = static_cast<int>(reader.GetU32());
  decoded.topology.nodes_per_rack = static_cast<int>(reader.GetU32());
  const std::uint64_t count = reader.GetU64();
  bool ok = reader.Ok() && decoded.topology.Valid() &&
            reader.CanReadItems(count, sizeof(std::uint64_t)) &&
            count == static_cast<std::uint64_t>(decoded.topology.NodeCount());
  for (std::uint64_t i = 0; ok && i < count; ++i) {
    std::string name;
    ok = reader.GetString(name) && !name.empty() &&
         name.find('/') == std::string::npos;  // dir-relative names only
    decoded.node_files.push_back(std::move(name));
  }
  if (!ok || !reader.AtEnd()) return stream::CheckpointStatus::kBadPayload;
  manifest = std::move(decoded);
  return stream::CheckpointStatus::kOk;
}

bool RetryableLoad(stream::CheckpointStatus status) noexcept {
  return status == stream::CheckpointStatus::kIoError ||
         status == stream::CheckpointStatus::kTruncated ||
         status == stream::CheckpointStatus::kBadCrc;
}

}  // namespace

stream::CheckpointStatus LoadTreeManifest(TreeManifest& manifest,
                                          const std::string& dir,
                                          const RetryPolicy& retry,
                                          const SleepFn& sleep) {
  auto status = stream::CheckpointStatus::kIoError;
  const int attempts = retry.max_attempts > 1 ? retry.max_attempts : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = LoadOnce(manifest, dir);
    if (status == stream::CheckpointStatus::kOk || !RetryableLoad(status)) {
      break;
    }
    if (attempt < attempts && sleep) sleep(BackoffDelayMs(retry, attempt));
  }
  if (status != stream::CheckpointStatus::kOk) manifest = TreeManifest{};
  return status;
}

std::size_t SweepStaleGenerations(const std::string& dir,
                                  std::uint64_t keep_generation) {
  const std::string keep_suffix =
      ".g" + std::to_string(keep_generation) + ".ckp";
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "node-")) continue;
    if (!name.ends_with(".ckp") && !name.ends_with(".ckp.tmp")) continue;
    const std::string_view stem =
        name.ends_with(".tmp")
            ? std::string_view(name).substr(0, name.size() - 4)
            : std::string_view(name);
    if (stem.ends_with(keep_suffix) && !name.ends_with(".tmp")) continue;
    if (io::Current().Remove(entry.path().string())) ++removed;
  }
  return removed;
}

}  // namespace astra::serve
