#include "serve/fleet_dataset.hpp"

#include <cstddef>
#include <filesystem>
#include <vector>

#include "core/dataset.hpp"
#include "logs/log_file.hpp"

namespace astra::serve {

std::string NodeDir(const std::string& root, int node_index) {
  return root + "/" + NodeDirName(node_index);
}

namespace {

// One node's record indices into the campaign vectors.  Indices, not copies:
// a full-scale campaign is large and the split only permutes views of it.
struct NodeSlice {
  std::vector<std::size_t> memory;
  std::vector<std::size_t> het;
};

template <typename Record>
bool WriteSlice(const std::string& path, const std::vector<Record>& records,
                const std::vector<std::size_t>& indices) {
  logs::LogFileWriter<Record> writer(path);
  if (!writer.Ok()) return false;
  for (const std::size_t i : indices) writer.Append(records[i]);
  return writer.Finish();
}

}  // namespace

bool WriteFleetDataset(const faultsim::CampaignResult& result,
                       const std::string& root, const ServeTopology& topology) {
  if (!topology.Valid()) return false;
  const int nodes = topology.NodeCount();
  std::vector<NodeSlice> slices(static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < result.memory_errors.size(); ++i) {
    const int node = static_cast<int>(result.memory_errors[i].node) % nodes;
    slices[static_cast<std::size_t>(node)].memory.push_back(i);
  }
  for (std::size_t i = 0; i < result.het_records.size(); ++i) {
    const int node = static_cast<int>(result.het_records[i].node) % nodes;
    slices[static_cast<std::size_t>(node)].het.push_back(i);
  }

  std::error_code ec;
  for (int node = 0; node < nodes; ++node) {
    const std::string dir = NodeDir(root, node);
    std::filesystem::create_directories(dir, ec);
    if (ec) return false;
    const auto paths = core::DatasetPaths::InDirectory(dir);
    const auto& slice = slices[static_cast<std::size_t>(node)];
    if (!WriteSlice(paths.memory_errors, result.memory_errors, slice.memory)) {
      return false;
    }
    if (!WriteSlice(paths.het_events, result.het_records, slice.het)) {
      return false;
    }
  }
  return true;
}

bool WriteCombinedDataset(const faultsim::CampaignResult& result,
                          const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  return core::WriteFailureData(core::DatasetPaths::InDirectory(dir), result);
}

}  // namespace astra::serve
