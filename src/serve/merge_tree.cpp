#include "serve/merge_tree.hpp"

#include <ostream>

#include "core/report.hpp"

namespace astra::serve {

NodeSample SampleMonitor(const stream::StreamMonitor& monitor) {
  NodeSample sample;
  sample.engines = monitor.Engines();
  sample.alerts = monitor.AlertEngine();
  sample.memory_report = monitor.MemoryReport();
  sample.het_report = monitor.HetReport();
  sample.memory_seen = monitor.MemorySeen();
  sample.het_seen = monitor.HetSeen();
  sample.rejected = monitor.Rejected();
  return sample;
}

core::DataQuality MergedView::Quality() const {
  auto quality = core::DataQuality::FromReport(memory_report);
  if (HetMissing()) {
    quality.stream_missing = true;
  } else if (any_het_seen) {
    quality.Merge(core::DataQuality::FromReport(het_report));
  }
  return quality;
}

std::optional<MergedView> MergeSamples(
    const core::EngineSetConfig& engine_config,
    const stream::AlertConfig& alert_config,
    std::span<const NodeSample> samples) {
  MergedView view;
  view.engines = core::AnalysisEngineSet{engine_config};
  view.alerts = stream::StreamingAlerts{alert_config};
  // Index order with the accumulator as the earlier operand — the same
  // reduction discipline as the parallel batch driver, so first-observation
  // state (coalesce anchors) matches a serial replay's.
  for (const NodeSample& sample : samples) {
    if (!view.engines.MergeFrom(sample.engines)) return std::nullopt;
    if (!view.alerts.MergeFrom(sample.alerts)) return std::nullopt;
    view.memory_report.Merge(sample.memory_report);
    view.het_report.Merge(sample.het_report);
    view.any_memory_seen = view.any_memory_seen || sample.memory_seen;
    view.any_het_seen = view.any_het_seen || sample.het_seen;
    view.rejected = view.rejected || sample.rejected;
    ++view.nodes_merged;
  }
  return view;
}

void RenderMergedReport(std::ostream& out, const logs::IngestPolicy& policy,
                        const MergedView& view) {
  core::RenderIngestReport(out, policy, view.memory_report,
                           view.HetMissing() ? nullptr : &view.het_report);
  if (view.rejected) return;  // analyze stops after the accounting (exit 3)
  if (view.Delivered() == 0) {
    core::RenderEmptyDatasetReport(out, view.Quality());
    return;
  }
  const core::DataQuality quality = view.Quality();
  core::RenderAnalysisReport(
      out, view.engines.Finalize(view.engines.InferredContext(), &quality));
}

}  // namespace astra::serve
