// Hardware replacement simulator (§3.1, Table 1, Fig. 3).
//
// The paper tallies component replacements during the Feb 17 - Sep 17 2019
// stabilization period by diffing the site's daily inventory scans.  The
// generative model here is a bathtub-curve hazard plus component-specific
// event waves, matching the paper's narrative:
//
//   processors   (836 of 5184, 16.1%): infant mortality at bring-up, then a
//     large mid-period wave from the in-field memory-controller speed
//     upgrade ("Not all of the processors were able to support the
//     increased speed"), plus an end-of-period vendor-visit spike.
//   motherboards (46 of 2592, 1.8%): infant mortality plus a second uptick
//     "after several months of sustained use".
//   DIMMs        (1515 of 41472, 3.7%): infant mortality, a mid-period wave
//     from cooling issues, a steady aging tail, and the end spike.
//
// Replacements are detected exactly the way the site detected them: a
// serial-number change between consecutive daily inventory snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "logs/records.hpp"
#include "util/sim_time.hpp"

namespace astra::replace {

// A transient elevation of the replacement rate, Gaussian in time.
struct ReplacementWave {
  double center_day = 0.0;     // days from tracking start
  double sigma_days = 7.0;
  double expected_total = 0.0; // expected replacements contributed by the wave
};

struct ComponentHazard {
  // Infant mortality: rate decays as exp(-t / tau); `infant_total` is the
  // expected number of replacements it contributes over an infinite horizon.
  double infant_total = 0.0;
  double infant_tau_days = 21.0;
  // Constant background replacement rate (aging / random failures).
  double baseline_per_day = 0.0;
  std::vector<ReplacementWave> waves;

  // Expected replacements on day `d` (days from tracking start).
  [[nodiscard]] double ExpectedOnDay(double d) const noexcept;
  // Expected total over `days` days of tracking.
  [[nodiscard]] double ExpectedTotal(double days) const noexcept;
};

struct ReplacementSimConfig {
  std::uint64_t seed = 0x2e71ace5ULL;
  // Paper's tracking window: Feb 17 to Sep 17, 2019 (Table 1 caption).
  TimeWindow tracking{SimTime::FromCivil(2019, 2, 17), SimTime::FromCivil(2019, 9, 17)};
  int node_count = kNumNodes;

  std::array<ComponentHazard, logs::kComponentKindCount> hazards;

  // Defaults calibrated to Table 1 totals and Fig. 3's wave structure.
  [[nodiscard]] static ReplacementSimConfig AstraDefaults();
};

struct ReplacementEvent {
  SimTime day;  // scan date on which the new part first appears
  logs::ComponentSite site;

  friend bool operator==(const ReplacementEvent&, const ReplacementEvent&) = default;
};

struct ReplacementCampaign {
  std::vector<ReplacementEvent> events;  // ascending by day, then site

  [[nodiscard]] std::uint64_t CountOfKind(logs::ComponentKind kind) const noexcept;
};

class ReplacementSimulator {
 public:
  explicit ReplacementSimulator(const ReplacementSimConfig& config);

  [[nodiscard]] const ReplacementSimConfig& Config() const noexcept { return config_; }

  [[nodiscard]] ReplacementCampaign Run() const;

  // Serial currently installed at `site` on `date`, given a campaign.  Serial
  // numbers are deterministic functions of (seed, site, generation).
  [[nodiscard]] std::uint64_t SerialAt(const ReplacementCampaign& campaign,
                                       const logs::ComponentSite& site,
                                       SimTime date) const noexcept;

  // Full inventory snapshot (one record per site) for the daily scan of
  // `date`.  Ordered by (kind, node, index).
  [[nodiscard]] std::vector<logs::InventoryRecord> SnapshotAt(
      const ReplacementCampaign& campaign, SimTime date) const;

  // All sites of a kind for the configured node_count, in snapshot order.
  [[nodiscard]] std::vector<logs::ComponentSite> SitesOfKind(
      logs::ComponentKind kind) const;

 private:
  ReplacementSimConfig config_;
};

// Recover replacement events from consecutive inventory snapshots (the
// measurement-side inverse of the simulator; §3.1's methodology).  Both
// snapshots must cover the same sites.
[[nodiscard]] std::vector<ReplacementEvent> DiffSnapshots(
    const std::vector<logs::InventoryRecord>& earlier,
    const std::vector<logs::InventoryRecord>& later);

}  // namespace astra::replace
