#include "replace/replacement_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>

#include "util/rng.hpp"

namespace astra::replace {
namespace {

enum : std::uint64_t {
  kTagSerial = 31,
  kTagDaily = 32,
};

double GaussianPdf(double x, double mu, double sigma) noexcept {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * std::numbers::pi));
}

double NormalCdf(double x, double mu, double sigma) noexcept {
  return 0.5 * (1.0 + std::erf((x - mu) / (sigma * std::numbers::sqrt2)));
}

// Index -> site enumeration per kind for a given node count.
logs::ComponentSite SiteOfIndex(logs::ComponentKind kind, std::uint64_t index) {
  logs::ComponentSite site;
  site.kind = kind;
  switch (kind) {
    case logs::ComponentKind::kProcessor:
      site.node = static_cast<NodeId>(index / kSocketsPerNode);
      site.index = static_cast<std::int8_t>(index % kSocketsPerNode);
      break;
    case logs::ComponentKind::kMotherboard:
      site.node = static_cast<NodeId>(index);
      site.index = 0;
      break;
    case logs::ComponentKind::kDimm:
      site.node = static_cast<NodeId>(index / kDimmSlotsPerNode);
      site.index = static_cast<std::int8_t>(index % kDimmSlotsPerNode);
      break;
  }
  return site;
}

std::uint64_t SitesPerNode(logs::ComponentKind kind) noexcept {
  switch (kind) {
    case logs::ComponentKind::kProcessor: return kSocketsPerNode;
    case logs::ComponentKind::kMotherboard: return 1;
    case logs::ComponentKind::kDimm: return kDimmSlotsPerNode;
  }
  return 0;
}

}  // namespace

double ComponentHazard::ExpectedOnDay(double d) const noexcept {
  double rate = baseline_per_day;
  if (infant_tau_days > 0.0) {
    rate += infant_total / infant_tau_days * std::exp(-d / infant_tau_days);
  }
  for (const ReplacementWave& wave : waves) {
    rate += wave.expected_total * GaussianPdf(d, wave.center_day, wave.sigma_days);
  }
  return rate;
}

double ComponentHazard::ExpectedTotal(double days) const noexcept {
  double total = baseline_per_day * days;
  if (infant_tau_days > 0.0) {
    total += infant_total * (1.0 - std::exp(-days / infant_tau_days));
  }
  for (const ReplacementWave& wave : waves) {
    total += wave.expected_total * (NormalCdf(days, wave.center_day, wave.sigma_days) -
                                    NormalCdf(0.0, wave.center_day, wave.sigma_days));
  }
  return total;
}

ReplacementSimConfig ReplacementSimConfig::AstraDefaults() {
  ReplacementSimConfig config;
  const double days = config.tracking.DurationDays();  // 212

  // Processors: 836 expected.  Dominated by the memory-controller speed
  // upgrade wave (§3.1), bracketed by infant mortality and the vendor visit.
  auto& proc = config.hazards[static_cast<int>(logs::ComponentKind::kProcessor)];
  proc.infant_total = 160.0;
  proc.infant_tau_days = 15.0;
  proc.waves = {{130.0, 12.0, 590.0}, {205.0, 4.0, 60.0}};
  proc.baseline_per_day = (836.0 - 160.0 - 590.0 - 60.0) / days;

  // Motherboards: 46 expected; infant mortality plus a late-use uptick.
  auto& mb = config.hazards[static_cast<int>(logs::ComponentKind::kMotherboard)];
  mb.infant_total = 20.0;
  mb.infant_tau_days = 20.0;
  mb.waves = {{150.0, 14.0, 15.0}, {205.0, 4.0, 4.0}};
  mb.baseline_per_day = (46.0 - 20.0 - 15.0 - 4.0) / days;

  // DIMMs: 1515 expected; infant mortality, the cooling-issue wave, a
  // constant aging tail, and the end spike.
  auto& dimm = config.hazards[static_cast<int>(logs::ComponentKind::kDimm)];
  dimm.infant_total = 320.0;
  dimm.infant_tau_days = 18.0;
  dimm.waves = {{110.0, 18.0, 480.0}, {205.0, 4.0, 115.0}};
  dimm.baseline_per_day = (1515.0 - 320.0 - 480.0 - 115.0) / days;

  return config;
}

std::uint64_t ReplacementCampaign::CountOfKind(logs::ComponentKind kind) const noexcept {
  std::uint64_t count = 0;
  for (const ReplacementEvent& event : events) {
    if (event.site.kind == kind) ++count;
  }
  return count;
}

ReplacementSimulator::ReplacementSimulator(const ReplacementSimConfig& config)
    : config_(config) {}

std::vector<logs::ComponentSite> ReplacementSimulator::SitesOfKind(
    logs::ComponentKind kind) const {
  const std::uint64_t count =
      SitesPerNode(kind) * static_cast<std::uint64_t>(config_.node_count);
  std::vector<logs::ComponentSite> sites;
  sites.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) sites.push_back(SiteOfIndex(kind, i));
  return sites;
}

ReplacementCampaign ReplacementSimulator::Run() const {
  ReplacementCampaign campaign;
  const auto days = static_cast<int>(config_.tracking.DurationDays());
  const double scale = static_cast<double>(config_.node_count) /
                       static_cast<double>(kNumNodes);
  Rng rng(MixSeed(config_.seed, kTagDaily));

  for (int kind_idx = 0; kind_idx < logs::kComponentKindCount; ++kind_idx) {
    const auto kind = static_cast<logs::ComponentKind>(kind_idx);
    const ComponentHazard& hazard = config_.hazards[kind_idx];
    const std::uint64_t site_count =
        SitesPerNode(kind) * static_cast<std::uint64_t>(config_.node_count);
    if (site_count == 0) continue;

    for (int d = 0; d < days; ++d) {
      const double mean = hazard.ExpectedOnDay(static_cast<double>(d) + 0.5) * scale;
      const std::uint64_t count = rng.Poisson(mean);
      for (std::uint64_t i = 0; i < count; ++i) {
        ReplacementEvent event;
        event.day = config_.tracking.begin.AddDays(d);
        event.site = SiteOfIndex(kind, rng.UniformInt(site_count));
        campaign.events.push_back(event);
      }
    }
  }

  std::sort(campaign.events.begin(), campaign.events.end(),
            [](const ReplacementEvent& a, const ReplacementEvent& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.site < b.site;
            });
  // A site can be replaced at most once per daily scan: collapse duplicates.
  campaign.events.erase(std::unique(campaign.events.begin(), campaign.events.end()),
                        campaign.events.end());
  return campaign;
}

std::uint64_t ReplacementSimulator::SerialAt(const ReplacementCampaign& campaign,
                                             const logs::ComponentSite& site,
                                             SimTime date) const noexcept {
  std::uint64_t generation = 0;
  for (const ReplacementEvent& event : campaign.events) {
    if (event.site == site && event.day <= date) ++generation;
  }
  const std::uint64_t serial = MixSeed(
      config_.seed, kTagSerial, static_cast<std::uint64_t>(site.kind),
      static_cast<std::uint64_t>(site.node), static_cast<std::uint64_t>(site.index),
      generation);
  return serial | 1;  // never zero
}

std::vector<logs::InventoryRecord> ReplacementSimulator::SnapshotAt(
    const ReplacementCampaign& campaign, SimTime date) const {
  // Generation per site via a single pass over the (sorted) events.
  std::map<logs::ComponentSite, std::uint64_t> generations;
  for (const ReplacementEvent& event : campaign.events) {
    if (event.day <= date) ++generations[event.site];
  }

  std::vector<logs::InventoryRecord> snapshot;
  for (int kind_idx = 0; kind_idx < logs::kComponentKindCount; ++kind_idx) {
    const auto kind = static_cast<logs::ComponentKind>(kind_idx);
    for (const logs::ComponentSite& site : SitesOfKind(kind)) {
      logs::InventoryRecord record;
      record.scan_date = date;
      record.site = site;
      const auto it = generations.find(site);
      const std::uint64_t generation = it == generations.end() ? 0 : it->second;
      record.serial = MixSeed(config_.seed, kTagSerial,
                              static_cast<std::uint64_t>(site.kind),
                              static_cast<std::uint64_t>(site.node),
                              static_cast<std::uint64_t>(site.index), generation) |
                      1;
      snapshot.push_back(record);
    }
  }
  return snapshot;
}

std::vector<ReplacementEvent> DiffSnapshots(
    const std::vector<logs::InventoryRecord>& earlier,
    const std::vector<logs::InventoryRecord>& later) {
  // Index the earlier snapshot by site.
  std::map<logs::ComponentSite, std::uint64_t> before;
  for (const logs::InventoryRecord& record : earlier) {
    before[record.site] = record.serial;
  }
  std::vector<ReplacementEvent> events;
  for (const logs::InventoryRecord& record : later) {
    const auto it = before.find(record.site);
    if (it != before.end() && it->second != record.serial) {
      events.push_back(ReplacementEvent{record.scan_date, record.site});
    }
  }
  return events;
}

}  // namespace astra::replace
