// Telemetry corruption injector: deterministically degrades a clean dataset
// directory the way real field collection does.  The paper's methodology
// survives messy production data (§2.2 excludes damaged records, §3.2
// quantifies CE log-buffer loss, §2.4 releases raw syslog-extracted TSV);
// this module produces that mess on demand so the ingest layer and the
// analyses can be tested — and ablated — against it.
//
// Every mode is independently rated by a severity knob in [0, 1] and keyed
// by (seed, file name, mode), so the same config always produces byte-
// identical damage regardless of application order across files.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astra::logs {

// The corruption taxonomy (see DESIGN.md for the repair story of each mode).
enum class CorruptionMode : std::uint8_t {
  kTruncateTail = 0,    // node crash mid-write: tail-chopped file, torn last line
  kTornLines,           // interleaved writes: merged and split lines
  kDuplicateRecords,    // at-least-once collection: exact duplicate lines
  kOutOfOrder,          // bounded reordering of nearby lines
  kClockSkew,           // per-node clock offsets and resets on timestamps
  kMissingData,         // whole missing files / dropped day-ranges
  kHeaderDrift,         // renamed / reordered / extra columns (schema drift)
  kEncodingGarbage,     // byte-level garbage injected into lines
};
inline constexpr int kCorruptionModeCount = 8;

[[nodiscard]] std::string_view CorruptionModeName(CorruptionMode mode) noexcept;
[[nodiscard]] std::optional<CorruptionMode> CorruptionModeFromName(
    std::string_view name) noexcept;

struct CorruptionConfig {
  std::uint64_t seed = 1;
  // Per-mode severity in [0, 1]; 0 disables the mode entirely.
  std::array<double, kCorruptionModeCount> severity{};

  void SetAll(double s) noexcept;
  void Set(CorruptionMode mode, double s) noexcept;
  [[nodiscard]] double Severity(CorruptionMode mode) const noexcept {
    return severity[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] bool AnyEnabled() const noexcept;
};

// What the injector did — so tests and the CLI can assert/report damage.
struct CorruptionReport {
  std::array<std::uint64_t, kCorruptionModeCount> lines_affected{};
  std::uint64_t files_corrupted = 0;
  std::uint64_t files_dropped = 0;
  std::uint64_t bytes_chopped = 0;
  std::vector<std::string> actions;  // human-readable damage log

  [[nodiscard]] std::uint64_t AffectedBy(CorruptionMode mode) const noexcept {
    return lines_affected[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] std::uint64_t TotalAffected() const noexcept;
  void Merge(const CorruptionReport& other);
};

class CorruptionInjector {
 public:
  explicit CorruptionInjector(const CorruptionConfig& config) : config_(config) {}

  // Degrade one file in place.  Returns nullopt when the file cannot be
  // read or rewritten.  `protect_from_drop`: never remove this file outright
  // (the kMissingData whole-file drop), only damage its contents.
  [[nodiscard]] std::optional<CorruptionReport> CorruptFile(
      const std::string& path, bool protect_from_drop = false) const;

  // Degrade every *.tsv in `dir` (sorted order, so damage is deterministic).
  // memory_errors.tsv is protected from whole-file drops: a dataset with no
  // primary stream is not an interesting robustness case, it is an empty one.
  [[nodiscard]] std::optional<CorruptionReport> CorruptDirectory(
      const std::string& dir) const;

  // The pure line-level core (everything except whole-file drops and byte
  // tail truncation), exposed for tests.  `file_tag` keys the rng streams.
  [[nodiscard]] std::vector<std::string> CorruptLines(std::vector<std::string> lines,
                                                      std::string_view file_tag,
                                                      CorruptionReport& report) const;

 private:
  CorruptionConfig config_;
};

}  // namespace astra::logs
