#include "logs/corruption.hpp"

#include <algorithm>
#include <filesystem>

#include "logs/ingest.hpp"
#include "logs/serialize.hpp"
#include "util/file_io.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/strings.hpp"

namespace astra::logs {
namespace {

constexpr std::string_view kModeNames[kCorruptionModeCount] = {
    "truncate-tail", "torn-lines", "duplicate-records", "out-of-order",
    "clock-skew",    "missing-data", "header-drift",    "encoding-garbage",
};

[[nodiscard]] std::uint64_t Fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// One independent stream per (seed, file, mode): damage to one file never
// shifts the damage another file receives.
[[nodiscard]] Rng ModeRng(const CorruptionConfig& config, std::string_view tag,
                          CorruptionMode mode) {
  return Rng(MixSeed(config.seed, Fnv1a(tag),
                     static_cast<std::uint64_t>(mode) + 0x51ULL));
}

// Which canonical schema (if any) the file carries, from its header line.
struct SchemaInfo {
  bool has_header = false;
  std::size_t node_field = 1;  // column carrying the node id
};

[[nodiscard]] SchemaInfo DetectSchema(const std::vector<std::string>& lines) {
  SchemaInfo info;
  if (lines.empty()) return info;
  const std::string_view first = lines.front();
  if (first == MemoryErrorHeader() || first == SensorHeader() ||
      first == HetHeader()) {
    info.has_header = true;
    info.node_field = 1;
  } else if (first == InventoryHeader()) {
    info.has_header = true;
    info.node_field = 2;
  }
  return info;
}

[[nodiscard]] std::optional<SimTime> LineTimestamp(std::string_view line) {
  const auto tab = line.find('\t');
  SimTime t;
  if (!SimTime::Parse(line.substr(0, tab), t)) return std::nullopt;
  return t;
}

// Rewrite the leading timestamp field, preserving date-only formatting
// (inventory scans) so the skew looks like the collector produced it.
[[nodiscard]] bool ShiftLineTimestamp(std::string& line, std::int64_t offset_s) {
  const auto tab = line.find('\t');
  const std::string_view field =
      std::string_view(line).substr(0, tab == std::string::npos ? line.size() : tab);
  SimTime t;
  if (!SimTime::Parse(field, t)) return false;
  const bool date_only = field.find(' ') == std::string_view::npos;
  const SimTime shifted = t.AddSeconds(offset_s);
  const std::string rewritten =
      date_only ? shifted.ToDateString() : shifted.ToString();
  line.replace(0, field.size(), rewritten);
  return true;
}

[[nodiscard]] char RandomGarbageByte(Rng& rng) {
  char c;
  do {
    c = static_cast<char>(1 + rng.UniformInt(std::uint64_t{254}));
  } while (c == '\n' || c == '\r');
  return c;
}

}  // namespace

std::string_view CorruptionModeName(CorruptionMode mode) noexcept {
  return kModeNames[static_cast<std::size_t>(mode)];
}

std::optional<CorruptionMode> CorruptionModeFromName(std::string_view name) noexcept {
  for (int m = 0; m < kCorruptionModeCount; ++m) {
    if (kModeNames[static_cast<std::size_t>(m)] == name) {
      return static_cast<CorruptionMode>(m);
    }
  }
  return std::nullopt;
}

void CorruptionConfig::SetAll(double s) noexcept {
  severity.fill(std::clamp(s, 0.0, 1.0));
}

void CorruptionConfig::Set(CorruptionMode mode, double s) noexcept {
  severity[static_cast<std::size_t>(mode)] = std::clamp(s, 0.0, 1.0);
}

bool CorruptionConfig::AnyEnabled() const noexcept {
  return std::any_of(severity.begin(), severity.end(),
                     [](double s) { return s > 0.0; });
}

std::uint64_t CorruptionReport::TotalAffected() const noexcept {
  std::uint64_t total = files_dropped + (bytes_chopped > 0 ? 1 : 0);
  for (const auto n : lines_affected) total += n;
  return total;
}

void CorruptionReport::Merge(const CorruptionReport& other) {
  for (int m = 0; m < kCorruptionModeCount; ++m) {
    lines_affected[static_cast<std::size_t>(m)] +=
        other.lines_affected[static_cast<std::size_t>(m)];
  }
  files_corrupted += other.files_corrupted;
  files_dropped += other.files_dropped;
  bytes_chopped += other.bytes_chopped;
  actions.insert(actions.end(), other.actions.begin(), other.actions.end());
}

std::vector<std::string> CorruptionInjector::CorruptLines(
    std::vector<std::string> lines, std::string_view file_tag,
    CorruptionReport& report) const {
  const SchemaInfo schema = DetectSchema(lines);
  const std::size_t data_start = schema.has_header ? 1 : 0;
  const std::string tag(file_tag);
  const auto count = [&report](CorruptionMode mode, std::uint64_t n) {
    report.lines_affected[static_cast<std::size_t>(mode)] += n;
  };

  // --- Header / column drift: a collector version that writes the same
  // fields under different names, in a different order, with extras.  The
  // whole file stays self-consistent (that is what schema drift looks like).
  if (const double sev = config_.Severity(CorruptionMode::kHeaderDrift);
      sev > 0.0 && schema.has_header) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kHeaderDrift);
    if (rng.Bernoulli(0.3 + 0.7 * sev)) {
      auto names_views = SplitView(lines.front(), '\t');
      std::vector<std::string> names(names_views.begin(), names_views.end());
      const std::size_t ncols = names.size();

      // Rename a severity-scaled share of columns to registered aliases.
      std::uint64_t renamed = 0;
      for (auto& name : names) {
        if (!rng.Bernoulli(0.3 + 0.5 * sev)) continue;
        const auto aliases = ColumnAliases(name);
        if (aliases.empty()) continue;
        name = std::string(aliases[rng.UniformInt(aliases.size())]);
        ++renamed;
      }

      // Permute column order (the reader repairs this by name).
      std::vector<std::size_t> perm(ncols);
      for (std::size_t i = 0; i < ncols; ++i) perm[i] = i;
      bool permuted = false;
      if (sev >= 0.25) {
        for (std::size_t i = ncols - 1; i > 0; --i) {
          const std::size_t j = rng.UniformInt(i + 1);
          if (i != j) permuted = true;
          std::swap(perm[i], perm[j]);
        }
      }

      const bool extra_column = rng.Bernoulli(0.4 * sev);

      std::vector<std::string> new_names(ncols);
      for (std::size_t i = 0; i < ncols; ++i) new_names[i] = names[perm[i]];
      if (extra_column) new_names.push_back("fw_rev");

      std::string header;
      for (std::size_t i = 0; i < new_names.size(); ++i) {
        if (i != 0) header += '\t';
        header += new_names[i];
      }
      lines.front() = header;

      std::uint64_t rewritten = 0;
      for (std::size_t i = data_start; i < lines.size(); ++i) {
        const auto fields = SplitView(lines[i], '\t');
        if (fields.size() != ncols) continue;  // already-damaged line: leave it
        std::string rebuilt;
        for (std::size_t c = 0; c < ncols; ++c) {
          if (c != 0) rebuilt += '\t';
          rebuilt += fields[perm[c]];
        }
        if (extra_column) {
          rebuilt += "\t1.0";
        }
        lines[i] = std::move(rebuilt);
        ++rewritten;
      }
      if (renamed > 0 || permuted || extra_column) {
        count(CorruptionMode::kHeaderDrift, rewritten);
        report.actions.push_back(tag + ": header drift (" + std::to_string(renamed) +
                                 " renamed, " + (permuted ? "permuted" : "in order") +
                                 (extra_column ? ", extra column" : "") + ") over " +
                                 std::to_string(rewritten) + " lines");
      }
    }
  }

  // --- Per-node clock skew / resets on the timestamp field.
  if (const double sev = config_.Severity(CorruptionMode::kClockSkew); sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kClockSkew);
    std::vector<std::string> nodes;
    for (std::size_t i = data_start; i < lines.size(); ++i) {
      const auto fields = SplitView(lines[i], '\t');
      if (fields.size() <= schema.node_field) continue;
      const std::string node(fields[schema.node_field]);
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
    std::sort(nodes.begin(), nodes.end());
    struct Skew {
      std::string node;
      std::int64_t offset_s;
    };
    std::vector<Skew> skews;
    for (const auto& node : nodes) {
      if (!rng.Bernoulli(0.1 + 0.4 * sev)) continue;
      std::int64_t offset;
      if (rng.Bernoulli(0.2 * sev)) {
        // Clock reset: the BMC rebooted with a stale clock, weeks behind.
        offset = -SimTime::kSecondsPerDay * rng.UniformInt(30, 365);
      } else {
        const auto bound = static_cast<std::int64_t>(60.0 + sev * 7200.0);
        offset = rng.UniformInt(-bound, bound);
      }
      skews.push_back({node, offset});
    }
    if (!skews.empty()) {
      std::uint64_t shifted = 0;
      for (std::size_t i = data_start; i < lines.size(); ++i) {
        const auto fields = SplitView(lines[i], '\t');
        if (fields.size() <= schema.node_field) continue;
        const std::string_view node = fields[schema.node_field];
        const auto it = std::find_if(skews.begin(), skews.end(),
                                     [&](const Skew& s) { return s.node == node; });
        if (it == skews.end()) continue;
        if (ShiftLineTimestamp(lines[i], it->offset_s)) ++shifted;
      }
      count(CorruptionMode::kClockSkew, shifted);
      report.actions.push_back(tag + ": clock skew on " +
                               std::to_string(skews.size()) + " node(s), " +
                               std::to_string(shifted) + " lines shifted");
    }
  }

  // --- Bounded out-of-order: displace lines backwards by a few positions,
  // the way multi-source log merging scrambles near-simultaneous records.
  if (const double sev = config_.Severity(CorruptionMode::kOutOfOrder); sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kOutOfOrder);
    std::uint64_t moved = 0;
    for (std::size_t i = data_start; i < lines.size(); ++i) {
      if (!rng.Bernoulli(0.08 + 0.25 * sev)) continue;
      const auto k = 1 + rng.UniformInt(static_cast<std::uint64_t>(1 + sev * 30.0));
      const std::size_t j = i >= data_start + k ? i - k : data_start;
      if (i == j) continue;
      std::swap(lines[i], lines[j]);
      ++moved;
    }
    if (moved > 0) {
      count(CorruptionMode::kOutOfOrder, moved);
      report.actions.push_back(tag + ": displaced " + std::to_string(moved) +
                               " lines out of order");
    }
  }

  // --- Duplicated records (at-least-once collection, retried uploads).
  if (const double sev = config_.Severity(CorruptionMode::kDuplicateRecords);
      sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kDuplicateRecords);
    std::vector<std::string> out;
    out.reserve(lines.size());
    std::uint64_t duplicated = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out.push_back(lines[i]);
      if (i >= data_start && rng.Bernoulli(0.05 + 0.20 * sev)) {
        out.push_back(lines[i]);
        ++duplicated;
      }
    }
    lines = std::move(out);
    if (duplicated > 0) {
      count(CorruptionMode::kDuplicateRecords, duplicated);
      report.actions.push_back(tag + ": duplicated " + std::to_string(duplicated) +
                               " lines");
    }
  }

  // --- Torn lines: concurrent writers without line buffering merge two
  // records onto one line, or break one record across two.
  if (const double sev = config_.Severity(CorruptionMode::kTornLines); sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kTornLines);
    std::vector<std::string> out;
    out.reserve(lines.size());
    std::uint64_t torn = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i < data_start || !rng.Bernoulli(0.04 + 0.12 * sev)) {
        out.push_back(lines[i]);
        continue;
      }
      if (rng.Bernoulli(0.5) && i + 1 < lines.size()) {
        out.push_back(lines[i] + lines[i + 1]);  // lost newline
        ++i;
        torn += 2;
      } else if (lines[i].size() >= 2) {
        const std::size_t pos = 1 + rng.UniformInt(lines[i].size() - 1);
        out.push_back(lines[i].substr(0, pos));
        out.push_back(lines[i].substr(pos));
        ++torn;
      } else {
        out.push_back(lines[i]);
      }
    }
    lines = std::move(out);
    if (torn > 0) {
      count(CorruptionMode::kTornLines, torn);
      report.actions.push_back(tag + ": tore " + std::to_string(torn) + " lines");
    }
  }

  // --- Missing day-ranges: a collector outage drops a contiguous span.
  if (const double sev = config_.Severity(CorruptionMode::kMissingData); sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kMissingData);
    if (rng.Bernoulli(0.3 + 0.5 * sev)) {
      std::optional<SimTime> first, last;
      for (std::size_t i = data_start; i < lines.size(); ++i) {
        if ((first = LineTimestamp(lines[i]))) break;
      }
      for (std::size_t i = lines.size(); i-- > data_start;) {
        if ((last = LineTimestamp(lines[i]))) break;
      }
      if (first && last && *last > *first) {
        const double span_days =
            static_cast<double>(SecondsBetween(*first, *last)) /
            static_cast<double>(SimTime::kSecondsPerDay);
        const double drop_days = std::max(0.5, (0.05 + 0.25 * sev) * span_days);
        const SimTime start = first->AddSeconds(static_cast<std::int64_t>(
            rng.UniformDouble() * std::max(0.0, span_days - drop_days) *
            static_cast<double>(SimTime::kSecondsPerDay)));
        const SimTime end = start.AddSeconds(static_cast<std::int64_t>(
            drop_days * static_cast<double>(SimTime::kSecondsPerDay)));
        std::vector<std::string> out;
        out.reserve(lines.size());
        std::uint64_t dropped = 0;
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (i >= data_start) {
            if (const auto t = LineTimestamp(lines[i]); t && *t >= start && *t < end) {
              ++dropped;
              continue;
            }
          }
          out.push_back(std::move(lines[i]));
        }
        lines = std::move(out);
        if (dropped > 0) {
          count(CorruptionMode::kMissingData, dropped);
          report.actions.push_back(tag + ": dropped " + std::to_string(dropped) +
                                   " lines in a " + FormatDouble(drop_days, 1) +
                                   "-day outage window");
        }
      }
    }
  }

  // --- Byte-level encoding garbage.
  if (const double sev = config_.Severity(CorruptionMode::kEncodingGarbage);
      sev > 0.0) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kEncodingGarbage);
    std::uint64_t garbled = 0;
    for (std::size_t i = data_start; i < lines.size(); ++i) {
      if (!rng.Bernoulli(0.03 + 0.10 * sev)) continue;
      std::string& line = lines[i];
      if (rng.Bernoulli(0.3)) {
        const std::size_t len = 5 + rng.UniformInt(std::uint64_t{75});
        line.clear();
        for (std::size_t b = 0; b < len; ++b) line += RandomGarbageByte(rng);
      } else {
        const auto injections =
            1 + rng.UniformInt(static_cast<std::uint64_t>(3 + sev * 8.0));
        for (std::uint64_t b = 0; b < injections && !line.empty(); ++b) {
          line.insert(rng.UniformInt(line.size() + 1), 1, RandomGarbageByte(rng));
        }
      }
      ++garbled;
    }
    if (garbled > 0) {
      count(CorruptionMode::kEncodingGarbage, garbled);
      report.actions.push_back(tag + ": injected garbage into " +
                               std::to_string(garbled) + " lines");
    }
  }

  return lines;
}

std::optional<CorruptionReport> CorruptionInjector::CorruptFile(
    const std::string& path, bool protect_from_drop) const {
  const std::string tag = std::filesystem::path(path).filename().string();
  CorruptionReport report;

  // Whole-file drop (node never uploaded this stream at all).
  if (const double sev = config_.Severity(CorruptionMode::kMissingData);
      sev > 0.0 && !protect_from_drop) {
    Rng rng(MixSeed(config_.seed, Fnv1a(tag), 0xd20bULL));
    if (rng.Bernoulli(0.35 * sev)) {
      std::error_code ec;
      if (!std::filesystem::remove(path, ec) || ec) return std::nullopt;
      ++report.files_dropped;
      report.actions.push_back(tag + ": whole file dropped");
      return report;
    }
  }

  auto lines = ReadLines(path);
  if (!lines) return std::nullopt;
  auto corrupted = CorruptLines(std::move(*lines), tag, report);

  std::string content;
  for (const auto& line : corrupted) {
    content += line;
    content += '\n';
  }

  // Tail chop: the node crashed mid-write, leaving a truncated final line.
  if (const double sev = config_.Severity(CorruptionMode::kTruncateTail);
      sev > 0.0 && content.size() > 1) {
    Rng rng = ModeRng(config_, tag, CorruptionMode::kTruncateTail);
    if (rng.Bernoulli(0.4 + 0.5 * sev)) {
      const auto bound = static_cast<std::uint64_t>(
          std::max(1.0, (0.01 + 0.20 * sev) * static_cast<double>(content.size())));
      const std::uint64_t chop =
          std::min<std::uint64_t>(1 + rng.UniformInt(bound), content.size() - 1);
      content.resize(content.size() - chop);
      report.bytes_chopped += chop;
      report.actions.push_back(tag + ": tail-chopped " + std::to_string(chop) +
                               " bytes");
    }
  }

  if (!WriteFileBytes(path, content)) return std::nullopt;
  if (report.TotalAffected() > 0) ++report.files_corrupted;
  return report;
}

std::optional<CorruptionReport> CorruptionInjector::CorruptDirectory(
    const std::string& dir) const {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec) || ec) return std::nullopt;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tsv") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return std::nullopt;
  std::sort(paths.begin(), paths.end());  // deterministic application order

  CorruptionReport merged;
  for (const auto& path : paths) {
    const bool protect =
        std::filesystem::path(path).filename() == "memory_errors.tsv";
    const auto report = CorruptFile(path, protect);
    if (!report) return std::nullopt;
    merged.Merge(*report);
  }
  return merged;
}

}  // namespace astra::logs
