#include "logs/records.hpp"

namespace astra::logs {

std::string_view FailureTypeName(FailureType type) noexcept {
  switch (type) {
    case FailureType::kCorrectable: return "CE";
    case FailureType::kUncorrectable: return "DUE";
  }
  return "invalid";
}

std::optional<FailureType> FailureTypeFromName(std::string_view name) noexcept {
  if (name == "CE") return FailureType::kCorrectable;
  if (name == "DUE") return FailureType::kUncorrectable;
  return std::nullopt;
}

std::string_view HetEventTypeName(HetEventType type) noexcept {
  // Spellings match the paper's Fig. 15 legend verbatim (including the
  // vendor's "redundacy" typo) so parsers written against the real release
  // format interoperate.
  switch (type) {
    case HetEventType::kUncorrectableEcc: return "uncorrectableECC";
    case HetEventType::kUncorrectableMachineCheck:
      return "uncorrectableMachineCheckException";
    case HetEventType::kRedundancyLost: return "redundacyLost";
    case HetEventType::kUcGoingHigh: return "ucGoingHigh";
    case HetEventType::kUnrGoingHigh: return "unrGoingHigh";
    case HetEventType::kPowerSupplyFailure: return "powerSupplyFailureDetected";
    case HetEventType::kPowerSupplyFailureDeasserted:
      return "powerSupplyFailureDetected de-asserted";
    case HetEventType::kRedundancyInsufficientResources:
      return "redundacyNeInsufficientResources";
  }
  return "invalid";
}

std::optional<HetEventType> HetEventTypeFromName(std::string_view name) noexcept {
  for (int i = 0; i < kHetEventTypeCount; ++i) {
    const auto type = static_cast<HetEventType>(i);
    if (HetEventTypeName(type) == name) return type;
  }
  return std::nullopt;
}

std::string_view HetSeverityName(HetSeverity severity) noexcept {
  switch (severity) {
    case HetSeverity::kInformational: return "INFORMATIONAL";
    case HetSeverity::kDegraded: return "DEGRADED";
    case HetSeverity::kNonRecoverable: return "NON-RECOVERABLE";
  }
  return "invalid";
}

std::optional<HetSeverity> HetSeverityFromName(std::string_view name) noexcept {
  if (name == "INFORMATIONAL") return HetSeverity::kInformational;
  if (name == "DEGRADED") return HetSeverity::kDegraded;
  if (name == "NON-RECOVERABLE") return HetSeverity::kNonRecoverable;
  return std::nullopt;
}

std::string_view ComponentKindName(ComponentKind kind) noexcept {
  switch (kind) {
    case ComponentKind::kProcessor: return "processor";
    case ComponentKind::kMotherboard: return "motherboard";
    case ComponentKind::kDimm: return "dimm";
  }
  return "invalid";
}

std::optional<ComponentKind> ComponentKindFromName(std::string_view name) noexcept {
  if (name == "processor") return ComponentKind::kProcessor;
  if (name == "motherboard") return ComponentKind::kMotherboard;
  if (name == "dimm") return ComponentKind::kDimm;
  return std::nullopt;
}

}  // namespace astra::logs
