#include "logs/ingest.hpp"

#include <algorithm>
#include <cctype>

#include "util/sim_time.hpp"
#include "util/strings.hpp"

namespace astra::logs {
namespace {

std::string Lowered(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

struct ColumnAlias {
  std::string_view alias;
  std::string_view canonical;
};

// The drift vocabulary: names real collector versions have used for the
// canonical §2.4 columns.  Kept deliberately small and unambiguous (each
// alias maps to exactly one canonical name across all four schemas).
constexpr ColumnAlias kColumnAliases[] = {
    {"ts", "timestamp"},          {"time", "timestamp"},
    {"event_time", "timestamp"},  {"datetime", "timestamp"},
    {"node_id", "node"},          {"nodeid", "node"},
    {"host", "node"},             {"skt", "socket"},
    {"cpu_socket", "socket"},     {"failure_type", "type"},
    {"err_type", "type"},         {"dimm_slot", "slot"},
    {"dimm", "slot"},             {"row_id", "row"},
    {"rank_id", "rank"},          {"bank_id", "bank"},
    {"bit_pos", "bit"},           {"bitposition", "bit"},
    {"addr", "physaddr"},         {"address", "physaddr"},
    {"phys_addr", "physaddr"},    {"synd", "syndrome"},
    {"sensor_name", "sensor"},    {"channel", "sensor"},
    {"reading", "value"},         {"val", "value"},
    {"event_type", "event"},      {"sev", "severity"},
    {"date", "scan_date"},        {"scandate", "scan_date"},
    {"component_kind", "component"}, {"part", "component"},
    {"slot_index", "index"},      {"site_index", "index"},
    {"serial_no", "serial"},      {"sn", "serial"},
};

}  // namespace

std::string_view MalformedReasonName(MalformedReason reason) noexcept {
  switch (reason) {
    case MalformedReason::kFieldCount: return "field-count";
    case MalformedReason::kBadTimestamp: return "timestamp";
    case MalformedReason::kBadFieldValue: return "field-value";
  }
  return "unknown";
}

MalformedReason ClassifyMalformed(std::string_view line, std::size_t expected_fields) {
  const auto fields = SplitView(line, '\t');
  if (fields.size() != expected_fields) return MalformedReason::kFieldCount;
  SimTime t;
  if (!SimTime::Parse(fields[0], t)) return MalformedReason::kBadTimestamp;
  return MalformedReason::kBadFieldValue;
}

void IngestReport::Merge(const IngestReport& other) {
  stats.total_lines += other.stats.total_lines;
  stats.parsed += other.stats.parsed;
  stats.malformed += other.stats.malformed;
  for (int i = 0; i < kMalformedReasonCount; ++i) {
    malformed_by_reason[static_cast<std::size_t>(i)] +=
        other.malformed_by_reason[static_cast<std::size_t>(i)];
  }
  duplicates_removed += other.duplicates_removed;
  out_of_order_seen += other.out_of_order_seen;
  reordered += other.reordered;
  order_violations += other.order_violations;
  header_remapped = header_remapped || other.header_remapped;
  budget_exceeded = budget_exceeded || other.budget_exceeded;
  aborted = aborted || other.aborted;
  repairs.insert(repairs.end(), other.repairs.begin(), other.repairs.end());
}

std::optional<std::string_view> CanonicalColumnName(std::string_view name) noexcept {
  for (const auto& entry : kColumnAliases) {
    if (entry.alias == name) return entry.canonical;
  }
  return std::nullopt;
}

std::vector<std::string_view> ColumnAliases(std::string_view canonical) {
  std::vector<std::string_view> aliases;
  for (const auto& entry : kColumnAliases) {
    if (entry.canonical == canonical) aliases.push_back(entry.alias);
  }
  return aliases;
}

std::optional<HeaderMap> HeaderMap::Build(std::string_view canonical,
                                          std::string_view file_header) {
  const auto canonical_names = SplitView(canonical, '\t');
  const auto file_names = SplitView(file_header, '\t');
  if (file_names.size() < canonical_names.size()) return std::nullopt;

  // Resolve each file column to a canonical name (case-insensitive direct
  // match first, then the alias table).
  std::vector<std::string> resolved(file_names.size());
  for (std::size_t i = 0; i < file_names.size(); ++i) {
    const std::string lowered = Lowered(TrimView(file_names[i]));
    resolved[i] = lowered;
    if (const auto mapped = CanonicalColumnName(lowered)) {
      resolved[i] = std::string(*mapped);
    }
  }

  HeaderMap map;
  map.file_fields_ = file_names.size();
  map.canonical_to_file_.resize(canonical_names.size());
  for (std::size_t c = 0; c < canonical_names.size(); ++c) {
    const std::string want = Lowered(canonical_names[c]);
    bool found = false;
    for (std::size_t f = 0; f < resolved.size(); ++f) {
      if (resolved[f] == want) {
        map.canonical_to_file_[c] = f;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // unrecognisable: not a header we can map
  }
  map.identity_ = file_names.size() == canonical_names.size();
  if (map.identity_) {
    for (std::size_t c = 0; c < map.canonical_to_file_.size(); ++c) {
      if (map.canonical_to_file_[c] != c) {
        map.identity_ = false;
        break;
      }
    }
  }
  return map;
}

bool HeaderMap::ProjectLine(const std::vector<std::string_view>& fields,
                            std::string& out) const {
  if (fields.size() != file_fields_) return false;
  out.clear();
  for (std::size_t c = 0; c < canonical_to_file_.size(); ++c) {
    if (c != 0) out += '\t';
    out += fields[canonical_to_file_[c]];
  }
  return true;
}

}  // namespace astra::logs
