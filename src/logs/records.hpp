// Record types mirroring the paper's released dataset schema (§2.4):
//
//  "The failure data includes a timestamp, node ID, socket, type of failure,
//   DIMM slot, row, rank, bank, bit position, physical address and
//   vendor-specific syndrome data.  For environmental data, we include
//   per-node power draw and temperature readings for 6 sensors located on
//   each node ... collected from each sensor once per minute."
//
// Plus the two auxiliary logs the paper mines: the Hardware Event Tracker
// (HET) records for uncorrectable errors (§3.5) and the site's daily
// inventory scans used to detect component replacements (§3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "geometry/topology.hpp"
#include "util/sim_time.hpp"

namespace astra::logs {

// --- Memory failure telemetry ------------------------------------------------

enum class FailureType : std::uint8_t {
  kCorrectable = 0,    // CE: corrected by SEC-DED, logged via polling
  kUncorrectable = 1,  // DUE: machine check, logged synchronously
};

[[nodiscard]] std::string_view FailureTypeName(FailureType type) noexcept;
[[nodiscard]] std::optional<FailureType> FailureTypeFromName(std::string_view name) noexcept;

// Sentinel for fields the platform does not populate.  On Astra, CE records
// carry no usable row information (§3.2: "the system does not provide proper
// row information in the correctable error record passed to the syslog").
inline constexpr std::int32_t kNoRowInfo = -1;

struct MemoryErrorRecord {
  SimTime timestamp;
  NodeId node = 0;
  SocketId socket = 0;
  FailureType type = FailureType::kCorrectable;
  DimmSlot slot = DimmSlot::A;
  std::int32_t row = kNoRowInfo;  // kNoRowInfo when unavailable
  RankId rank = 0;
  BankId bank = 0;
  // Bit position as RECORDED: the true failing bit position in [0, 72) plus
  // a consistent vendor-specific encoding in the high bits (§3.2 footnote:
  // "seemed to encode additional data besides the actual failed bit
  // position ... the encoding was consistent").
  std::int32_t bit_position = 0;
  std::uint64_t physical_address = 0;
  std::uint32_t syndrome = 0;  // vendor-specific syndrome word

  friend bool operator==(const MemoryErrorRecord&, const MemoryErrorRecord&) = default;
};

// The consistent vendor encoding: the true bit position occupies the low 7
// bits; a per-DIMM vendor code occupies bits [7, 9).
[[nodiscard]] constexpr std::int32_t EncodeRecordedBit(int true_bit,
                                                       int vendor_code) noexcept {
  return static_cast<std::int32_t>(true_bit | ((vendor_code & 0x3) << 7));
}
[[nodiscard]] constexpr int TrueBitOfRecorded(std::int32_t recorded) noexcept {
  return recorded & 0x7F;
}

// --- Environmental telemetry --------------------------------------------------

struct SensorRecord {
  SimTime timestamp;
  NodeId node = 0;
  SensorKind sensor = SensorKind::kCpu0Temp;
  bool valid = true;   // false -> value missing ("NA" in the file)
  double value = 0.0;

  friend bool operator==(const SensorRecord&, const SensorRecord&) = default;
};

// --- Hardware Event Tracker (uncorrectable errors, §3.5) ---------------------

enum class HetEventType : std::uint8_t {
  kUncorrectableEcc = 0,
  kUncorrectableMachineCheck,
  kRedundancyLost,                 // paper spells it "redundacyLost"
  kUcGoingHigh,
  kUnrGoingHigh,
  kPowerSupplyFailure,
  kPowerSupplyFailureDeasserted,
  kRedundancyInsufficientResources,
};
inline constexpr int kHetEventTypeCount = 8;

enum class HetSeverity : std::uint8_t {
  kInformational = 0,
  kDegraded,
  kNonRecoverable,
};

[[nodiscard]] std::string_view HetEventTypeName(HetEventType type) noexcept;
[[nodiscard]] std::optional<HetEventType> HetEventTypeFromName(std::string_view name) noexcept;
[[nodiscard]] std::string_view HetSeverityName(HetSeverity severity) noexcept;
[[nodiscard]] std::optional<HetSeverity> HetSeverityFromName(std::string_view name) noexcept;

// True for the event classes that indicate a memory DUE (the §3.5
// "NON-RECOVERABLE" analysis set).
[[nodiscard]] constexpr bool IsMemoryDueEvent(HetEventType type) noexcept {
  return type == HetEventType::kUncorrectableEcc ||
         type == HetEventType::kUncorrectableMachineCheck;
}

struct HetRecord {
  SimTime timestamp;
  NodeId node = 0;
  HetEventType event = HetEventType::kUncorrectableEcc;
  HetSeverity severity = HetSeverity::kInformational;
  // Populated for memory events; kNoRowInfo-style sentinel otherwise.
  std::int8_t socket = -1;
  std::int8_t slot = -1;  // DIMM slot index, -1 when not applicable

  friend bool operator==(const HetRecord&, const HetRecord&) = default;
};

// --- Inventory scans (component replacement tracking, §3.1) -------------------

enum class ComponentKind : std::uint8_t {
  kProcessor = 0,
  kMotherboard = 1,
  kDimm = 2,
};
inline constexpr int kComponentKindCount = 3;

[[nodiscard]] std::string_view ComponentKindName(ComponentKind kind) noexcept;
[[nodiscard]] std::optional<ComponentKind> ComponentKindFromName(std::string_view name) noexcept;

// A physical component slot in the machine, identified independently of the
// part currently installed in it.
struct ComponentSite {
  ComponentKind kind = ComponentKind::kProcessor;
  NodeId node = 0;
  std::int8_t index = 0;  // socket for processors, slot for DIMMs, 0 for MB

  friend bool operator==(const ComponentSite&, const ComponentSite&) = default;
  friend auto operator<=>(const ComponentSite&, const ComponentSite&) = default;
};

// One line of a daily inventory scan: what serial number sits in a site.
struct InventoryRecord {
  SimTime scan_date;       // date of the daily scan
  ComponentSite site;
  std::uint64_t serial = 0;

  friend bool operator==(const InventoryRecord&, const InventoryRecord&) = default;
};

// Total population per component kind (Table 1 denominators).
[[nodiscard]] constexpr int ComponentPopulation(ComponentKind kind) noexcept {
  switch (kind) {
    case ComponentKind::kProcessor: return kNumProcessors;    // 5184
    case ComponentKind::kMotherboard: return kNumNodes;       // 2592
    case ComponentKind::kDimm: return kNumDimms;              // 41472
  }
  return 0;
}

}  // namespace astra::logs
