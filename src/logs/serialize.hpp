// Text (de)serialization of dataset records.  The on-disk format is
// tab-separated with one header line per file, following the §2.4 release
// ("text files containing both the memory failure telemetry ... and the
// environmental sensor data").  Parsers are strict per field but resilient
// per line: a malformed line yields nullopt and is counted by the caller,
// never aborting the whole ingest — real syslog extracts contain garbage.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "logs/records.hpp"

namespace astra::logs {

// Column headers, also used to sanity-check files on ingest.
[[nodiscard]] std::string_view MemoryErrorHeader() noexcept;
[[nodiscard]] std::string_view SensorHeader() noexcept;
[[nodiscard]] std::string_view HetHeader() noexcept;
[[nodiscard]] std::string_view InventoryHeader() noexcept;

[[nodiscard]] std::string FormatRecord(const MemoryErrorRecord& record);
[[nodiscard]] std::string FormatRecord(const SensorRecord& record);
[[nodiscard]] std::string FormatRecord(const HetRecord& record);
[[nodiscard]] std::string FormatRecord(const InventoryRecord& record);

[[nodiscard]] std::optional<MemoryErrorRecord> ParseMemoryError(std::string_view line);
[[nodiscard]] std::optional<SensorRecord> ParseSensor(std::string_view line);
[[nodiscard]] std::optional<HetRecord> ParseHet(std::string_view line);
[[nodiscard]] std::optional<InventoryRecord> ParseInventory(std::string_view line);

// Ingest bookkeeping shared by the file readers.
struct ParseStats {
  std::size_t total_lines = 0;      // data lines seen (header excluded)
  std::size_t parsed = 0;
  std::size_t malformed = 0;

  [[nodiscard]] double MalformedFraction() const noexcept {
    return total_lines == 0
               ? 0.0
               : static_cast<double>(malformed) / static_cast<double>(total_lines);
  }
};

}  // namespace astra::logs
