// Dataset-level ingest hardening: policy, accounting and repair machinery
// shared by the typed log-file readers.
//
// The per-line parsers (serialize.hpp) already survive malformed lines; this
// layer models the DATASET-level damage real field collection produces —
// truncated tails, duplicated records, bounded clock disorder, schema drift —
// and either repairs it (lenient mode) or rejects the dataset (strict mode).
// Every input line is accounted for: parsed + quarantined == seen, always.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logs/serialize.hpp"

namespace astra::logs {

// Why a quarantined line failed to parse.  Coarse by design: the strict
// field parsers do not report which field broke, so the reader re-derives
// the cheap-to-check causes and lumps the rest as kBadFieldValue.
enum class MalformedReason : std::uint8_t {
  kFieldCount = 0,   // wrong number of tab-separated fields (torn/garbled line)
  kBadTimestamp,     // leading timestamp field unparseable
  kBadFieldValue,    // a later field failed strict parsing or a domain check
};
inline constexpr int kMalformedReasonCount = 3;

[[nodiscard]] std::string_view MalformedReasonName(MalformedReason reason) noexcept;

// Classify a line that failed to parse.  `expected_fields` is the canonical
// column count for the record type being ingested.
[[nodiscard]] MalformedReason ClassifyMalformed(std::string_view line,
                                                std::size_t expected_fields);

// How tolerant the ingest should be of dataset damage.
struct IngestPolicy {
  enum class Mode {
    kStrict,   // fail fast once the malformed budget is exceeded
    kLenient,  // quarantine-and-continue; repairs applied, damage reported
  };
  Mode mode = Mode::kLenient;

  // Malformed-line budget as a fraction of data lines seen.  Strict mode
  // aborts the ingest once the running fraction exceeds this (after a small
  // minimum so one bad line in a short file does not trip it); both modes
  // flag `budget_exceeded` in the report when the final fraction is over.
  double max_malformed_fraction = 0.05;

  // Records arriving at most this far behind the newest timestamp seen are
  // re-sorted into order before delivery (0 disables the re-sort buffer).
  std::int64_t reorder_window_seconds = 6 * 3600;

  // Drop exact duplicate records (counted, never silently).
  bool dedup = true;

  // Repair drifted headers (renamed/reordered/extra columns) by projecting
  // each data line back into canonical column order.
  bool remap_headers = true;

  // Lines seen before the strict budget check engages.
  static constexpr std::size_t kBudgetGraceLines = 100;

  [[nodiscard]] static IngestPolicy Strict(double budget = 0.05) {
    IngestPolicy p;
    p.mode = Mode::kStrict;
    p.max_malformed_fraction = budget;
    return p;
  }
  // Parse-only: no repairs, no budget — the legacy ReadLogFile behaviour.
  [[nodiscard]] static IngestPolicy Raw() {
    IngestPolicy p;
    p.max_malformed_fraction = 1.0;
    p.reorder_window_seconds = 0;
    p.dedup = false;
    p.remap_headers = false;
    return p;
  }
};

// Per-file ingest accounting: extends ParseStats with the reason breakdown,
// order/duplicate damage counters and the repair actions taken.
struct IngestReport {
  ParseStats stats;
  std::array<std::size_t, kMalformedReasonCount> malformed_by_reason{};

  std::size_t duplicates_removed = 0;   // parsed, then dropped as exact dupes
  std::size_t out_of_order_seen = 0;    // arrived behind the max timestamp
  std::size_t reordered = 0;            // repaired by the windowed re-sort
  std::size_t order_violations = 0;     // still delivered out of order

  bool header_remapped = false;  // schema drift repaired via column mapping
  bool budget_exceeded = false;  // final malformed fraction over budget
  bool aborted = false;          // strict mode stopped the ingest early

  std::vector<std::string> repairs;  // human-readable repair log

  // Records actually delivered to the sink.
  [[nodiscard]] std::size_t Delivered() const noexcept {
    return stats.parsed - duplicates_removed;
  }
  // The accounting invariant: every data line is either parsed or
  // quarantined, and every repair acted on a parsed line.
  [[nodiscard]] bool Consistent() const noexcept {
    std::size_t by_reason = 0;
    for (const auto n : malformed_by_reason) by_reason += n;
    return stats.parsed + stats.malformed == stats.total_lines &&
           by_reason == stats.malformed && duplicates_removed <= stats.parsed &&
           reordered + order_violations <= stats.parsed;
  }
  [[nodiscard]] bool AcceptedBy(const IngestPolicy& policy) const noexcept {
    return !(policy.mode == IngestPolicy::Mode::kStrict && budget_exceeded);
  }

  void Merge(const IngestReport& other);
};

// --- Header drift repair ------------------------------------------------------

// Alias -> canonical column-name mapping.  Shared with the corruption
// injector so the schema drift it injects stays within the repairable set.
[[nodiscard]] std::optional<std::string_view> CanonicalColumnName(
    std::string_view name) noexcept;

// All registered aliases for a canonical column name (possibly empty).
[[nodiscard]] std::vector<std::string_view> ColumnAliases(std::string_view canonical);

// Projection from a drifted file header (renamed / reordered / extra
// columns) back into canonical column order.
class HeaderMap {
 public:
  // Returns nullopt when `file_header` cannot be recognised as a header for
  // `canonical` (some canonical column has no match) — the caller should
  // then treat the line as data.
  [[nodiscard]] static std::optional<HeaderMap> Build(std::string_view canonical,
                                                      std::string_view file_header);

  [[nodiscard]] bool Identity() const noexcept { return identity_; }
  [[nodiscard]] std::size_t FileFieldCount() const noexcept { return file_fields_; }

  // Re-join `fields` (file column order, must have FileFieldCount entries)
  // into a canonical-order tab-separated line.  False on field-count
  // mismatch (the line is damaged beyond schema repair).
  [[nodiscard]] bool ProjectLine(const std::vector<std::string_view>& fields,
                                 std::string& out) const;

 private:
  std::vector<std::size_t> canonical_to_file_;
  std::size_t file_fields_ = 0;
  bool identity_ = true;
};

}  // namespace astra::logs
