// Parallel sharded ingest: the multi-threaded counterpart of IngestLogFile
// (log_file.hpp) with byte-identical output at any thread count.
//
// The pipeline has two phases:
//
//  1. PARALLEL PARSE.  The file is memory-mapped and — after the header line
//     is resolved sequentially (canonical, drifted-but-mappable, or data) —
//     the remaining byte range is cut at newline boundaries into one shard
//     per worker (util/mapped_file.hpp).  Each shard parses its lines into a
//     pre-sized per-shard outcome buffer: for every data line, either the
//     parsed record plus its dedup hash, or the malformed-reason code.  Line
//     parsing is independent line-to-line, so this phase is embarrassingly
//     parallel and carries ~all of the ingest cost (field splitting, strict
//     numeric parsing, domain checks, hashing).
//
//  2. SEQUENTIAL REPLAY.  The per-shard outcome buffers, concatenated in
//     shard index order, reproduce the exact line sequence the serial reader
//     sees.  The inherently ordered stages — duplicate dropping, the
//     windowed re-sort heap, running strict-budget accounting with early
//     abort — are replayed over that sequence with the same state machine as
//     IngestLogFile.  Every counter, repair message, abort point and the
//     delivered record order therefore match the serial path exactly:
//     reports are byte-identical whether threads == 1 or 64.
//
// Invariants inherited from the serial path: parsed + malformed ==
// total_lines, Delivered() == records handed to the sink, and strict-mode
// exit behaviour (budget_exceeded / aborted) is unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "logs/log_file.hpp"
#include "util/io_faults.hpp"
#include "util/mapped_file.hpp"
#include "util/parallel.hpp"

namespace astra::logs {

namespace detail {

// The fate of one data line, recorded by a shard parser.  `malformed` is 0
// for a parsed record, else 1 + MalformedReason so the replay can update the
// per-reason quarantine breakdown without re-classifying.
template <typename Record>
struct LineOutcome {
  Record record{};
  std::size_t dedup_hash = 0;
  std::uint8_t malformed = 0;
};

template <typename Record>
struct ShardParse {
  std::vector<LineOutcome<Record>> outcomes;  // one per data line, in order
  std::size_t parsed = 0;
};

// Parse one shard's lines into `out`.  Pure function of the shard bytes and
// the (shared, read-only) header mapping — safe to run concurrently.
template <typename Record>
void ParseShard(std::string_view shard, std::string_view canonical,
                std::size_t canonical_fields, const HeaderMap* header_map,
                std::string_view file_header_line, ShardParse<Record>& out) {
  // Pre-size the outcome arena: one newline count pass, then no growth.
  std::size_t line_estimate = 1;
  for (std::size_t pos = shard.find('\n'); pos != std::string_view::npos;
       pos = shard.find('\n', pos + 1)) {
    ++line_estimate;
  }
  out.outcomes.reserve(line_estimate);

  const std::hash<std::string_view> hasher;
  std::string projected;
  ForEachLineInView(shard, [&](std::string_view line) {
    if (line.empty() || line == canonical) return true;
    if (header_map != nullptr && line == file_header_line) return true;

    LineOutcome<Record> outcome;
    std::string_view effective = line;
    if (header_map != nullptr && !header_map->Identity()) {
      const auto fields = SplitView(line, '\t');
      if (header_map->ProjectLine(fields, projected)) {
        effective = projected;
      } else {
        outcome.malformed =
            1 + static_cast<std::uint8_t>(MalformedReason::kFieldCount);
        out.outcomes.push_back(outcome);
        return true;
      }
    }
    if (const auto record = ParseLine<Record>(effective)) {
      outcome.record = *record;
      outcome.dedup_hash = hasher(effective);
      ++out.parsed;
    } else {
      outcome.malformed = 1 + static_cast<std::uint8_t>(
                                  ClassifyMalformed(effective, canonical_fields));
    }
    out.outcomes.push_back(outcome);
    return true;
  });
}

}  // namespace detail

// Files below this size are ingested serially: shard setup costs more than
// it saves, and the serial path is byte-identical anyway.
inline constexpr std::size_t kParallelIngestMinBytes = 64 * 1024;

// Hardened streaming ingest, parallel edition.  Semantics are identical to
// IngestLogFile (same policy handling, same report, same record order);
// `threads` sets the shard/worker count (0 = hardware concurrency, 1 forces
// the serial path).  Returns nullopt only when the file cannot be opened.
// `size_hint`, when provided, is called once between the parse and replay
// phases with the total parsed-record count — sinks that buffer records can
// pre-size their storage instead of growing it delivery by delivery.
template <typename Record>
[[nodiscard]] std::optional<IngestReport> ParallelIngestLogFile(
    const std::string& path, const IngestPolicy& policy, unsigned threads,
    const std::function<void(const Record&)>& sink,
    const std::function<void(std::size_t)>& size_hint = nullptr) {
  const unsigned resolved = ResolveThreadCount(threads);
  if (resolved <= 1) return IngestLogFile<Record>(path, policy, sink);

  const auto file = io::Current().MapFile(path);
  if (!file) return std::nullopt;
  const std::string_view bytes = file->Bytes();
  if (bytes.size() < kParallelIngestMinBytes) {
    return IngestLogFile<Record>(path, policy, sink);
  }

  IngestReport report;
  const std::string_view canonical = detail::Header<Record>();
  const std::size_t canonical_fields = SplitView(canonical, '\t').size();

  // Header resolution is sequential (it is one line): canonical -> skip,
  // drifted-but-mappable -> remap and skip, anything else -> data line 1.
  std::optional<HeaderMap> header_map;
  std::string file_header_line;
  std::string_view data = bytes;
  std::string_view rest;
  if (const auto first = FirstLineOf(bytes, &rest)) {
    if (*first == canonical) {
      data = rest;
    } else if (policy.remap_headers && !first->empty()) {
      if (auto map = HeaderMap::Build(canonical, *first)) {
        header_map = std::move(*map);
        file_header_line = std::string(*first);
        report.header_remapped = true;
        report.repairs.push_back(
            "remapped drifted header (" +
            std::string(header_map->Identity() ? "aliases only" : "column order") +
            ") back to canonical schema");
        data = rest;
      }
    }
  }

  // Phase 1: parse all shards concurrently.
  const auto shards = SplitAtLineBoundaries(data, resolved);
  std::vector<detail::ShardParse<Record>> parses(shards.size());
  const HeaderMap* map_ptr = header_map ? &*header_map : nullptr;
  ParallelShards(shards.size(), shards.size(),
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     detail::ParseShard<Record>(shards[i], canonical,
                                                canonical_fields, map_ptr,
                                                file_header_line, parses[i]);
                   }
                 });

  std::size_t total_parsed = 0;
  for (const auto& parse : parses) total_parsed += parse.parsed;
  if (size_hint) size_hint(total_parsed);

  // Phase 2: replay the ordered stages over the concatenated outcomes with
  // the serial reader's exact state machine.
  struct Pending {
    Record record;
    std::uint64_t seq = 0;
    bool was_out_of_order = false;
  };
  // Windowed re-sort buffer, kept sorted ascending by (timestamp, seq) — the
  // total order the serial reader's min-heap pops in.  Error logs arrive
  // nearly sorted, so almost every record belongs at the back (O(1)
  // push_back); only a genuinely out-of-order record pays the binary-search
  // insert.  Draining from the front replaces pop-min, so the emission
  // order — and with it every counter and repair message — is identical.
  const auto earlier = [](const Pending& a, const Pending& b) {
    const SimTime ta = detail::TimestampOf(a.record);
    const SimTime tb = detail::TimestampOf(b.record);
    return ta < tb || (ta == tb && a.seq < b.seq);
  };
  std::deque<Pending> pending;
  std::uint64_t seq = 0;
  std::optional<SimTime> max_seen;
  std::optional<SimTime> last_emitted;

  std::unordered_set<std::size_t> seen_hashes;
  if (policy.dedup) seen_hashes.reserve(total_parsed);

  const auto emit = [&](const Pending& p) {
    const SimTime t = detail::TimestampOf(p.record);
    if (last_emitted && t < *last_emitted) {
      ++report.order_violations;
    } else if (p.was_out_of_order) {
      ++report.reordered;
    }
    if (!last_emitted || t > *last_emitted) last_emitted = t;
    sink(p.record);
  };

  bool aborted = false;
  for (const auto& parse : parses) {
    if (aborted) break;
    for (const auto& outcome : parse.outcomes) {
      ++report.stats.total_lines;
      if (outcome.malformed != 0) {
        ++report.stats.malformed;
        ++report.malformed_by_reason[outcome.malformed - 1];
      } else {
        ++report.stats.parsed;
        const bool duplicate =
            policy.dedup && !seen_hashes.insert(outcome.dedup_hash).second;
        if (duplicate) {
          ++report.duplicates_removed;
        } else {
          Pending p{outcome.record, seq++, false};
          const SimTime t = detail::TimestampOf(p.record);
          if (max_seen && t < *max_seen) {
            p.was_out_of_order = true;
            ++report.out_of_order_seen;
          }
          if (!max_seen || t > *max_seen) max_seen = t;
          if (policy.reorder_window_seconds > 0) {
            if (pending.empty() || !earlier(p, pending.back())) {
              pending.push_back(std::move(p));
            } else {
              pending.insert(
                  std::upper_bound(pending.begin(), pending.end(), p, earlier),
                  std::move(p));
            }
            const SimTime horizon =
                max_seen->AddSeconds(-policy.reorder_window_seconds);
            while (!pending.empty() &&
                   detail::TimestampOf(pending.front().record) <= horizon) {
              emit(pending.front());
              pending.pop_front();
            }
          } else {
            emit(p);
          }
        }
      }
      if (policy.mode == IngestPolicy::Mode::kStrict &&
          report.stats.total_lines >= IngestPolicy::kBudgetGraceLines &&
          report.stats.MalformedFraction() > policy.max_malformed_fraction) {
        report.budget_exceeded = true;
        report.aborted = true;
        aborted = true;
        break;
      }
    }
  }

  for (const auto& p : pending) emit(p);
  pending.clear();
  if (report.stats.MalformedFraction() > policy.max_malformed_fraction) {
    report.budget_exceeded = true;
  }
  if (report.duplicates_removed > 0) {
    report.repairs.push_back("dropped " + std::to_string(report.duplicates_removed) +
                             " exact duplicate record(s)");
  }
  if (report.reordered > 0) {
    report.repairs.push_back("re-sorted " + std::to_string(report.reordered) +
                             " out-of-order record(s) within the reorder window");
  }
  return report;
}

// Convenience: parallel hardened ingest into a pre-sized vector.
template <typename Record>
[[nodiscard]] std::optional<std::vector<Record>> ParallelIngestAllRecords(
    const std::string& path, const IngestPolicy& policy, unsigned threads,
    IngestReport* report_out = nullptr) {
  std::vector<Record> records;
  const auto report = ParallelIngestLogFile<Record>(
      path, policy, threads,
      [&records](const Record& r) { records.push_back(r); },
      [&records](std::size_t parsed) { records.reserve(parsed); });
  if (!report) return std::nullopt;
  if (report_out != nullptr) *report_out = *report;
  return records;
}

}  // namespace astra::logs
