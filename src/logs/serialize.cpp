#include "logs/serialize.hpp"

#include <array>
#include <charconv>

#include "util/strings.hpp"

namespace astra::logs {
namespace {

constexpr char kSep = '\t';

// Field written for absent row information.
constexpr std::string_view kMissingField = "-";

// FormatRecord dominates dataset dump time; std::to_chars writes digits
// straight into a stack buffer instead of allocating (std::to_string) or
// re-parsing a format string (snprintf) per field.
template <typename Int>
void AppendInt(std::string& out, Int value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, result.ptr);
}

// Zero-padded lowercase hex, optionally "0x"-prefixed (snprintf "0x%0*llx").
void AppendHex(std::string& out, std::uint64_t value, int width, bool prefix) {
  char buf[16];
  const auto result = std::to_chars(buf, buf + sizeof buf, value, 16);
  if (prefix) out += "0x";
  for (auto digits = static_cast<int>(result.ptr - buf); digits < width; ++digits) {
    out += '0';
  }
  out.append(buf, result.ptr);
}

std::optional<SimTime> ParseTimestampField(std::string_view field) {
  SimTime t;
  if (!SimTime::Parse(field, t)) return std::nullopt;
  return t;
}

std::optional<NodeId> ParseNodeField(std::string_view field) {
  const auto value = ParseDecimalI64(field);
  if (!value || *value < 0 || *value >= kNumNodes) return std::nullopt;
  return static_cast<NodeId>(*value);
}

// Fixed-capacity split for the record parsers: every record type has a known
// field count, so a line splitting into anything else is rejected without a
// heap allocation or a scan past the surplus field (util/strings.hpp
// ScanFields).  kMaxRecordFields bounds the widest schema (memory errors).
constexpr std::size_t kMaxRecordFields = 11;

using FieldArray = std::array<std::string_view, kMaxRecordFields>;

[[nodiscard]] bool SplitExactly(std::string_view line, FieldArray& fields,
                                std::size_t expected) noexcept {
  return ScanFields(line, kSep, fields.data(), expected) == expected;
}

}  // namespace

std::string_view MemoryErrorHeader() noexcept {
  return "timestamp\tnode\tsocket\ttype\tslot\trow\trank\tbank\tbit\tphysaddr\tsyndrome";
}

std::string_view SensorHeader() noexcept { return "timestamp\tnode\tsensor\tvalue"; }

std::string_view HetHeader() noexcept {
  return "timestamp\tnode\tevent\tseverity\tsocket\tslot";
}

std::string_view InventoryHeader() noexcept {
  return "scan_date\tcomponent\tnode\tindex\tserial";
}

std::string FormatRecord(const MemoryErrorRecord& r) {
  std::string out = r.timestamp.ToString();
  out.reserve(out.size() + 64);
  out += kSep;
  AppendInt(out, r.node);
  out += kSep;
  AppendInt(out, static_cast<int>(r.socket));
  out += kSep;
  out += FailureTypeName(r.type);
  out += kSep;
  out += DimmSlotLetter(r.slot);
  out += kSep;
  if (r.row == kNoRowInfo) {
    out += kMissingField;
  } else {
    AppendInt(out, r.row);
  }
  out += kSep;
  AppendInt(out, static_cast<int>(r.rank));
  out += kSep;
  AppendInt(out, static_cast<int>(r.bank));
  out += kSep;
  AppendInt(out, r.bit_position);
  out += kSep;
  AppendHex(out, r.physical_address, 10, /*prefix=*/true);
  out += kSep;
  AppendHex(out, r.syndrome, 8, /*prefix=*/true);
  return out;
}

std::optional<MemoryErrorRecord> ParseMemoryError(std::string_view line) {
  // Single pass: the SWAR splitter delimits all 11 fields without touching
  // the heap, then each field is validated as it is converted — the first
  // bad field rejects the line.
  FieldArray fields;
  if (!SplitExactly(line, fields, 11)) return std::nullopt;

  MemoryErrorRecord r;
  const auto ts = ParseTimestampField(fields[0]);
  const auto node = ParseNodeField(fields[1]);
  const auto socket = ParseDecimalI64(fields[2]);
  const auto type = FailureTypeFromName(fields[3]);
  if (!ts || !node || !socket || !type) return std::nullopt;
  if (*socket < 0 || *socket >= kSocketsPerNode) return std::nullopt;
  if (fields[4].size() != 1) return std::nullopt;
  const auto slot = DimmSlotFromLetter(fields[4][0]);
  if (!slot || SocketOfSlot(*slot) != *socket) return std::nullopt;

  r.timestamp = *ts;
  r.node = *node;
  r.socket = static_cast<SocketId>(*socket);
  r.type = *type;
  r.slot = *slot;

  if (fields[5] == kMissingField) {
    r.row = kNoRowInfo;
  } else {
    const auto row = ParseDecimalI64(fields[5]);
    if (!row || *row < 0 || *row >= kRowsPerBank) return std::nullopt;
    r.row = static_cast<std::int32_t>(*row);
  }

  const auto rank = ParseDecimalI64(fields[6]);
  const auto bank = ParseDecimalI64(fields[7]);
  const auto bit = ParseDecimalI64(fields[8]);
  const auto addr = ParseHexU64(fields[9]);
  const auto syndrome = ParseHexU64(fields[10]);
  if (!rank || !bank || !bit || !addr || !syndrome) return std::nullopt;
  if (*rank < 0 || *rank >= kRanksPerDimm) return std::nullopt;
  if (*bank < 0 || *bank >= kBanksPerRank) return std::nullopt;
  if (*bit < 0 || *bit > 0x3FF) return std::nullopt;

  r.rank = static_cast<RankId>(*rank);
  r.bank = static_cast<BankId>(*bank);
  r.bit_position = static_cast<std::int32_t>(*bit);
  r.physical_address = *addr;
  r.syndrome = static_cast<std::uint32_t>(*syndrome);
  return r;
}

std::string FormatRecord(const SensorRecord& r) {
  std::string out = r.timestamp.ToString();
  out += kSep;
  AppendInt(out, r.node);
  out += kSep;
  out += SensorKindName(r.sensor);
  out += kSep;
  out += r.valid ? FormatDouble(r.value, 2) : std::string("NA");
  return out;
}

std::optional<SensorRecord> ParseSensor(std::string_view line) {
  FieldArray fields;
  if (!SplitExactly(line, fields, 4)) return std::nullopt;
  SensorRecord r;
  const auto ts = ParseTimestampField(fields[0]);
  const auto node = ParseNodeField(fields[1]);
  const auto kind = SensorKindFromName(fields[2]);
  if (!ts || !node || !kind) return std::nullopt;
  r.timestamp = *ts;
  r.node = *node;
  r.sensor = *kind;
  if (fields[3] == "NA") {
    r.valid = false;
    r.value = 0.0;
    return r;
  }
  const auto value = ParseDouble(fields[3]);
  if (!value) return std::nullopt;
  r.valid = true;
  r.value = *value;
  return r;
}

std::string FormatRecord(const HetRecord& r) {
  std::string out = r.timestamp.ToString();
  out += kSep;
  AppendInt(out, r.node);
  out += kSep;
  out += HetEventTypeName(r.event);
  out += kSep;
  out += HetSeverityName(r.severity);
  out += kSep;
  AppendInt(out, static_cast<int>(r.socket));
  out += kSep;
  AppendInt(out, static_cast<int>(r.slot));
  return out;
}

std::optional<HetRecord> ParseHet(std::string_view line) {
  FieldArray fields;
  if (!SplitExactly(line, fields, 6)) return std::nullopt;
  HetRecord r;
  const auto ts = ParseTimestampField(fields[0]);
  const auto node = ParseNodeField(fields[1]);
  const auto event = HetEventTypeFromName(fields[2]);
  const auto severity = HetSeverityFromName(fields[3]);
  const auto socket = ParseDecimalI64(fields[4]);
  const auto slot = ParseDecimalI64(fields[5]);
  if (!ts || !node || !event || !severity || !socket || !slot) return std::nullopt;
  if (*socket < -1 || *socket >= kSocketsPerNode) return std::nullopt;
  if (*slot < -1 || *slot >= kDimmSlotCount) return std::nullopt;
  r.timestamp = *ts;
  r.node = *node;
  r.event = *event;
  r.severity = *severity;
  r.socket = static_cast<std::int8_t>(*socket);
  r.slot = static_cast<std::int8_t>(*slot);
  return r;
}

std::string FormatRecord(const InventoryRecord& r) {
  std::string out = r.scan_date.ToDateString();
  out += kSep;
  out += ComponentKindName(r.site.kind);
  out += kSep;
  AppendInt(out, r.site.node);
  out += kSep;
  AppendInt(out, static_cast<int>(r.site.index));
  out += kSep;
  AppendHex(out, r.serial, 16, /*prefix=*/false);
  return out;
}

std::optional<InventoryRecord> ParseInventory(std::string_view line) {
  FieldArray fields;
  if (!SplitExactly(line, fields, 5)) return std::nullopt;
  InventoryRecord r;
  const auto ts = ParseTimestampField(fields[0]);
  const auto kind = ComponentKindFromName(fields[1]);
  const auto node = ParseNodeField(fields[2]);
  const auto index = ParseDecimalI64(fields[3]);
  const auto serial = ParseHexU64(fields[4]);
  if (!ts || !kind || !node || !index || !serial) return std::nullopt;
  if (*index < 0 || *index >= kDimmSlotCount) return std::nullopt;
  r.scan_date = *ts;
  r.site.kind = *kind;
  r.site.node = *node;
  r.site.index = static_cast<std::int8_t>(*index);
  r.serial = *serial;
  return r;
}

}  // namespace astra::logs
