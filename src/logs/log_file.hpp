// Typed log-file I/O: buffered writers and streaming readers for each record
// type.  Readers tolerate malformed lines (counted in ParseStats) and accept
// files with or without the canonical header line.  IngestLogFile is the
// hardened path: it additionally repairs dataset-level damage (schema drift,
// duplicates, bounded clock disorder) under an IngestPolicy and accounts for
// every input line in an IngestReport.
#pragma once

#include <fstream>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_set>

#include "logs/ingest.hpp"
#include "logs/serialize.hpp"
#include "util/file_io.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::logs {

namespace detail {

template <typename Record>
[[nodiscard]] std::optional<Record> ParseLine(std::string_view line) {
  if constexpr (std::is_same_v<Record, MemoryErrorRecord>) {
    return ParseMemoryError(line);
  } else if constexpr (std::is_same_v<Record, SensorRecord>) {
    return ParseSensor(line);
  } else if constexpr (std::is_same_v<Record, HetRecord>) {
    return ParseHet(line);
  } else if constexpr (std::is_same_v<Record, InventoryRecord>) {
    return ParseInventory(line);
  } else {
    static_assert(!sizeof(Record), "no parser registered for this record type");
  }
}

template <typename Record>
std::string_view Header() noexcept {
  if constexpr (std::is_same_v<Record, MemoryErrorRecord>) {
    return MemoryErrorHeader();
  } else if constexpr (std::is_same_v<Record, SensorRecord>) {
    return SensorHeader();
  } else if constexpr (std::is_same_v<Record, HetRecord>) {
    return HetHeader();
  } else if constexpr (std::is_same_v<Record, InventoryRecord>) {
    return InventoryHeader();
  } else {
    static_assert(!sizeof(Record), "no header registered for this record type");
  }
}

template <typename Record>
[[nodiscard]] SimTime TimestampOf(const Record& record) noexcept {
  if constexpr (std::is_same_v<Record, InventoryRecord>) {
    return record.scan_date;
  } else {
    return record.timestamp;
  }
}

}  // namespace detail

// Appends one formatted line per record; writes the header on open.  Stream
// failures (full disk, EIO, unwritable path) are sticky: Append becomes a
// no-op, Ok() turns false and Finish() flushes and reports the final status.
// Written() counts only lines the stream accepted.
template <typename Record>
class LogFileWriter {
 public:
  explicit LogFileWriter(const std::string& path) : path_(path), out_(path) {
    if (!out_ || !(out_ << detail::Header<Record>() << '\n')) failed_ = true;
  }

  [[nodiscard]] bool Ok() const noexcept { return !failed_; }
  [[nodiscard]] std::size_t Written() const noexcept { return written_; }

  void Append(const Record& record) {
    if (failed_) return;
    if (out_ << FormatRecord(record) << '\n') {
      ++written_;
    } else {
      failed_ = true;
    }
  }

  // Push buffered lines to the OS without closing the stream — the live
  // append mode uses this between batches so a tailing reader sees whole
  // records as soon as the simulator emits them.
  void Flush() {
    if (failed_) return;
    out_.flush();
    if (!out_) failed_ = true;
  }

  // Flush, fsync through the io::Io seam, and surface any deferred stream
  // failure.  ofstream buffers writes, so a full disk often only shows up
  // here — callers that care about data durability must check Finish(), not
  // just per-Append Ok().  The fsync makes "Finish() returned true" mean the
  // records survive power loss, not just that they reached the page cache.
  [[nodiscard]] bool Finish() {
    if (!synced_) {
      if (!failed_) {
        out_.flush();
        if (!out_) failed_ = true;
      }
      out_.close();
      if (!failed_ && !io::Current().SyncFile(path_)) failed_ = true;
      synced_ = true;
    }
    return !failed_;
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t written_ = 0;
  bool failed_ = false;
  bool synced_ = false;
};

// Stream every parseable record of `path` through `sink`.  Returns nullopt
// if the file cannot be opened.  Header lines (exact match) are skipped.
template <typename Record>
[[nodiscard]] std::optional<ParseStats> ReadLogFile(
    const std::string& path, const std::function<void(const Record&)>& sink) {
  ParseStats stats;
  const auto visited = ForEachLine(path, [&](std::string_view line) {
    if (line.empty() || line == detail::Header<Record>()) return true;
    ++stats.total_lines;
    if (const auto record = detail::ParseLine<Record>(line)) {
      ++stats.parsed;
      sink(*record);
    } else {
      ++stats.malformed;
    }
    return true;
  });
  if (!visited) return std::nullopt;
  return stats;
}

// Hardened streaming ingest.  On top of ReadLogFile's per-line tolerance:
//  - drifted headers (renamed / reordered / extra columns) are repaired by
//    projecting every data line back into canonical column order;
//  - exact duplicate records are dropped (counted, never silently);
//  - records arriving within `reorder_window_seconds` of the newest
//    timestamp are re-sorted into nondecreasing order before delivery;
//  - malformed lines are quarantined with a per-reason breakdown, and strict
//    mode aborts once the malformed fraction exceeds the policy budget.
// Returns nullopt only when the file cannot be opened.  The report satisfies
// Consistent(): parsed + malformed == total_lines.
template <typename Record>
[[nodiscard]] std::optional<IngestReport> IngestLogFile(
    const std::string& path, const IngestPolicy& policy,
    const std::function<void(const Record&)>& sink) {
  IngestReport report;
  const std::string_view canonical = detail::Header<Record>();
  const std::size_t canonical_fields = SplitView(canonical, '\t').size();

  std::optional<HeaderMap> header_map;
  std::string file_header_line;  // drifted header, skipped if duplicated
  bool first_line = true;

  // Windowed re-sort buffer: min-heap on (timestamp, arrival seq).
  struct Pending {
    Record record;
    std::uint64_t seq = 0;
    bool was_out_of_order = false;
  };
  const auto later = [](const Pending& a, const Pending& b) {
    const SimTime ta = detail::TimestampOf(a.record);
    const SimTime tb = detail::TimestampOf(b.record);
    return ta > tb || (ta == tb && a.seq > b.seq);
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> pending(later);
  std::uint64_t seq = 0;
  std::optional<SimTime> max_seen;
  std::optional<SimTime> last_emitted;

  std::unordered_set<std::size_t> seen_hashes;
  const std::hash<std::string_view> hasher;

  const auto emit = [&](const Pending& p) {
    const SimTime t = detail::TimestampOf(p.record);
    if (last_emitted && t < *last_emitted) {
      ++report.order_violations;
    } else if (p.was_out_of_order) {
      ++report.reordered;
    }
    if (!last_emitted || t > *last_emitted) last_emitted = t;
    sink(p.record);
  };

  std::string projected;
  const auto visited = ForEachLine(path, [&](std::string_view line) {
    if (first_line) {
      first_line = false;
      if (line == canonical) return true;
      if (policy.remap_headers && !line.empty()) {
        if (auto map = HeaderMap::Build(canonical, line)) {
          header_map = std::move(*map);
          file_header_line = std::string(line);
          report.header_remapped = true;
          report.repairs.push_back(
              "remapped drifted header (" +
              std::string(header_map->Identity() ? "aliases only" : "column order") +
              ") back to canonical schema");
          return true;
        }
      }
      // Fall through: a headerless file starts with data on line 1.
    }
    if (line.empty() || line == canonical) return true;
    if (header_map && line == file_header_line) return true;  // duplicated header

    ++report.stats.total_lines;

    std::string_view effective = line;
    bool schema_repairable = true;
    if (header_map && !header_map->Identity()) {
      const auto fields = SplitView(line, '\t');
      if (header_map->ProjectLine(fields, projected)) {
        effective = projected;
      } else {
        schema_repairable = false;
        ++report.stats.malformed;
        ++report.malformed_by_reason[static_cast<std::size_t>(
            MalformedReason::kFieldCount)];
      }
    }

    if (schema_repairable) {
      if (const auto record = detail::ParseLine<Record>(effective)) {
        ++report.stats.parsed;
        bool duplicate = false;
        if (policy.dedup) {
          duplicate = !seen_hashes.insert(hasher(effective)).second;
        }
        if (duplicate) {
          ++report.duplicates_removed;
        } else {
          Pending p{*record, seq++, false};
          const SimTime t = detail::TimestampOf(p.record);
          if (max_seen && t < *max_seen) {
            p.was_out_of_order = true;
            ++report.out_of_order_seen;
          }
          if (!max_seen || t > *max_seen) max_seen = t;
          if (policy.reorder_window_seconds > 0) {
            pending.push(std::move(p));
            const SimTime horizon =
                max_seen->AddSeconds(-policy.reorder_window_seconds);
            while (!pending.empty() &&
                   detail::TimestampOf(pending.top().record) <= horizon) {
              emit(pending.top());
              pending.pop();
            }
          } else {
            emit(p);
          }
        }
      } else {
        ++report.stats.malformed;
        ++report.malformed_by_reason[static_cast<std::size_t>(
            ClassifyMalformed(effective, canonical_fields))];
      }
    }

    // Strict fail-fast: stop reading once the running malformed fraction
    // blows the budget (grace period avoids tripping on short prefixes).
    if (policy.mode == IngestPolicy::Mode::kStrict &&
        report.stats.total_lines >= IngestPolicy::kBudgetGraceLines &&
        report.stats.MalformedFraction() > policy.max_malformed_fraction) {
      report.budget_exceeded = true;
      report.aborted = true;
      return false;
    }
    return true;
  });
  if (!visited) return std::nullopt;

  // Drain the re-sort buffer even after a strict abort: every record counted
  // as parsed is delivered, so Delivered() always matches what the sink saw.
  while (!pending.empty()) {
    emit(pending.top());
    pending.pop();
  }
  if (report.stats.MalformedFraction() > policy.max_malformed_fraction) {
    report.budget_exceeded = true;
  }
  if (report.duplicates_removed > 0) {
    report.repairs.push_back("dropped " + std::to_string(report.duplicates_removed) +
                             " exact duplicate record(s)");
  }
  if (report.reordered > 0) {
    report.repairs.push_back("re-sorted " + std::to_string(report.reordered) +
                             " out-of-order record(s) within the reorder window");
  }
  return report;
}

// Convenience: read a whole file into a vector (small files, tests).
template <typename Record>
[[nodiscard]] std::optional<std::vector<Record>> ReadAllRecords(
    const std::string& path, ParseStats* stats_out = nullptr) {
  std::vector<Record> records;
  const auto stats = ReadLogFile<Record>(
      path, [&records](const Record& r) { records.push_back(r); });
  if (!stats) return std::nullopt;
  if (stats_out != nullptr) *stats_out = *stats;
  return records;
}

// Convenience: hardened ingest into a vector.
template <typename Record>
[[nodiscard]] std::optional<std::vector<Record>> IngestAllRecords(
    const std::string& path, const IngestPolicy& policy,
    IngestReport* report_out = nullptr) {
  std::vector<Record> records;
  const auto report = IngestLogFile<Record>(
      path, policy, [&records](const Record& r) { records.push_back(r); });
  if (!report) return std::nullopt;
  if (report_out != nullptr) *report_out = *report;
  return records;
}

}  // namespace astra::logs
