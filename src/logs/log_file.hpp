// Typed log-file I/O: buffered writers and streaming readers for each record
// type.  Readers tolerate malformed lines (counted in ParseStats) and accept
// files with or without the canonical header line.
#pragma once

#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>

#include "logs/serialize.hpp"
#include "util/file_io.hpp"

namespace astra::logs {

namespace detail {

template <typename Record>
std::optional<Record> ParseLine(std::string_view line) {
  if constexpr (std::is_same_v<Record, MemoryErrorRecord>) {
    return ParseMemoryError(line);
  } else if constexpr (std::is_same_v<Record, SensorRecord>) {
    return ParseSensor(line);
  } else if constexpr (std::is_same_v<Record, HetRecord>) {
    return ParseHet(line);
  } else if constexpr (std::is_same_v<Record, InventoryRecord>) {
    return ParseInventory(line);
  } else {
    static_assert(!sizeof(Record), "no parser registered for this record type");
  }
}

template <typename Record>
std::string_view Header() noexcept {
  if constexpr (std::is_same_v<Record, MemoryErrorRecord>) {
    return MemoryErrorHeader();
  } else if constexpr (std::is_same_v<Record, SensorRecord>) {
    return SensorHeader();
  } else if constexpr (std::is_same_v<Record, HetRecord>) {
    return HetHeader();
  } else if constexpr (std::is_same_v<Record, InventoryRecord>) {
    return InventoryHeader();
  } else {
    static_assert(!sizeof(Record), "no header registered for this record type");
  }
}

}  // namespace detail

// Appends one formatted line per record; writes the header on open.
template <typename Record>
class LogFileWriter {
 public:
  explicit LogFileWriter(const std::string& path) : out_(path) {
    if (out_) out_ << detail::Header<Record>() << '\n';
  }

  [[nodiscard]] bool Ok() const noexcept { return static_cast<bool>(out_); }
  [[nodiscard]] std::size_t Written() const noexcept { return written_; }

  void Append(const Record& record) {
    out_ << FormatRecord(record) << '\n';
    ++written_;
  }

 private:
  std::ofstream out_;
  std::size_t written_ = 0;
};

// Stream every parseable record of `path` through `sink`.  Returns nullopt
// if the file cannot be opened.  Header lines (exact match) are skipped.
template <typename Record>
std::optional<ParseStats> ReadLogFile(const std::string& path,
                                      const std::function<void(const Record&)>& sink) {
  ParseStats stats;
  const auto visited = ForEachLine(path, [&](std::string_view line) {
    if (line.empty() || line == detail::Header<Record>()) return true;
    ++stats.total_lines;
    if (const auto record = detail::ParseLine<Record>(line)) {
      ++stats.parsed;
      sink(*record);
    } else {
      ++stats.malformed;
    }
    return true;
  });
  if (!visited) return std::nullopt;
  return stats;
}

// Convenience: read a whole file into a vector (small files, tests).
template <typename Record>
std::optional<std::vector<Record>> ReadAllRecords(const std::string& path,
                                                  ParseStats* stats_out = nullptr) {
  std::vector<Record> records;
  const auto stats = ReadLogFile<Record>(
      path, [&records](const Record& r) { records.push_back(r); });
  if (!stats) return std::nullopt;
  if (stats_out != nullptr) *stats_out = *stats;
  return records;
}

}  // namespace astra::logs
