// The CLI documents its flags in three places: the header comment, the
// ParseCommon flag chain, and PrintUsage.  Nothing but convention keeps them
// aligned, so this test reads the CLI source (path baked in via
// ASTRA_MRT_CLI_SRC) and asserts the three flag sets are identical — adding
// a flag to the parser without documenting it, or documenting one the
// parser rejects, fails here instead of confusing a user.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <string_view>

#include "util/file_io.hpp"

namespace astra {
namespace {

std::string CliSource() {
  const auto bytes = ReadFileBytes(ASTRA_MRT_CLI_SRC);
  EXPECT_TRUE(bytes.has_value()) << ASTRA_MRT_CLI_SRC;
  return bytes.value_or(std::string{});
}

// The `//` comment block at the top of the file.
std::string_view HeaderComment(std::string_view src) {
  std::size_t end = 0;
  while (end < src.size()) {
    const std::size_t eol = src.find('\n', end);
    if (eol == std::string_view::npos) break;
    const std::string_view line = src.substr(end, eol - end);
    if (line.substr(0, 2) != "//") break;
    end = eol + 1;
  }
  return src.substr(0, end);
}

// From the line containing `marker` to the first subsequent line that is
// exactly "}" — the function's closing brace at file scope.
std::string_view FunctionBody(std::string_view src, std::string_view marker) {
  const std::size_t begin = src.find(marker);
  EXPECT_NE(begin, std::string_view::npos) << marker;
  if (begin == std::string_view::npos) return {};
  const std::size_t end = src.find("\n}\n", begin);
  EXPECT_NE(end, std::string_view::npos) << marker;
  if (end == std::string_view::npos) return {};
  return src.substr(begin, end - begin);
}

// Concatenate the double-quoted string literals in a code region, so flag
// extraction never sees identifiers or operators.
std::string StringLiterals(std::string_view code) {
  std::string out;
  bool in_string = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (in_string && c == '\\') {
      ++i;  // skip the escaped character
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      out += ' ';
      continue;
    }
    if (in_string) out += c;
  }
  return out;
}

// Every `--name` token (lowercase name, may contain digits and dashes).
std::set<std::string> Flags(std::string_view text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && text[i - 1] == '-') continue;  // inside a longer dash run
    std::size_t end = i + 2;
    if (std::islower(static_cast<unsigned char>(text[end])) == 0) continue;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-')) {
      ++end;
    }
    std::string flag(text.substr(i, end - i));
    while (!flag.empty() && flag.back() == '-') flag.pop_back();
    flags.insert(std::move(flag));
    i = end;
  }
  return flags;
}

std::string Join(const std::set<std::string>& flags) {
  std::string out;
  for (const std::string& flag : flags) {
    if (!out.empty()) out += ' ';
    out += flag;
  }
  return out;
}

TEST(UsageDriftTest, AllThreeFlagSurfacesAgree) {
  const std::string src = CliSource();
  ASSERT_FALSE(src.empty());

  const std::set<std::string> header = Flags(HeaderComment(src));
  const std::set<std::string> parser =
      Flags(StringLiterals(FunctionBody(src, "CliOptions ParseCommon(")));
  const std::set<std::string> usage =
      Flags(StringLiterals(FunctionBody(src, "void PrintUsage(")));

  ASSERT_FALSE(parser.empty());
  EXPECT_EQ(header, parser) << "header comment documents {" << Join(header)
                            << "}\nbut ParseCommon handles {" << Join(parser)
                            << "}";
  EXPECT_EQ(usage, parser) << "PrintUsage documents {" << Join(usage)
                           << "}\nbut ParseCommon handles {" << Join(parser)
                           << "}";
}

TEST(UsageDriftTest, ParserCoversTheFullSurface) {
  // A floor on the flag count so a refactor that empties a region (and
  // trivially satisfies set equality) cannot pass silently.
  const std::set<std::string> parser =
      Flags(StringLiterals(FunctionBody(CliSource(), "CliOptions ParseCommon(")));
  EXPECT_GE(parser.size(), 20u) << Join(parser);
  EXPECT_TRUE(parser.count("--grid") == 1) << Join(parser);
  EXPECT_TRUE(parser.count("--json") == 1) << Join(parser);
  EXPECT_TRUE(parser.count("--trials") == 1) << Join(parser);
}

}  // namespace
}  // namespace astra
