#include "faultsim/retirement.hpp"

#include <gtest/gtest.h>

namespace astra::faultsim {
namespace {

const SimTime kT0 = SimTime::FromCivil(2019, 4, 1);

// Events all on the same page (same coord), `count` of them, one per minute.
std::vector<ErrorEvent> SamePageBurst(int count, bool due_every = false) {
  std::vector<ErrorEvent> events;
  for (int i = 0; i < count; ++i) {
    ErrorEvent e;
    e.time = kT0.AddMinutes(i);
    e.coord.node = 2;
    e.coord.slot = DimmSlot::C;
    e.coord.socket = 0;
    e.coord.rank = 0;
    e.coord.bank = 3;
    e.coord.row = 100;
    e.coord.column = 50;
    e.outcome = due_every ? ecc::ErrorOutcome::kUncorrectable
                          : ecc::ErrorOutcome::kCorrected;
    events.push_back(e);
  }
  return events;
}

RetirementConfig AlwaysSucceeds() {
  RetirementConfig config;
  config.ce_threshold = 10;
  config.reaction_seconds = 60 * 30;  // 30 minutes
  config.success_probability = 1.0;
  return config;
}

TEST(RetirementTest, BelowThresholdUntouched) {
  RetirementStats stats;
  const auto survivors = ApplyPageRetirement(AlwaysSucceeds(), SamePageBurst(9), stats);
  EXPECT_EQ(survivors.size(), 9u);
  EXPECT_EQ(stats.pages_retired, 0u);
  EXPECT_EQ(stats.suppressed_errors, 0u);
}

TEST(RetirementTest, SuppressesAfterThresholdPlusReaction) {
  RetirementStats stats;
  // 100 events one per minute; threshold 10 crossed at minute 9; retirement
  // effective at minute 39; events from minute 39 onward suppressed.
  const auto survivors = ApplyPageRetirement(AlwaysSucceeds(), SamePageBurst(100), stats);
  EXPECT_EQ(stats.pages_retired, 1u);
  EXPECT_EQ(survivors.size(), 39u);
  EXPECT_EQ(stats.suppressed_errors, 61u);
}

TEST(RetirementTest, FailedRetirementNeverSuppresses) {
  RetirementConfig config = AlwaysSucceeds();
  config.success_probability = 0.0;
  RetirementStats stats;
  const auto survivors = ApplyPageRetirement(config, SamePageBurst(100), stats);
  EXPECT_EQ(survivors.size(), 100u);
  EXPECT_EQ(stats.pages_retired, 0u);
  EXPECT_EQ(stats.retirement_failures, 1u);
}

TEST(RetirementTest, DisabledPassesEverything) {
  RetirementConfig config = AlwaysSucceeds();
  config.enabled = false;
  RetirementStats stats;
  EXPECT_EQ(ApplyPageRetirement(config, SamePageBurst(100), stats).size(), 100u);
}

TEST(RetirementTest, DuesNeverSuppressed) {
  RetirementConfig config = AlwaysSucceeds();
  RetirementStats stats;
  auto events = SamePageBurst(50);
  // Append DUEs after retirement takes effect.
  for (int i = 0; i < 5; ++i) {
    ErrorEvent due = events.front();
    due.time = kT0.AddMinutes(200 + i);
    due.outcome = ecc::ErrorOutcome::kUncorrectable;
    events.push_back(due);
  }
  const auto survivors = ApplyPageRetirement(config, std::move(events), stats);
  int dues = 0;
  for (const auto& e : survivors) dues += e.IsDue();
  EXPECT_EQ(dues, 5);
}

TEST(RetirementTest, DistinctPagesIndependent) {
  RetirementConfig config = AlwaysSucceeds();
  RetirementStats stats;
  auto page_a = SamePageBurst(100);
  auto page_b = SamePageBurst(100);
  for (auto& e : page_b) e.coord.row = 9999;  // different page
  std::vector<ErrorEvent> merged;
  for (std::size_t i = 0; i < page_a.size(); ++i) {
    merged.push_back(page_a[i]);
    merged.push_back(page_b[i]);
  }
  const auto survivors = ApplyPageRetirement(config, std::move(merged), stats);
  EXPECT_EQ(stats.pages_retired, 2u);
  EXPECT_EQ(survivors.size(), 78u);  // 39 per page
}

TEST(RetirementTest, DecisionDeterministicPerSeed) {
  RetirementConfig config = AlwaysSucceeds();
  config.success_probability = 0.5;
  RetirementStats s1, s2;
  const auto a = ApplyPageRetirement(config, SamePageBurst(100), s1);
  const auto b = ApplyPageRetirement(config, SamePageBurst(100), s2);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(s1.pages_retired, s2.pages_retired);
}

TEST(RetirementTest, StatsMerge) {
  RetirementStats a, b;
  a.pages_retired = 1;
  a.suppressed_errors = 10;
  b.pages_retired = 2;
  b.retirement_failures = 1;
  a.Merge(b);
  EXPECT_EQ(a.pages_retired, 3u);
  EXPECT_EQ(a.retirement_failures, 1u);
  EXPECT_EQ(a.suppressed_errors, 10u);
}

}  // namespace
}  // namespace astra::faultsim
