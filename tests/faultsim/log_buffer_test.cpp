#include "faultsim/log_buffer.hpp"

#include <gtest/gtest.h>

namespace astra::faultsim {
namespace {

const SimTime kT0 = SimTime::FromCivil(2019, 3, 1);

ErrorEvent EventAt(std::int64_t offset_seconds, bool due = false) {
  ErrorEvent e;
  e.time = kT0.AddSeconds(offset_seconds);
  e.coord.node = 1;
  e.outcome = due ? ecc::ErrorOutcome::kUncorrectable : ecc::ErrorOutcome::kCorrected;
  return e;
}

TEST(LogBufferTest, UnderCapacityAllSurvive) {
  LogBufferConfig config;  // 32 per 5s
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back(EventAt(i));
  const auto survivors = ApplyLogBuffer(config, events, stats);
  EXPECT_EQ(survivors.size(), 10u);
  EXPECT_EQ(stats.dropped_ces, 0u);
  EXPECT_EQ(stats.logged_ces, 10u);
}

TEST(LogBufferTest, BurstBeyondCapacityDropped) {
  LogBufferConfig config;
  config.capacity = 4;
  config.poll_seconds = 10;
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 20; ++i) events.push_back(EventAt(i / 4));  // all in one period
  const auto survivors = ApplyLogBuffer(config, events, stats);
  EXPECT_EQ(survivors.size(), 4u);
  EXPECT_EQ(stats.dropped_ces, 16u);
  EXPECT_EQ(stats.offered_ces, 20u);
  EXPECT_DOUBLE_EQ(stats.DropFraction(), 0.8);
}

TEST(LogBufferTest, CapacityResetsEachPollPeriod) {
  LogBufferConfig config;
  config.capacity = 2;
  config.poll_seconds = 5;
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  // Three periods with 3 events each -> 2 survive per period.
  for (int period = 0; period < 3; ++period) {
    for (int i = 0; i < 3; ++i) events.push_back(EventAt(period * 5 + i));
  }
  const auto survivors = ApplyLogBuffer(config, events, stats);
  EXPECT_EQ(survivors.size(), 6u);
  EXPECT_EQ(stats.dropped_ces, 3u);
}

TEST(LogBufferTest, DuesNeverDropped) {
  LogBufferConfig config;
  config.capacity = 1;
  config.poll_seconds = 100;
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 10; ++i) events.push_back(EventAt(i, /*due=*/i % 2 == 1));
  const auto survivors = ApplyLogBuffer(config, events, stats);
  int dues = 0;
  for (const auto& e : survivors) dues += e.IsDue();
  EXPECT_EQ(dues, 5);                // all DUEs survive
  EXPECT_EQ(survivors.size(), 6u);   // 5 DUEs + 1 CE
  EXPECT_EQ(stats.offered_ces, 5u);  // DUEs not counted as offered CEs
  EXPECT_EQ(stats.dropped_ces, 4u);
}

TEST(LogBufferTest, DisabledPassesEverything) {
  LogBufferConfig config;
  config.enabled = false;
  config.capacity = 1;
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 50; ++i) events.push_back(EventAt(0));
  const auto survivors = ApplyLogBuffer(config, events, stats);
  EXPECT_EQ(survivors.size(), 50u);
  EXPECT_EQ(stats.dropped_ces, 0u);
  EXPECT_EQ(stats.logged_ces, 50u);
}

TEST(LogBufferTest, ConservationHolds) {
  LogBufferConfig config;
  config.capacity = 3;
  LogBufferStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 100; ++i) events.push_back(EventAt(i / 10));
  (void)ApplyLogBuffer(config, events, stats);
  EXPECT_EQ(stats.offered_ces, stats.logged_ces + stats.dropped_ces);
}

TEST(LogBufferTest, StatsMerge) {
  LogBufferStats a, b;
  a.offered_ces = 10;
  a.logged_ces = 8;
  a.dropped_ces = 2;
  b.offered_ces = 5;
  b.logged_ces = 5;
  a.Merge(b);
  EXPECT_EQ(a.offered_ces, 15u);
  EXPECT_EQ(a.logged_ces, 13u);
  EXPECT_EQ(a.dropped_ces, 2u);
}

TEST(LogBufferTest, EmptyInput) {
  LogBufferConfig config;
  LogBufferStats stats;
  EXPECT_TRUE(ApplyLogBuffer(config, {}, stats).empty());
  EXPECT_EQ(stats.offered_ces, 0u);
}

}  // namespace
}  // namespace astra::faultsim
