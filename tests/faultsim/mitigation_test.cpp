#include "faultsim/mitigation.hpp"

#include <gtest/gtest.h>

namespace astra::faultsim {
namespace {

const SimTime kT0 = SimTime::FromCivil(2019, 5, 1);

ErrorEvent SlotEvent(int minute, DimmSlot slot, bool due) {
  ErrorEvent e;
  e.time = kT0.AddMinutes(minute);
  e.coord.node = 1;
  e.coord.slot = slot;
  e.outcome = due ? ecc::ErrorOutcome::kUncorrectable
                  : ecc::ErrorOutcome::kCorrected;
  return e;
}

TEST(MitigationPolicyTest, PresetNamesRoundTrip) {
  for (const char* name : {"astra", "none", "aggressive"}) {
    const auto policy = MitigationPolicyFromName(name);
    ASSERT_TRUE(policy.has_value()) << name;
    EXPECT_EQ(policy->name, name);
  }
  EXPECT_FALSE(MitigationPolicyFromName("astra ").has_value());
  EXPECT_FALSE(MitigationPolicyFromName("maximal").has_value());
}

TEST(MitigationPolicyTest, AstraIsTheDefaultPosture) {
  // The campaign seam must not move the baseline: the "astra" preset equals
  // a default-constructed policy, which equals the seed-era defaults.
  const MitigationPolicy astra = MitigationPolicy::Astra();
  const MitigationPolicy defaults;
  EXPECT_EQ(astra.name, defaults.name);
  EXPECT_EQ(astra.retirement.enabled, defaults.retirement.enabled);
  EXPECT_EQ(astra.retirement.ce_threshold, defaults.retirement.ce_threshold);
  EXPECT_EQ(astra.scrub.enabled, defaults.scrub.enabled);
  EXPECT_EQ(astra.replace_after_dues, defaults.replace_after_dues);
  EXPECT_EQ(astra.replace_after_dues, 0u);  // Astra never auto-swapped on DUEs
}

TEST(MitigationPolicyTest, NoneDisablesEveryResponse) {
  const MitigationPolicy none = MitigationPolicy::None();
  EXPECT_FALSE(none.retirement.enabled);
  EXPECT_FALSE(none.scrub.enabled);
  EXPECT_EQ(none.replace_after_dues, 0u);
}

TEST(MitigationPolicyTest, AggressiveTightensEveryKnob) {
  const MitigationPolicy base = MitigationPolicy::Astra();
  const MitigationPolicy aggressive = MitigationPolicy::Aggressive();
  EXPECT_LT(aggressive.retirement.ce_threshold, base.retirement.ce_threshold);
  EXPECT_LT(aggressive.retirement.reaction_seconds,
            base.retirement.reaction_seconds);
  EXPECT_GT(aggressive.retirement.success_probability,
            base.retirement.success_probability);
  EXPECT_LT(aggressive.scrub.interval_hours, base.scrub.interval_hours);
  EXPECT_GT(aggressive.replace_after_dues, 0u);
}

TEST(DimmReplacementTest, DisabledPolicyPassesEverything) {
  MitigationPolicy policy = MitigationPolicy::Astra();  // replace_after_dues=0
  ReplacementActionStats stats;
  std::vector<ErrorEvent> events;
  for (int i = 0; i < 20; ++i) events.push_back(SlotEvent(i, DimmSlot::B, true));
  const auto survivors = ApplyDimmReplacement(policy, std::move(events), stats);
  EXPECT_EQ(survivors.size(), 20u);
  EXPECT_EQ(stats.dimms_replaced, 0u);
}

TEST(DimmReplacementTest, ReplacesSlotAfterThresholdDues) {
  MitigationPolicy policy;
  policy.replace_after_dues = 2;
  ReplacementActionStats stats;
  std::vector<ErrorEvent> events;
  // CE, DUE, CE, DUE (2nd: triggers), then CE+DUE after -> suppressed.
  events.push_back(SlotEvent(0, DimmSlot::B, false));
  events.push_back(SlotEvent(1, DimmSlot::B, true));
  events.push_back(SlotEvent(2, DimmSlot::B, false));
  events.push_back(SlotEvent(3, DimmSlot::B, true));
  events.push_back(SlotEvent(4, DimmSlot::B, false));
  events.push_back(SlotEvent(5, DimmSlot::B, true));
  const auto survivors = ApplyDimmReplacement(policy, std::move(events), stats);
  // The triggering DUE survives; the two later events are gone.
  EXPECT_EQ(survivors.size(), 4u);
  EXPECT_EQ(stats.dimms_replaced, 1u);
  EXPECT_EQ(stats.suppressed_events, 2u);
}

TEST(DimmReplacementTest, SlotsAreIndependent) {
  MitigationPolicy policy;
  policy.replace_after_dues = 1;
  ReplacementActionStats stats;
  std::vector<ErrorEvent> events;
  events.push_back(SlotEvent(0, DimmSlot::B, true));   // replaces B
  events.push_back(SlotEvent(1, DimmSlot::C, false));  // C unaffected
  events.push_back(SlotEvent(2, DimmSlot::B, false));  // suppressed
  events.push_back(SlotEvent(3, DimmSlot::C, true));   // replaces C
  events.push_back(SlotEvent(4, DimmSlot::C, false));  // suppressed
  const auto survivors = ApplyDimmReplacement(policy, std::move(events), stats);
  EXPECT_EQ(survivors.size(), 3u);
  EXPECT_EQ(stats.dimms_replaced, 2u);
  EXPECT_EQ(stats.suppressed_events, 2u);
}

TEST(DimmReplacementTest, StatsMerge) {
  ReplacementActionStats a, b;
  a.dimms_replaced = 1;
  a.suppressed_events = 5;
  b.dimms_replaced = 2;
  b.suppressed_events = 7;
  a.Merge(b);
  EXPECT_EQ(a.dimms_replaced, 3u);
  EXPECT_EQ(a.suppressed_events, 12u);
}

}  // namespace
}  // namespace astra::faultsim
