#include "faultsim/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace astra::faultsim {
namespace {

CampaignConfig SmallCampaign(std::uint64_t seed = 7, int nodes = 200) {
  CampaignConfig config;
  config.SeedFrom(seed);
  config.node_count = nodes;
  return config;
}

class FleetTest : public ::testing::Test {
 protected:
  static const CampaignResult& Result() {
    static const CampaignResult result = FleetSimulator(SmallCampaign()).Run();
    return result;
  }
};

TEST_F(FleetTest, RecordsSortedByTime) {
  const auto& records = Result().memory_errors;
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp, records[i].timestamp);
  }
}

TEST_F(FleetTest, RecordsWithinWindowAndNodeRange) {
  const CampaignConfig config = SmallCampaign();
  for (const auto& r : Result().memory_errors) {
    EXPECT_TRUE(config.window.Contains(r.timestamp));
    EXPECT_GE(r.node, 0);
    EXPECT_LT(r.node, config.node_count);
    EXPECT_EQ(SocketOfSlot(r.slot), r.socket);
    EXPECT_EQ(r.row, logs::kNoRowInfo);  // Astra quirk: no row info
  }
}

TEST_F(FleetTest, CountsConsistent) {
  const auto& result = Result();
  std::uint64_t ces = 0, dues = 0;
  for (const auto& r : result.memory_errors) {
    (r.type == logs::FailureType::kUncorrectable ? dues : ces) += 1;
  }
  EXPECT_EQ(ces, result.total_ces);
  EXPECT_EQ(dues, result.total_dues);
  EXPECT_EQ(result.memory_errors.size(), ces + dues);
}

TEST_F(FleetTest, LoggedCountsConserveRecords) {
  const auto& result = Result();
  std::uint64_t attributed = 0;
  for (const auto& [id, count] : result.logged_count_by_fault) attributed += count;
  EXPECT_EQ(attributed, result.memory_errors.size());
}

TEST_F(FleetTest, HetOnlyAfterFirmwareUpdate) {
  const CampaignConfig config = SmallCampaign();
  for (const auto& het : Result().het_records) {
    EXPECT_GE(het.timestamp, config.het_firmware_start);
  }
}

TEST_F(FleetTest, HetContainsEveryPostFirmwareDue) {
  const auto& result = Result();
  std::uint64_t memory_dues_in_het = 0;
  for (const auto& het : result.het_records) {
    if (logs::IsMemoryDueEvent(het.event)) ++memory_dues_in_het;
  }
  EXPECT_EQ(memory_dues_in_het, result.dues_recorded_by_het);
  EXPECT_LE(result.dues_recorded_by_het, result.total_dues);
}

TEST_F(FleetTest, DueRecordsCarryVendorEncodedBit) {
  for (const auto& r : Result().memory_errors) {
    EXPECT_GE(r.bit_position, 0);
    EXPECT_LT(r.bit_position, 1 << 9);  // 7 true bits + 2 vendor bits
    const int true_bit = logs::TrueBitOfRecorded(r.bit_position);
    EXPECT_LT(true_bit, kCodeBitsPerWord);
  }
}

TEST_F(FleetTest, PhysicalAddressDecodesToRecordFields) {
  for (const auto& r : Result().memory_errors) {
    const DramCoord coord = DecodePhysicalAddress(r.node, r.physical_address);
    EXPECT_EQ(coord.slot, r.slot);
    EXPECT_EQ(coord.socket, r.socket);
    EXPECT_EQ(coord.rank, r.rank);
    EXPECT_EQ(coord.bank, r.bank);
  }
}

TEST_F(FleetTest, DeterministicAcrossRuns) {
  const CampaignResult again = FleetSimulator(SmallCampaign()).Run();
  const auto& result = Result();
  ASSERT_EQ(again.memory_errors.size(), result.memory_errors.size());
  ASSERT_EQ(again.faults.size(), result.faults.size());
  for (std::size_t i = 0; i < result.memory_errors.size(); i += 97) {
    EXPECT_EQ(again.memory_errors[i], result.memory_errors[i]);
  }
}

TEST_F(FleetTest, SeedChangesOutcome) {
  const CampaignResult other = FleetSimulator(SmallCampaign(/*seed=*/8)).Run();
  EXPECT_NE(other.memory_errors.size(), Result().memory_errors.size());
}

TEST_F(FleetTest, NodeCountScalesVolume) {
  const CampaignResult tiny = FleetSimulator(SmallCampaign(7, 20)).Run();
  EXPECT_LT(tiny.faults.size(), Result().faults.size());
  for (const auto& r : tiny.memory_errors) EXPECT_LT(r.node, 20);
}

TEST_F(FleetTest, SyndromesConsistentPerCoordinate) {
  // Identical failing coordinates must produce identical syndrome words
  // (the paper's "consistent encoding" observation).
  const auto& records = Result().memory_errors;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].physical_address == records[i - 1].physical_address &&
        records[i].node == records[i - 1].node &&
        records[i].bit_position == records[i - 1].bit_position) {
      EXPECT_EQ(records[i].syndrome, records[i - 1].syndrome);
    }
  }
}

TEST(FleetConfigTest, SeedFromPropagates) {
  CampaignConfig a, b;
  a.SeedFrom(1);
  b.SeedFrom(2);
  EXPECT_NE(a.fault_model.seed, b.fault_model.seed);
  EXPECT_NE(a.mitigation.retirement.seed, b.mitigation.retirement.seed);
}

TEST(FleetTimelineTest, MonthlyVolumeDeclines) {
  // Fig. 4a: slight downward trend.  Compare first vs last third of the
  // campaign, normalized per day, over a bigger fleet for stability.
  CampaignConfig config = SmallCampaign(21, 600);
  const CampaignResult result = FleetSimulator(config).Run();
  const std::int64_t third = config.window.DurationSeconds() / 3;
  std::uint64_t first = 0, last = 0;
  for (const auto& r : result.memory_errors) {
    const std::int64_t offset = SecondsBetween(config.window.begin, r.timestamp);
    if (offset < third) ++first;
    if (offset >= 2 * third) ++last;
  }
  // Error volume is fault-luck dominated; fault STARTS are the stable
  // signal.  Count faults starting in each third instead.
  std::uint64_t fault_first = 0, fault_last = 0;
  for (const auto& fault : result.faults) {
    const std::int64_t offset = SecondsBetween(config.window.begin, fault.start);
    if (offset < third) ++fault_first;
    if (offset >= 2 * third) ++fault_last;
  }
  EXPECT_GT(fault_first, fault_last);
}

}  // namespace
}  // namespace astra::faultsim
