#include "faultsim/scrubber.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace astra::faultsim {
namespace {

TEST(ScrubberTest, WordRateArithmetic) {
  ScrubConfig config;
  config.upsets_per_mbit_per_1e9_hours = 50.0;
  // 50 / 1e9 / 2^20 per bit-hour * 72 bits.
  const double expected = 50.0 / 1e9 / (1024.0 * 1024.0) * 72.0;
  EXPECT_NEAR(WordUpsetRatePerHour(config), expected, expected * 1e-12);
}

TEST(ScrubberTest, ShorterIntervalFewerDues) {
  ScrubConfig config;
  double previous = 1e300;
  for (const double interval : {168.0, 24.0, 4.0, 1.0}) {
    config.interval_hours = interval;
    const double dues = ExpectedAccumulationDuesPerDay(config, 332.0 * 1024.0, 5000.0);
    EXPECT_LT(dues, previous) << interval;
    previous = dues;
  }
}

TEST(ScrubberTest, DisabledMatchesExposureInterval) {
  ScrubConfig scrubbed;
  scrubbed.interval_hours = 1000.0;
  ScrubConfig unscrubbed;
  unscrubbed.enabled = false;
  EXPECT_DOUBLE_EQ(ExpectedAccumulationDuesPerDay(scrubbed, 100.0, 1000.0),
                   ExpectedAccumulationDuesPerDay(unscrubbed, 100.0, 1000.0));
}

TEST(ScrubberTest, QuadraticScalingInInterval) {
  // For lambda*T << 1, P(>=2) ~ (lambda T)^2 / 2, so the per-day DUE rate
  // scales linearly with the interval.
  ScrubConfig config;
  config.interval_hours = 10.0;
  const double at_10 = ExpectedAccumulationDuesPerDay(config, 1e6, 1e9);
  config.interval_hours = 20.0;
  const double at_20 = ExpectedAccumulationDuesPerDay(config, 1e6, 1e9);
  EXPECT_NEAR(at_20 / at_10, 2.0, 0.01);
}

TEST(ScrubberTest, MonteCarloMatchesClosedForm) {
  // Inflated upset rate so the MC regime produces countable events.
  ScrubConfig config;
  config.upsets_per_mbit_per_1e9_hours = 5e9;  // validation regime
  config.interval_hours = 24.0;
  constexpr std::uint64_t kWords = 200'000;
  constexpr double kDays = 30.0;

  Rng rng(11);
  const AccumulationResult result = SimulateAccumulation(config, kWords, kDays, rng);

  const double capacity_gib = static_cast<double>(kWords) * kBytesPerWord /
                              (1024.0 * 1024.0 * 1024.0);
  const double expected_multi_per_day =
      ExpectedAccumulationDuesPerDay(config, capacity_gib, kDays * 24.0);
  const double expected_multi = expected_multi_per_day * kDays;
  ASSERT_GT(expected_multi, 50.0);  // test has statistical power
  EXPECT_NEAR(static_cast<double>(result.words_multi_upset), expected_multi,
              5.0 * std::sqrt(expected_multi) + 2.0);
}

TEST(ScrubberTest, EccAdjudicationSplitsByCode) {
  ScrubConfig config;
  config.upsets_per_mbit_per_1e9_hours = 5e9;
  config.interval_hours = 48.0;
  Rng rng(12);
  const AccumulationResult result = SimulateAccumulation(config, 150'000, 30.0, rng);
  ASSERT_GT(result.words_multi_upset, 50u);
  // Under SEC-DED, nearly every accumulated multi-bit word is a DUE (or a
  // silent miscorrection for >= 3 bits).  Same-bit double hits cancel, so a
  // small clean残 remainder is possible.
  EXPECT_GT(result.secded_dues + result.secded_silent,
            result.words_multi_upset * 9 / 10);
  // Chipkill rescues the same-device fraction of double upsets (~4%), so
  // its DUE count must be strictly smaller.
  EXPECT_LT(result.chipkill_dues, result.secded_dues);
  EXPECT_GT(result.chipkill_corrected_multi, 0u);
}

TEST(ScrubberTest, DeterministicGivenSeed) {
  ScrubConfig config;
  config.upsets_per_mbit_per_1e9_hours = 1e8;
  Rng a(5), b(5);
  const AccumulationResult ra = SimulateAccumulation(config, 50'000, 10.0, a);
  const AccumulationResult rb = SimulateAccumulation(config, 50'000, 10.0, b);
  EXPECT_EQ(ra.words_upset, rb.words_upset);
  EXPECT_EQ(ra.secded_dues, rb.secded_dues);
}

TEST(ScrubberTest, AstraScaleAccumulationIsNegligible) {
  // The honest headline: at field upset rates and daily scrubbing, Astra's
  // 332 TB sees essentially zero accumulation DUEs per day — the paper's
  // DUE population is hard multi-bit faults, not accumulated transients.
  ScrubConfig config;  // field-rate defaults
  const double per_day = ExpectedAccumulationDuesPerDay(config, 332.0 * 1024.0, 24.0);
  EXPECT_LT(per_day, 1e-3);
}

}  // namespace
}  // namespace astra::faultsim
