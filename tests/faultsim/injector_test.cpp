#include "faultsim/injector.hpp"

#include <gtest/gtest.h>

#include <set>

#include "stats/descriptive.hpp"

namespace astra::faultsim {
namespace {

TimeWindow PaperWindow() {
  return {SimTime::FromCivil(2019, 1, 20), SimTime::FromCivil(2019, 9, 14)};
}

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() : injector_(FaultModelConfig{}, PaperWindow()) {}
  FaultInjector injector_;
};

TEST_F(InjectorTest, DeterministicPerNode) {
  const FaultInjector other(FaultModelConfig{}, PaperWindow());
  for (NodeId node : {0, 3, 99}) {
    const auto a = injector_.GenerateNodeFaults(node);
    const auto b = other.GenerateNodeFaults(node);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].mode, b[i].mode);
      EXPECT_EQ(a[i].anchor, b[i].anchor);
      EXPECT_EQ(a[i].error_count, b[i].error_count);
    }
  }
}

TEST_F(InjectorTest, SusceptibilityHasMeanNearOne) {
  stats::RunningStats acc;
  for (NodeId node = 0; node < 2000; ++node) {
    acc.Add(injector_.NodeSusceptibility(node));
  }
  // Lognormal with sigma=2 has huge sample variance; the mean converges
  // slowly, so the band is wide but must bracket 1.
  EXPECT_GT(acc.Mean(), 0.4);
  EXPECT_LT(acc.Mean(), 3.0);
}

TEST_F(InjectorTest, VendorCodeConsistentAndSmall) {
  for (NodeId node : {0, 7}) {
    for (int s = 0; s < kDimmSlotCount; ++s) {
      const auto slot = static_cast<DimmSlot>(s);
      const int code = injector_.VendorCode(node, slot);
      EXPECT_GE(code, 0);
      EXPECT_LT(code, 4);
      EXPECT_EQ(code, injector_.VendorCode(node, slot));
    }
  }
}

TEST_F(InjectorTest, FaultFieldsValid) {
  int checked = 0;
  for (NodeId node = 0; node < 300 && checked < 200; ++node) {
    for (const Fault& fault : injector_.GenerateNodeFaults(node)) {
      ++checked;
      EXPECT_TRUE(IsValid(fault.anchor)) << "node " << node;
      EXPECT_EQ(fault.anchor.node, node);
      EXPECT_GE(fault.error_count, 1u);
      EXPECT_GT(fault.lifetime_days, 0.0);
      EXPECT_GE(fault.start, PaperWindow().begin);
      EXPECT_LT(fault.start, PaperWindow().end);
      if (fault.mode == GroundTruthMode::kSingleWord) {
        EXPECT_GE(fault.stuck_bit_count, 2);
        EXPECT_LE(fault.stuck_bit_count, 4);
      } else {
        EXPECT_EQ(fault.stuck_bit_count, 1);
        EXPECT_FALSE(fault.multibit_capable);
      }
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(InjectorTest, UniqueFaultIds) {
  std::set<std::uint64_t> ids;
  std::size_t total = 0;
  for (NodeId node = 0; node < 500; ++node) {
    for (const Fault& fault : injector_.GenerateNodeFaults(node)) {
      ids.insert(fault.id);
      ++total;
    }
  }
  EXPECT_EQ(ids.size(), total);
}

TEST_F(InjectorTest, ExpectedTotalInPaperBand) {
  // Calibration target: ~7k faults fleet-wide (DESIGN.md).
  const double expected = injector_.ExpectedTotalFaults();
  EXPECT_GT(expected, 5000.0);
  EXPECT_LT(expected, 10000.0);
}

TEST_F(InjectorTest, RealizedCountNearExpectation) {
  double realized = 0;
  for (NodeId node = 0; node < kNumNodes; ++node) {
    realized += static_cast<double>(injector_.GenerateNodeFaults(node).size());
  }
  const double expected = injector_.ExpectedTotalFaults();
  // Heavy-tailed susceptibility inflates the variance well beyond Poisson;
  // accept a generous band around the analytic expectation.
  EXPECT_GT(realized, expected * 0.5);
  EXPECT_LT(realized, expected * 2.0);
}

TEST_F(InjectorTest, ErrorEventsRespectModeGeometry) {
  for (NodeId node = 0; node < 400; ++node) {
    for (const Fault& fault : injector_.GenerateNodeFaults(node)) {
      const auto events = injector_.GenerateErrorEvents(fault);
      for (const ErrorEvent& event : events) {
        ASSERT_TRUE(IsValid(event.coord));
        EXPECT_EQ(event.coord.node, fault.anchor.node);
        EXPECT_EQ(event.coord.slot, fault.anchor.slot);
        EXPECT_EQ(event.coord.rank, fault.anchor.rank);
        EXPECT_EQ(event.coord.bank, fault.anchor.bank);
        switch (fault.mode) {
          case GroundTruthMode::kSingleBit:
            EXPECT_EQ(event.coord.row, fault.anchor.row);
            EXPECT_EQ(event.coord.column, fault.anchor.column);
            EXPECT_EQ(event.coord.bit, fault.anchor.bit);
            break;
          case GroundTruthMode::kSingleWord:
            EXPECT_EQ(event.coord.row, fault.anchor.row);
            EXPECT_EQ(event.coord.column, fault.anchor.column);
            break;
          case GroundTruthMode::kSingleColumn:
            EXPECT_EQ(event.coord.column, fault.anchor.column);
            EXPECT_EQ(event.coord.bit, fault.anchor.bit);
            break;
          case GroundTruthMode::kSingleRow:
            EXPECT_EQ(event.coord.row, fault.anchor.row);
            EXPECT_EQ(event.coord.bit, fault.anchor.bit);
            break;
          case GroundTruthMode::kSingleBank:
            break;  // row/column/bit all free
        }
        if (event.IsDue()) {
          EXPECT_EQ(fault.mode, GroundTruthMode::kSingleWord);
          EXPECT_TRUE(fault.multibit_capable);
        }
      }
      // Events are time-sorted and inside the campaign window.
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_GE(events[i].time, PaperWindow().begin);
        EXPECT_LT(events[i].time, PaperWindow().end);
        if (i > 0) EXPECT_GE(events[i].time, events[i - 1].time);
      }
    }
  }
}

TEST_F(InjectorTest, CeEventCountMatchesFault) {
  // The CE count equals fault.error_count; DUE events come on top.
  for (NodeId node = 0; node < 200; ++node) {
    for (const Fault& fault : injector_.GenerateNodeFaults(node)) {
      const auto events = injector_.GenerateErrorEvents(fault);
      std::uint64_t ces = 0, dues = 0;
      for (const auto& e : events) (e.IsDue() ? dues : ces) += 1;
      EXPECT_EQ(ces, fault.error_count);
      if (!fault.multibit_capable) EXPECT_EQ(dues, 0u);
    }
  }
}

TEST_F(InjectorTest, DeclineShiftsStartTimesEarlier) {
  FaultModelConfig declining;
  declining.decline_fraction = 0.6;
  const FaultInjector injector(declining, PaperWindow());
  stats::RunningStats starts;
  for (NodeId node = 0; node < 800; ++node) {
    for (const Fault& fault : injector.GenerateNodeFaults(node)) {
      starts.Add(static_cast<double>(SecondsBetween(PaperWindow().begin, fault.start)));
    }
  }
  const double mid =
      static_cast<double>(PaperWindow().DurationSeconds()) / 2.0;
  EXPECT_LT(starts.Mean(), mid);  // mass shifted toward the campaign start
}

TEST_F(InjectorTest, SlotMultipliersShapeFaultCounts) {
  // Slot J (multiplier 2.0) must out-produce slot A (multiplier 0.5) in
  // aggregate.
  std::uint64_t slot_j = 0, slot_a = 0;
  for (NodeId node = 0; node < kNumNodes; ++node) {
    for (const Fault& fault : injector_.GenerateNodeFaults(node)) {
      if (fault.anchor.slot == DimmSlot::J) ++slot_j;
      if (fault.anchor.slot == DimmSlot::A) ++slot_a;
    }
  }
  EXPECT_GT(slot_j, slot_a * 2);
}

}  // namespace
}  // namespace astra::faultsim
