#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include "campaign/render.hpp"

namespace astra::campaign {
namespace {

// A grid small enough to simulate repeatedly in a unit test but still
// exercising every axis: 2 schemes x 1 rate x 2 policies = 4 cells.
ScenarioGrid TinyGrid() {
  ScenarioGrid grid;
  grid.node_count = 24;
  grid.trials = 3;
  grid.rate_multipliers = {1.0};
  return grid;
}

// One shared run for the tests that only inspect the result.
const CampaignTable& Table() {
  static const CampaignTable table = RunCampaign(TinyGrid(), 2);
  return table;
}

TEST(RunTrialTest, DeterministicPerCellAndTrial) {
  const ScenarioGrid grid = TinyGrid();
  const ScenarioCell cell = grid.CellAt(grid.BaselineIndex());
  const TrialMetrics a = RunTrial(grid, cell, 0);
  const TrialMetrics b = RunTrial(grid, cell, 0);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.ces, b.ces);
  EXPECT_EQ(a.dues, b.dues);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.pages_retired, b.pages_retired);
  EXPECT_EQ(a.fit_per_dimm, b.fit_per_dimm);

  // Different trial index -> different seed -> (almost surely) a different
  // fault draw.  Compare the full tuple to keep this robust.
  const TrialMetrics c = RunTrial(grid, cell, 1);
  EXPECT_TRUE(a.faults != c.faults || a.ces != c.ces || a.dues != c.dues ||
              a.sdc != c.sdc);
}

TEST(RunCampaignTest, ShapeMatchesTheGrid) {
  const ScenarioGrid grid = TinyGrid();
  const CampaignTable& table = Table();
  ASSERT_EQ(table.cells.size(), grid.CellCount());
  ASSERT_EQ(table.deltas.size(), grid.CellCount());
  EXPECT_EQ(table.baseline_index, grid.BaselineIndex());
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    EXPECT_EQ(table.cells[i].key, grid.CellAt(i).Key());
    EXPECT_EQ(table.cells[i].trials.size(),
              static_cast<std::size_t>(grid.trials));
  }
}

TEST(RunCampaignTest, BaselineDeltaIsIdenticallyZero) {
  const CampaignTable& table = Table();
  const CellDelta& base = table.deltas[table.baseline_index];
  EXPECT_EQ(base.ces.point, 0.0);
  EXPECT_EQ(base.dues.point, 0.0);
  EXPECT_EQ(base.sdc.point, 0.0);
}

TEST(RunCampaignTest, CellCisBracketTheirMeans) {
  const CampaignTable& table = Table();
  for (const CellSummary& cell : table.cells) {
    EXPECT_LE(cell.ces_ci.lo, cell.ces_ci.point) << cell.key;
    EXPECT_GE(cell.ces_ci.hi, cell.ces_ci.point) << cell.key;
    EXPECT_LE(cell.dues_ci.lo, cell.dues_ci.point) << cell.key;
    EXPECT_GE(cell.dues_ci.hi, cell.dues_ci.point) << cell.key;
  }
}

// The ISSUE's headline determinism contract: the rendered bytes — text and
// JSON alike — are identical at every thread count and across repeat runs.
TEST(RunCampaignTest, RenderedOutputIsThreadCountInvariant) {
  const ScenarioGrid grid = TinyGrid();
  const CampaignTable t1 = RunCampaign(grid, 1);
  const CampaignTable t4 = RunCampaign(grid, 4);
  const CampaignTable t8 = RunCampaign(grid, 8);
  const std::string text1 = RenderCampaignText(t1);
  EXPECT_EQ(text1, RenderCampaignText(t4));
  EXPECT_EQ(text1, RenderCampaignText(t8));
  const std::string json1 = RenderCampaignJson(t1);
  EXPECT_EQ(json1, RenderCampaignJson(t4));
  EXPECT_EQ(json1, RenderCampaignJson(t8));

  // Repeat run at the same width: byte-identical too.
  EXPECT_EQ(text1, RenderCampaignText(RunCampaign(grid, 1)));
}

TEST(RunCampaignTest, PolicyNoneNeverRetiresOrReplaces) {
  const CampaignTable& table = Table();
  const double baseline_accum =
      table.cells[table.baseline_index].accumulation_dues_per_day;
  for (const CellSummary& cell : table.cells) {
    if (cell.cell.policy.name != "none") continue;
    for (const TrialMetrics& trial : cell.trials) {
      EXPECT_EQ(trial.pages_retired, 0u) << cell.key;
      EXPECT_EQ(trial.dimms_replaced, 0u) << cell.key;
    }
    // No scrubbing means transients accumulate over the whole campaign
    // window instead of one patrol interval: strictly worse than Astra.
    EXPECT_GT(cell.accumulation_dues_per_day, baseline_accum) << cell.key;
  }
}

TEST(RunCampaignTest, RenderTextShowsEveryCellTwice) {
  // Baseline key: "Baseline cell:" header + main table row (no delta row).
  // Every other key: main table row + delta table row.  Exactly two each.
  const ScenarioGrid grid = TinyGrid();
  const std::string text = RenderCampaignText(Table());
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    const std::string key = grid.CellAt(i).Key();
    int count = 0;
    for (std::size_t at = text.find(key); at != std::string::npos;
         at = text.find(key, at + 1)) {
      ++count;
    }
    EXPECT_EQ(count, 2) << key;
  }
}

}  // namespace
}  // namespace astra::campaign
