#include "campaign/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace astra::campaign {
namespace {

TEST(ThermalProfileTest, PresetNamesRoundTrip) {
  for (const char* name : {"astra", "cool", "hot"}) {
    const auto profile = ThermalProfileFromName(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  EXPECT_FALSE(ThermalProfileFromName("tepid").has_value());
  EXPECT_FALSE(ThermalProfileFromName("").has_value());
}

TEST(ThermalProfileTest, FactorsBracketAstra) {
  EXPECT_EQ(ThermalProfile::Astra().fault_rate_factor, 1.0);
  EXPECT_LT(ThermalProfile::Cool().fault_rate_factor, 1.0);
  EXPECT_GT(ThermalProfile::Hot().fault_rate_factor, 1.0);
}

TEST(ScenarioGridTest, DefaultGridIsTheHeadlineEight) {
  const ScenarioGrid grid;
  EXPECT_EQ(grid.CellCount(), 8u);
  EXPECT_GE(grid.schemes.size(), 2u);
  EXPECT_GE(grid.rate_multipliers.size(), 2u);
  EXPECT_GE(grid.policies.size(), 2u);
  EXPECT_EQ(grid.trials, 5);
}

TEST(ScenarioGridTest, CellKeysAreCanonicalAndDistinct) {
  const ScenarioGrid grid;
  std::set<std::string> keys;
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    keys.insert(grid.CellAt(i).Key());
  }
  EXPECT_EQ(keys.size(), grid.CellCount());
  // Cell 0 is the all-defaults corner with the documented key format.
  EXPECT_EQ(grid.CellAt(0).Key(), "secded|x1.00|astra|astra");
}

TEST(ScenarioGridTest, BaselineIsTheAstraCell) {
  const ScenarioGrid grid;
  const std::size_t base = grid.BaselineIndex();
  const ScenarioCell cell = grid.CellAt(base);
  EXPECT_EQ(cell.scheme, ecc::EccScheme::kSecDed);
  EXPECT_EQ(cell.rate_multiplier, 1.0);
  EXPECT_EQ(cell.policy.name, "astra");
  EXPECT_EQ(cell.thermal.name, "astra");

  // A grid whose axes exclude the Astra condition falls back to cell 0.
  ScenarioGrid no_astra;
  no_astra.schemes = {ecc::EccScheme::kChipkill};
  EXPECT_EQ(no_astra.BaselineIndex(), 0u);
}

TEST(ScenarioGridTest, EnumerationOrderIsThermalFastest) {
  ScenarioGrid grid;
  grid.thermals = {ThermalProfile::Astra(), ThermalProfile::Hot()};
  // index 0 and 1 differ only in thermal; policy flips every |thermals|.
  EXPECT_EQ(grid.CellAt(0).thermal.name, "astra");
  EXPECT_EQ(grid.CellAt(1).thermal.name, "hot");
  EXPECT_EQ(grid.CellAt(0).policy.name, grid.CellAt(1).policy.name);
  EXPECT_NE(grid.CellAt(0).policy.name, grid.CellAt(2).policy.name);
}

TEST(TrialSeedTest, StableAndKeySensitive) {
  const std::uint64_t s = TrialSeed(20190120, "secded|x1.00|astra|astra", 0);
  // Pinned value: moving it means every published campaign result moves.
  EXPECT_EQ(s, TrialSeed(20190120, "secded|x1.00|astra|astra", 0));
  EXPECT_NE(s, TrialSeed(20190120, "secded|x1.00|astra|astra", 1));
  EXPECT_NE(s, TrialSeed(20190120, "chipkill|x1.00|astra|astra", 0));
  EXPECT_NE(s, TrialSeed(20190121, "secded|x1.00|astra|astra", 0));
}

TEST(TrialSeedTest, IndependentOfGridShape) {
  // The same cell in a 1-cell grid and an 8-cell grid draws the same seed:
  // only (grid seed, key, trial) matter.
  ScenarioGrid small;
  small.schemes = {ecc::EccScheme::kChipkill};
  small.rate_multipliers = {2.0};
  small.policies = {faultsim::MitigationPolicy::None()};
  const ScenarioGrid full;
  const std::string key = small.CellAt(0).Key();
  std::size_t match = full.CellCount();
  for (std::size_t i = 0; i < full.CellCount(); ++i) {
    if (full.CellAt(i).Key() == key) match = i;
  }
  ASSERT_LT(match, full.CellCount());
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_EQ(TrialSeed(full.seed, full.CellAt(match).Key(), trial),
              TrialSeed(small.seed, key, trial));
  }
}

TEST(CellCampaignConfigTest, WiresSchemeRatePolicyAndSeed) {
  ScenarioGrid grid;
  grid.node_count = 24;
  ScenarioCell cell = grid.CellAt(0);
  cell.scheme = ecc::EccScheme::kChipkill;
  cell.rate_multiplier = 2.0;
  cell.policy = faultsim::MitigationPolicy::None();
  cell.thermal = ThermalProfile::Hot();
  const auto config = CellCampaignConfig(grid, cell, 2);
  EXPECT_EQ(config.node_count, 24);
  EXPECT_EQ(config.fault_model.ecc_scheme, ecc::EccScheme::kChipkill);
  EXPECT_EQ(config.fault_model.rate_multipliers.overall,
            2.0 * ThermalProfile::Hot().fault_rate_factor);
  EXPECT_FALSE(config.mitigation.retirement.enabled);
  EXPECT_EQ(config.seed, TrialSeed(grid.seed, cell.Key(), 2));
  // SeedFrom derives the retirement RNG from the trial seed, not the policy:
  // two policies differ only in posture, never in stochastic stream.
  EXPECT_NE(config.mitigation.retirement.seed,
            faultsim::MitigationPolicy::None().retirement.seed);
}

TEST(CellCampaignConfigTest, BaselineCellTrialZeroIsAstraPosture) {
  const ScenarioGrid grid;
  const auto config = CellCampaignConfig(grid, grid.CellAt(grid.BaselineIndex()), 0);
  EXPECT_EQ(config.fault_model.ecc_scheme, ecc::EccScheme::kSecDed);
  EXPECT_EQ(config.fault_model.rate_multipliers.overall, 1.0);
  EXPECT_TRUE(config.mitigation.retirement.enabled);
}

TEST(ParseScenarioGridTest, FullGridFile) {
  const char* text =
      "# what-if sweep\n"
      "ecc = secded, chipkill, ondie\n"
      "rate = 1.0, 4\n"
      "policy = astra, aggressive\n"
      "thermal = cool, hot\n"
      "trials = 7\n"
      "nodes = 12\n"
      "seed = 99\n";
  std::string error;
  const auto grid = ParseScenarioGrid(text, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->CellCount(), 3u * 2u * 2u * 2u);
  EXPECT_EQ(grid->trials, 7);
  EXPECT_EQ(grid->node_count, 12);
  EXPECT_EQ(grid->seed, 99u);
  EXPECT_EQ(grid->schemes[2], ecc::EccScheme::kOnDieSecDed);
  EXPECT_EQ(grid->rate_multipliers[1], 4.0);
  EXPECT_EQ(grid->policies[1].name, "aggressive");
  EXPECT_EQ(grid->thermals[0].name, "cool");
}

TEST(ParseScenarioGridTest, UnmentionedAxesKeepDefaults) {
  std::string error;
  const auto grid = ParseScenarioGrid("ecc = ondie\n", &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->schemes.size(), 1u);
  EXPECT_EQ(grid->rate_multipliers, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(grid->policies.size(), 2u);
}

TEST(ParseScenarioGridTest, ErrorsNameTheLine) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"ecc = secded\nvoltage = 1.1\n", "line 2"},
      {"ecc = raid\n", "line 1"},
      {"rate = fast\n", "line 1"},
      {"rate = -1\n", "line 1"},
      {"policy = yolo\n", "line 1"},
      {"thermal = plasma\n", "line 1"},
      {"trials = 0\n", "line 1"},
      {"nodes = 0\n", "line 1"},
      {"ecc =\n", "expected key=value"},
      {"just words\n", "line 1"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_FALSE(ParseScenarioGrid(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << "input: " << c.text << "\nerror: " << error;
  }
}

}  // namespace
}  // namespace astra::campaign
