#include "sensors/sensor_store.hpp"

#include <gtest/gtest.h>

#include "sensors/environment.hpp"

namespace astra::sensors {
namespace {

const TimeWindow kWindow{SimTime::FromCivil(2019, 6, 1), SimTime::FromCivil(2019, 6, 3)};

class SensorStoreTest : public ::testing::Test {
 protected:
  SensorStoreTest()
      : store_(SensorStore::Materialize(env_.Sensors(), kWindow, /*node_count=*/4,
                                        /*stride_minutes=*/15)) {}
  Environment env_;
  SensorStore store_;
};

TEST_F(SensorStoreTest, DimensionsAndFill) {
  // 2 days at 15-minute stride = 192 slots per sensor.
  EXPECT_EQ(store_.SampleSlots(), 4u * kSensorsPerNode * 192);
  // Nearly all slots valid; a few gaps from injected bad samples.
  EXPECT_GT(store_.ValidSamples(), store_.SampleSlots() * 98 / 100);
  EXPECT_GT(store_.GapCount(), 0u);
}

TEST_F(SensorStoreTest, AtMatchesFieldSample) {
  const SimTime t = kWindow.begin.AddMinutes(45);
  const auto stored = store_.At(1, SensorKind::kCpu0Temp, t);
  ASSERT_TRUE(stored.has_value());
  const SensorReading direct = env_.Sensors().Sample(1, SensorKind::kCpu0Temp, t);
  ASSERT_TRUE(direct.Usable());
  EXPECT_NEAR(*stored, direct.value, 1e-3);  // float storage rounding
}

TEST_F(SensorStoreTest, AtRoundsToNearestSlot) {
  const SimTime slot_time = kWindow.begin.AddMinutes(30);
  const auto exact = store_.At(0, SensorKind::kDcPower, slot_time);
  const auto nearby = store_.At(0, SensorKind::kDcPower, slot_time.AddMinutes(6));
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(nearby.has_value());
  EXPECT_DOUBLE_EQ(*exact, *nearby);
}

TEST_F(SensorStoreTest, OutOfRangeQueries) {
  EXPECT_FALSE(store_.At(99, SensorKind::kCpu0Temp, kWindow.begin).has_value());
  EXPECT_FALSE(
      store_.At(0, SensorKind::kCpu0Temp, kWindow.begin.AddDays(-1)).has_value());
  EXPECT_FALSE(
      store_.At(0, SensorKind::kCpu0Temp, kWindow.end.AddDays(1)).has_value());
}

TEST_F(SensorStoreTest, MeanOverAgreesWithProceduralMean) {
  const TimeWindow query{kWindow.begin.AddHours(6), kWindow.begin.AddHours(30)};
  const auto stored = store_.MeanOver(2, SensorKind::kDimmsJLNP, query);
  ASSERT_TRUE(stored.has_value());
  const double procedural =
      env_.Sensors().MeanOverWindow(2, SensorKind::kDimmsJLNP, query, 256);
  // Stored samples carry read noise (sigma ~0.8 over ~96 samples -> ~0.1);
  // allow a modest band.
  EXPECT_NEAR(*stored, procedural, 0.5);
}

TEST_F(SensorStoreTest, MeanOverEmptyWindow) {
  const TimeWindow empty{kWindow.begin, kWindow.begin};
  EXPECT_FALSE(store_.MeanOver(0, SensorKind::kCpu0Temp, empty).has_value());
}

TEST(SensorStoreFromRecordsTest, RoundTripsThroughRecords) {
  Environment env;
  // Build records exactly as the dataset writer would.
  std::vector<logs::SensorRecord> records;
  const int stride = 30;
  for (std::int64_t m = 0; m < 2 * 24 * 60; m += stride) {
    for (NodeId node = 0; node < 2; ++node) {
      for (int s = 0; s < kSensorsPerNode; ++s) {
        const auto kind = static_cast<SensorKind>(s);
        const SimTime t = kWindow.begin.AddMinutes(m);
        const SensorReading reading = env.Sensors().Sample(node, kind, t);
        logs::SensorRecord record;
        record.timestamp = t;
        record.node = node;
        record.sensor = kind;
        record.valid = reading.status != SampleStatus::kMissing;
        record.value = reading.value;
        records.push_back(record);
      }
    }
  }
  const SensorStore store =
      SensorStore::FromRecords(records, kWindow, /*node_count=*/2, stride);
  EXPECT_GT(store.ValidSamples(), store.SampleSlots() * 95 / 100);

  // Values stored from records match direct materialization.
  const SensorStore direct =
      SensorStore::Materialize(env.Sensors(), kWindow, 2, stride);
  const SimTime probe = kWindow.begin.AddHours(13);
  const auto a = store.At(1, SensorKind::kCpu1Temp, probe);
  const auto b = direct.At(1, SensorKind::kCpu1Temp, probe);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a && b) EXPECT_NEAR(*a, *b, 1e-3);
}

TEST(SensorStoreFromRecordsTest, InvalidValuesBecomeGaps) {
  std::vector<logs::SensorRecord> records;
  logs::SensorRecord record;
  record.timestamp = kWindow.begin;
  record.node = 0;
  record.sensor = SensorKind::kDcPower;
  record.valid = true;
  record.value = 6553.5;  // implausible glitch value
  records.push_back(record);
  const SensorStore store = SensorStore::FromRecords(records, kWindow, 1, 60);
  EXPECT_EQ(store.ValidSamples(), 0u);
  EXPECT_FALSE(store.At(0, SensorKind::kDcPower, kWindow.begin).has_value());
}

}  // namespace
}  // namespace astra::sensors
