#include "sensors/workload.hpp"

#include <gtest/gtest.h>

namespace astra::sensors {
namespace {

const SimTime kStart = SimTime::FromCivil(2019, 5, 20);

TEST(WorkloadTest, UtilizationBounded) {
  const WorkloadModel model;
  for (NodeId node : {0, 17, 2591}) {
    for (int h = 0; h < 24 * 14; h += 3) {
      const double u = model.Utilization(node, kStart.AddHours(h));
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(WorkloadTest, Deterministic) {
  const WorkloadModel a, b;
  for (int h = 0; h < 100; ++h) {
    EXPECT_DOUBLE_EQ(a.Utilization(5, kStart.AddHours(h)),
                     b.Utilization(5, kStart.AddHours(h)));
  }
}

TEST(WorkloadTest, SeedChangesSchedule) {
  WorkloadConfig config;
  config.seed = 1;
  const WorkloadModel a(config);
  config.seed = 2;
  const WorkloadModel b(config);
  int diffs = 0;
  for (int h = 0; h < 200; h += 4) {
    diffs += a.Utilization(3, kStart.AddHours(h)) != b.Utilization(3, kStart.AddHours(h));
  }
  EXPECT_GT(diffs, 10);
}

TEST(WorkloadTest, ConstantWithinSegment) {
  WorkloadConfig config;
  config.diurnal_amplitude = 0.0;  // isolate the segment structure
  const WorkloadModel model(config);
  // Sample inside one 4h segment aligned to the epoch grid.
  const std::int64_t segment_start =
      (kStart.Seconds() / config.segment_seconds) * config.segment_seconds;
  const double u0 = model.Utilization(7, SimTime(segment_start));
  for (int m = 1; m < 240; m += 13) {
    EXPECT_DOUBLE_EQ(model.Utilization(7, SimTime(segment_start).AddMinutes(m)), u0);
  }
}

TEST(WorkloadTest, NodesDiffer) {
  const WorkloadModel model;
  int diffs = 0;
  for (int h = 0; h < 100; h += 4) {
    diffs += model.Utilization(1, kStart.AddHours(h)) !=
             model.Utilization(2, kStart.AddHours(h));
  }
  EXPECT_GT(diffs, 5);
}

TEST(WorkloadTest, MeanMatchesSampledAverage) {
  const WorkloadModel model;
  const TimeWindow window{kStart, kStart.AddDays(3)};
  const double mean = model.MeanUtilization(9, window);
  // Dense sampling at 5-minute resolution.
  double sum = 0.0;
  int n = 0;
  for (std::int64_t s = window.begin.Seconds(); s < window.end.Seconds(); s += 300) {
    sum += model.Utilization(9, SimTime(s));
    ++n;
  }
  EXPECT_NEAR(mean, sum / n, 0.01);
}

TEST(WorkloadTest, MeanOfDegenerateWindow) {
  const WorkloadModel model;
  const TimeWindow empty{kStart, kStart};
  EXPECT_DOUBLE_EQ(model.MeanUtilization(1, empty), model.Utilization(1, kStart));
}

TEST(WorkloadTest, FleetAverageInPlausibleBand) {
  // Mixture of 25% idle (~0.06) and 75% busy (~0.72) -> fleet mean ~ 0.55.
  const WorkloadModel model;
  double sum = 0.0;
  int n = 0;
  for (NodeId node = 0; node < 200; ++node) {
    sum += model.MeanUtilization(node, {kStart, kStart.AddDays(7)});
    ++n;
  }
  const double fleet_mean = sum / n;
  EXPECT_GT(fleet_mean, 0.40);
  EXPECT_LT(fleet_mean, 0.70);
}

TEST(WorkloadTest, DiurnalSwingPresent) {
  WorkloadConfig config;
  config.idle_probability = 0.0;  // remove segment noise
  config.busy_util_lo = 0.5;
  config.busy_util_hi = 0.5;      // constant base
  const WorkloadModel model(config);
  const double afternoon = model.Utilization(0, kStart.AddHours(15));
  const double predawn = model.Utilization(0, kStart.AddHours(3));
  EXPECT_GT(afternoon, predawn);
}

}  // namespace
}  // namespace astra::sensors
