#include "sensors/sensor_field.hpp"

#include <gtest/gtest.h>

#include "sensors/environment.hpp"

namespace astra::sensors {
namespace {

const SimTime kStart = SimTime::FromCivil(2019, 6, 10);

class SensorFieldTest : public ::testing::Test {
 protected:
  Environment env_;
};

TEST_F(SensorFieldTest, SamplesDeterministic) {
  const Environment other;
  for (int m = 0; m < 100; ++m) {
    const SensorReading a =
        env_.Sensors().Sample(12, SensorKind::kDimmsACEG, kStart.AddMinutes(m));
    const SensorReading b =
        other.Sensors().Sample(12, SensorKind::kDimmsACEG, kStart.AddMinutes(m));
    EXPECT_EQ(a.status, b.status);
    EXPECT_DOUBLE_EQ(a.value, b.value);
  }
}

TEST_F(SensorFieldTest, BadSampleFractionUnderOnePercent) {
  // §2.2: excluded samples are "significantly less than 1% of the total".
  int bad = 0, total = 0;
  for (NodeId node = 0; node < 20; ++node) {
    for (int m = 0; m < 24 * 60; m += 3) {
      for (int s = 0; s < kSensorsPerNode; ++s) {
        const auto reading =
            env_.Sensors().Sample(node, static_cast<SensorKind>(s), kStart.AddMinutes(m));
        ++total;
        bad += reading.status != SampleStatus::kOk;
      }
    }
  }
  EXPECT_GT(bad, 0);  // the failure mode exists...
  EXPECT_LT(static_cast<double>(bad) / total, 0.01);  // ...but stays rare
}

TEST_F(SensorFieldTest, NoiseCentredOnTrueValue) {
  double bias = 0.0;
  int n = 0;
  for (int m = 0; m < 3000; ++m) {
    const SimTime t = kStart.AddMinutes(m);
    const auto reading = env_.Sensors().Sample(3, SensorKind::kCpu0Temp, t);
    if (!reading.Usable()) continue;
    bias += reading.value - env_.Sensors().TrueValue(3, SensorKind::kCpu0Temp, t);
    ++n;
  }
  EXPECT_NEAR(bias / n, 0.0, 0.1);
}

TEST_F(SensorFieldTest, InvalidValuesAreImplausible) {
  const SensorValidRanges ranges;
  // Scan for injected invalid samples and confirm validation rejects them.
  int found = 0;
  for (NodeId node = 0; node < 40 && found < 5; ++node) {
    for (int m = 0; m < 2000 && found < 5; ++m) {
      const auto reading =
          env_.Sensors().Sample(node, SensorKind::kDcPower, kStart.AddMinutes(m));
      if (reading.status == SampleStatus::kInvalid) {
        EXPECT_FALSE(ranges.IsPlausible(SensorKind::kDcPower, reading.value));
        ++found;
      }
    }
  }
  EXPECT_GT(found, 0);
}

TEST_F(SensorFieldTest, ValidRangesAcceptNormalReadings) {
  const SensorValidRanges ranges;
  EXPECT_TRUE(ranges.IsPlausible(SensorKind::kCpu0Temp, 65.0));
  EXPECT_TRUE(ranges.IsPlausible(SensorKind::kDcPower, 300.0));
  EXPECT_FALSE(ranges.IsPlausible(SensorKind::kCpu0Temp, 205.0));
  EXPECT_FALSE(ranges.IsPlausible(SensorKind::kDcPower, 6553.5));
  EXPECT_FALSE(ranges.IsPlausible(SensorKind::kDcPower, 0.0));
}

TEST_F(SensorFieldTest, MeanOverWindowTracksSampledMean) {
  const TimeWindow window{kStart, kStart.AddDays(1)};
  const double mean =
      env_.Sensors().MeanOverWindow(8, SensorKind::kDimmsJLNP, window);
  double sum = 0.0;
  int n = 0;
  for (std::int64_t s = window.begin.Seconds(); s < window.end.Seconds(); s += 600) {
    sum += env_.Sensors().TrueValue(8, SensorKind::kDimmsJLNP, SimTime(s));
    ++n;
  }
  EXPECT_NEAR(mean, sum / n, 0.5);
}

TEST_F(SensorFieldTest, PowerSensorReturnsWatts) {
  const double v = env_.Sensors().TrueValue(1, SensorKind::kDcPower, kStart);
  EXPECT_GT(v, 200.0);
  EXPECT_LT(v, 400.0);
}

TEST(EnvironmentTest, SeedFromChangesStreams) {
  EnvironmentConfig config;
  config.SeedFrom(111);
  const Environment a(config);
  config.SeedFrom(222);
  const Environment b(config);
  int diffs = 0;
  for (int m = 0; m < 50; ++m) {
    diffs += a.Sensors().TrueValue(0, SensorKind::kCpu0Temp, kStart.AddMinutes(m)) !=
             b.Sensors().TrueValue(0, SensorKind::kCpu0Temp, kStart.AddMinutes(m));
  }
  EXPECT_GT(diffs, 25);
}

TEST(EnvironmentTest, SubmodelsShareWorkload) {
  const Environment env;
  // Power and thermal must be driven by the same utilization stream: at a
  // fixed instant, a high-power node must also be a hot node (same node,
  // controlling for static offsets by comparing the same node at two times).
  const double p1 = env.Power().TruePower(5, kStart.AddHours(1));
  const double p2 = env.Power().TruePower(5, kStart.AddHours(30));
  const double t1 = env.Thermal().TrueTemperature(5, SensorKind::kCpu0Temp, kStart.AddHours(1));
  const double t2 = env.Thermal().TrueTemperature(5, SensorKind::kCpu0Temp, kStart.AddHours(30));
  if (p1 > p2 + 20.0) {
    EXPECT_GT(t1, t2);
  } else if (p2 > p1 + 20.0) {
    EXPECT_GT(t2, t1);
  }
}

}  // namespace
}  // namespace astra::sensors
