#include "sensors/thermal.hpp"

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"

namespace astra::sensors {
namespace {

const SimTime kStart = SimTime::FromCivil(2019, 6, 1);

class ThermalTest : public ::testing::Test {
 protected:
  ThermalTest() : workload_(), thermal_(ClimateConfig{}, &workload_) {}

  WorkloadModel workload_;
  ThermalModel thermal_;
};

TEST_F(ThermalTest, Cpu1RunsHotterThanCpu2OnAverage) {
  // Paper Fig. 13a: socket 0 ("CPU1") sits downstream in the airflow and
  // reads hotter than socket 1 ("CPU2").
  double cpu1 = 0.0, cpu2 = 0.0;
  int n = 0;
  for (NodeId node = 0; node < 100; ++node) {
    for (int h = 0; h < 72; h += 6) {
      cpu1 += thermal_.TrueTemperature(node, SensorKind::kCpu0Temp, kStart.AddHours(h));
      cpu2 += thermal_.TrueTemperature(node, SensorKind::kCpu1Temp, kStart.AddHours(h));
      ++n;
    }
  }
  EXPECT_GT(cpu1 / n, cpu2 / n + 1.0);
}

TEST_F(ThermalTest, DimmGroupsFollowAirflowOrder) {
  double front = 0.0, rear = 0.0;
  int n = 0;
  for (NodeId node = 0; node < 60; ++node) {
    for (int h = 0; h < 48; h += 8) {
      front += thermal_.TrueTemperature(node, SensorKind::kDimmsIKMO, kStart.AddHours(h));
      rear += thermal_.TrueTemperature(node, SensorKind::kDimmsACEG, kStart.AddHours(h));
      ++n;
    }
  }
  EXPECT_GT(rear / n, front / n);
}

TEST_F(ThermalTest, TemperaturesInAstraBand) {
  // Fig. 2: DIMM readings live in roughly 28-60 degC, CPUs well above DIMMs.
  for (NodeId node : {0, 500, 2000}) {
    for (int h = 0; h < 24 * 7; h += 5) {
      const SimTime t = kStart.AddHours(h);
      for (const auto kind : {SensorKind::kDimmsACEG, SensorKind::kDimmsHFDB,
                              SensorKind::kDimmsIKMO, SensorKind::kDimmsJLNP}) {
        const double temp = thermal_.TrueTemperature(node, kind, t);
        EXPECT_GT(temp, 20.0);
        EXPECT_LT(temp, 65.0);
      }
      for (const auto kind : {SensorKind::kCpu0Temp, SensorKind::kCpu1Temp}) {
        const double temp = thermal_.TrueTemperature(node, kind, t);
        EXPECT_GT(temp, 40.0);
        EXPECT_LT(temp, 100.0);
      }
    }
  }
}

TEST_F(ThermalTest, RegionGradientBelowOneDegree) {
  // §3.4: "differences per region are significantly less than 1 degC".
  stats::RunningStats region_means[kRackRegionCount];
  for (NodeId node = 0; node < kNodesPerRack * 4; ++node) {
    const auto region = static_cast<int>(RegionOfNode(node));
    region_means[region].Add(thermal_.InletTemperature(node, kStart));
  }
  const double spread = std::max({region_means[0].Mean(), region_means[1].Mean(),
                                  region_means[2].Mean()}) -
                        std::min({region_means[0].Mean(), region_means[1].Mean(),
                                  region_means[2].Mean()});
  EXPECT_LT(spread, 1.0);
}

TEST_F(ThermalTest, RackSpreadBelowPaperBound) {
  // §3.4: mean per-rack temperature varies < ~4.2 degC across racks.
  double lo = 1e9, hi = -1e9;
  for (int rack = 0; rack < kNumRacks; ++rack) {
    stats::RunningStats acc;
    for (int i = 0; i < kNodesPerRack; i += 4) {
      acc.Add(thermal_.InletTemperature(rack * kNodesPerRack + i, kStart));
    }
    lo = std::min(lo, acc.Mean());
    hi = std::max(hi, acc.Mean());
  }
  EXPECT_LT(hi - lo, 4.2);
}

TEST_F(ThermalTest, SlotTemperatureTracksGroupSensor) {
  for (int slot_idx = 0; slot_idx < kDimmSlotCount; ++slot_idx) {
    const auto slot = static_cast<DimmSlot>(slot_idx);
    const double slot_temp = thermal_.TrueSlotTemperature(3, slot, kStart);
    const double group_temp =
        thermal_.TrueTemperature(3, DimmSensorOfSlot(slot), kStart);
    EXPECT_NEAR(slot_temp, group_temp, 4.0);
  }
}

TEST_F(ThermalTest, UtilizationHeatsComponents) {
  WorkloadConfig busy_config;
  busy_config.idle_probability = 0.0;
  busy_config.busy_util_lo = busy_config.busy_util_hi = 0.95;
  WorkloadModel busy(busy_config);
  ThermalModel hot(ClimateConfig{}, &busy);

  WorkloadConfig idle_config;
  idle_config.idle_probability = 1.0;
  WorkloadModel idle(idle_config);
  ThermalModel cold(ClimateConfig{}, &idle);

  EXPECT_GT(hot.TrueTemperature(0, SensorKind::kCpu0Temp, kStart),
            cold.TrueTemperature(0, SensorKind::kCpu0Temp, kStart) + 10.0);
}

TEST(PowerModelTest, AffineInUtilization) {
  WorkloadConfig config;
  config.idle_probability = 1.0;
  config.idle_util_lo = config.idle_util_hi = 0.0;
  config.diurnal_amplitude = 0.0;
  WorkloadModel idle(config);
  PowerModel power(PowerConfig{}, &idle);
  EXPECT_NEAR(power.TruePower(0, kStart), PowerConfig{}.idle_w, 1e-9);

  config.idle_probability = 0.0;
  config.busy_util_lo = config.busy_util_hi = 1.0;
  WorkloadModel full(config);
  PowerModel power_full(PowerConfig{}, &full);
  EXPECT_NEAR(power_full.TruePower(0, kStart), PowerConfig{}.full_w, 1e-9);
}

TEST(PowerModelTest, PowerInPaperBand) {
  WorkloadModel workload;
  PowerModel power(PowerConfig{}, &workload);
  for (NodeId node = 0; node < 50; ++node) {
    for (int h = 0; h < 48; h += 3) {
      const double w = power.TruePower(node, kStart.AddHours(h));
      EXPECT_GE(w, 230.0);
      EXPECT_LE(w, 390.0);
    }
  }
}

TEST(PowerModelTest, MeanPowerMatchesMeanUtilization) {
  WorkloadModel workload;
  PowerModel power(PowerConfig{}, &workload);
  const TimeWindow window{kStart, kStart.AddDays(2)};
  const double expected = PowerConfig{}.idle_w +
                          (PowerConfig{}.full_w - PowerConfig{}.idle_w) *
                              workload.MeanUtilization(4, window);
  EXPECT_NEAR(power.MeanPower(4, window), expected, 1e-9);
}

}  // namespace
}  // namespace astra::sensors
