// Serving topology: defaults, rack arithmetic, node directory naming, and
// the topology-file parser's accept/reject behaviour.
#include "serve/topology.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/file_io.hpp"

namespace astra::serve {
namespace {

TEST(ServeTopologyTest, DefaultsToThePapersAstraMachine) {
  const ServeTopology topology;
  EXPECT_EQ(topology.racks, kNumRacks);
  EXPECT_EQ(topology.nodes_per_rack, kNodesPerRack);
  EXPECT_EQ(topology.NodeCount(), kNumNodes);
  EXPECT_TRUE(topology.Valid());
}

TEST(ServeTopologyTest, RackArithmeticPartitionsTheNodeRange) {
  const ServeTopology topology{3, 4};
  EXPECT_EQ(topology.NodeCount(), 12);
  EXPECT_EQ(topology.RackOf(0), 0);
  EXPECT_EQ(topology.RackOf(3), 0);
  EXPECT_EQ(topology.RackOf(4), 1);
  EXPECT_EQ(topology.RackOf(11), 2);
  EXPECT_EQ(topology.RackBegin(0), 0);
  EXPECT_EQ(topology.RackBegin(2), 8);
  // Every node lands in exactly the rack whose range contains it.
  for (int node = 0; node < topology.NodeCount(); ++node) {
    const int rack = topology.RackOf(node);
    EXPECT_GE(node, topology.RackBegin(rack));
    EXPECT_LT(node, topology.RackBegin(rack) + topology.nodes_per_rack);
  }
}

TEST(ServeTopologyTest, InvalidShapesAreRejected) {
  EXPECT_FALSE((ServeTopology{0, 72}).Valid());
  EXPECT_FALSE((ServeTopology{36, 0}).Valid());
  EXPECT_FALSE((ServeTopology{-1, 72}).Valid());
  // Overflowing racks * nodes_per_rack must not silently wrap.
  EXPECT_FALSE((ServeTopology{1'000'000, 1'000'000}).Valid());
}

TEST(ServeTopologyTest, NodeDirNamesAreZeroPaddedAndSortable) {
  EXPECT_EQ(NodeDirName(0), "node-0000");
  EXPECT_EQ(NodeDirName(7), "node-0007");
  EXPECT_EQ(NodeDirName(2591), "node-2591");
  // Wider fleets grow the field instead of truncating.
  EXPECT_EQ(NodeDirName(123456), "node-123456");
}

TEST(ServeTopologyTest, ParsesKeyValueAndKeyEqualsValueLines) {
  const auto spaced = ParseTopologyText("racks 4\nnodes_per_rack 9\n");
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(spaced->racks, 4);
  EXPECT_EQ(spaced->nodes_per_rack, 9);

  const auto equals = ParseTopologyText("racks=2\nnodes_per_rack = 6\n");
  ASSERT_TRUE(equals.has_value());
  EXPECT_EQ(equals->racks, 2);
  EXPECT_EQ(equals->nodes_per_rack, 6);
}

TEST(ServeTopologyTest, CommentsBlanksAndPartialOverridesWork) {
  const auto parsed = ParseTopologyText(
      "# the staging half-machine\n"
      "\n"
      "racks 18   # comment after the value\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->racks, 18);
  EXPECT_EQ(parsed->nodes_per_rack, kNodesPerRack);  // untouched default
}

TEST(ServeTopologyTest, MalformedInputIsRejectedNotGuessed) {
  EXPECT_FALSE(ParseTopologyText("racks\n").has_value());          // no value
  EXPECT_FALSE(ParseTopologyText("racks zero\n").has_value());     // not a number
  EXPECT_FALSE(ParseTopologyText("racks 0\n").has_value());        // out of range
  EXPECT_FALSE(ParseTopologyText("racks 2000000\n").has_value());  // out of range
  EXPECT_FALSE(ParseTopologyText("shelves 4\n").has_value());      // unknown key
}

TEST(ServeTopologyTest, ParseTopologyFileReadsThroughTheIoSeam) {
  const std::string dir = ::testing::TempDir() + "astra_serve_topology_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/topology.conf";
  ASSERT_TRUE(WriteFileBytes(path, "racks 2\nnodes_per_rack 3\n"));
  const auto parsed = ParseTopologyFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NodeCount(), 6);

  EXPECT_FALSE(ParseTopologyFile(dir + "/no_such_file.conf").has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace astra::serve
