// ServeDaemon end to end in-process: init validation, drain parity against
// the one-stream oracle, report routing and bounds, stats, the HTTP handler
// surface, live serving to quiescence, and checkpoint/restore across
// daemon instances.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "faultsim/fleet.hpp"
#include "serve/fleet_dataset.hpp"
#include "util/file_io.hpp"

namespace astra::serve {
namespace {

// A small deterministic campaign shared by the suite: 8 simulated node ids
// folded onto a 2x2 serving topology.
const faultsim::CampaignResult& Campaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.seed = 20190914;
    config.node_count = 8;
    config.SeedFrom(config.seed);
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "astra_serve_daemon_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
    topology_ = ServeTopology{2, 2};
    root_ = base_ + "/fleet";
    ASSERT_TRUE(WriteFleetDataset(Campaign(), root_, topology_));
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  [[nodiscard]] ServeOptions BaseOptions() const {
    ServeOptions options;
    options.root = root_;
    options.topology = topology_;
    options.monitor.alerts.window_seconds = 3600;
    options.monitor.alerts.fleet_ce_threshold = 4;
    options.retry = RetryPolicy::None();
    return options;
  }

  // The parity oracle: one monitor over the concatenated logs, rendered
  // through the same merge-tree path the daemon uses.
  [[nodiscard]] std::string OracleReport(const ServeOptions& options) {
    const std::string dir = base_ + "/combined";
    EXPECT_TRUE(WriteCombinedDataset(Campaign(), dir));
    stream::StreamMonitor monitor(core::DatasetPaths::InDirectory(dir),
                                  options.monitor);
    EXPECT_NE(monitor.Finish(), stream::MonitorStatus::kMissingPrimary);
    std::vector<NodeSample> sample;
    sample.push_back(SampleMonitor(monitor));
    core::EngineSetConfig engine_config;
    engine_config.predictor = options.monitor.predictor;
    const auto view =
        MergeSamples(engine_config, options.monitor.alerts, sample);
    EXPECT_TRUE(view.has_value());
    std::ostringstream out;
    if (view) RenderMergedReport(out, options.monitor.policy, *view);
    return out.str();
  }

  std::string base_;
  std::string root_;
  ServeTopology topology_;
};

TEST_F(ServeDaemonTest, InitRejectsInvalidOptionsWithADiagnostic) {
  ServeOptions bad_topology = BaseOptions();
  bad_topology.topology = ServeTopology{0, 2};
  std::string error;
  EXPECT_FALSE(ServeDaemon(bad_topology).Init(&error));
  EXPECT_EQ(error, "invalid topology");

  ServeOptions no_root = BaseOptions();
  no_root.root.clear();
  EXPECT_FALSE(ServeDaemon(no_root).Init(&error));
  EXPECT_EQ(error, "serve root directory required");
}

TEST_F(ServeDaemonTest, DrainedFleetReportMatchesTheOneStreamOracle) {
  ServeDaemon daemon(BaseOptions());
  std::string error;
  ASSERT_TRUE(daemon.Init(&error)) << error;
  EXPECT_FALSE(daemon.Ready());
  EXPECT_EQ(daemon.Drain(), 0u);  // every node dir exists and is readable
  EXPECT_TRUE(daemon.Ready());
  EXPECT_TRUE(daemon.Quiesced());
  EXPECT_EQ(daemon.FleetReport(), OracleReport(BaseOptions()));
}

TEST_F(ServeDaemonTest, RackAndNodeReportsAreBoundsChecked) {
  ServeDaemon daemon(BaseOptions());
  std::string error;
  ASSERT_TRUE(daemon.Init(&error)) << error;
  daemon.PollAll();

  EXPECT_TRUE(daemon.RackReport(0).has_value());
  EXPECT_TRUE(daemon.RackReport(1).has_value());
  EXPECT_FALSE(daemon.RackReport(2).has_value());
  EXPECT_FALSE(daemon.RackReport(-1).has_value());
  EXPECT_TRUE(daemon.NodeReport(3).has_value());
  EXPECT_FALSE(daemon.NodeReport(4).has_value());
  EXPECT_FALSE(daemon.NodeReport(-1).has_value());
}

TEST_F(ServeDaemonTest, StatsJsonTracksReadinessAndDelivery) {
  ServeDaemon daemon(BaseOptions());
  std::string error;
  ASSERT_TRUE(daemon.Init(&error)) << error;

  std::string stats = daemon.StatsJson();
  EXPECT_NE(stats.find("\"nodes\": 4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"racks\": 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"ready\": false"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"quiesced\": false"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"delivered\": 0"), std::string::npos) << stats;

  EXPECT_EQ(daemon.Drain(), 0u);
  stats = daemon.StatsJson();
  EXPECT_NE(stats.find("\"ready\": true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"quiesced\": true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"missing_primary\": 0"), std::string::npos) << stats;
  EXPECT_EQ(stats.find("\"delivered\": 0"), std::string::npos) << stats;
  EXPECT_EQ(stats.back(), '\n');
}

TEST_F(ServeDaemonTest, HandlerRoutesTheWholeHttpSurface) {
  ServeDaemon daemon(BaseOptions());
  std::string error;
  ASSERT_TRUE(daemon.Init(&error)) << error;
  HttpServer server;
  ASSERT_TRUE(server.Start(MakeDaemonHandler(daemon)));
  const auto get = [&](const std::string& path) {
    auto result = HttpFetch("127.0.0.1", server.Port(), "GET", path);
    EXPECT_TRUE(result.has_value()) << path;
    return result.value_or(HttpResult{});
  };

  // Not ready yet: health says starting, with the conventional 503.
  auto health = get("/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_EQ(health.body, "starting\n");

  daemon.Drain();
  health = get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  EXPECT_EQ(get("/fleet/report").body, daemon.FleetReport());
  EXPECT_EQ(get("/rack/1/report").body, daemon.RackReport(1).value());
  EXPECT_EQ(get("/node/2/report").body, daemon.NodeReport(2).value());

  auto missing_rack = get("/rack/9/report");
  EXPECT_EQ(missing_rack.status, 404);
  EXPECT_EQ(missing_rack.body, "no such rack\n");
  EXPECT_EQ(get("/node/99/report").status, 404);
  EXPECT_EQ(get("/rack/x/report").status, 404);  // non-numeric id
  auto unknown = get("/nonsense");
  EXPECT_EQ(unknown.status, 404);
  EXPECT_EQ(unknown.body, "unknown endpoint\n");

  EXPECT_NE(get("/alerts").body.find("\"published\":"), std::string::npos);
  EXPECT_NE(get("/stats").body.find("\"data_generation\":"),
            std::string::npos);

  const auto post = HttpFetch("127.0.0.1", server.Port(), "POST", "/healthz");
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->status, 405);

  server.Stop();
}

TEST_F(ServeDaemonTest, LiveServingQuiescesToTheBatchReport) {
  ServeOptions options = BaseOptions();
  options.poll_ms = 10;
  options.merge_ms = 20;
  options.quiesce_ms = 60;
  options.pollers = 2;
  options.checkpoint_dir = base_ + "/ckp";
  options.checkpoint_every_merges = 1;

  ServeDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Init(&error)) << error;
  ASSERT_TRUE(daemon.StartServing());
  // Bounded wait: once every stream has idled past quiesce_ms the merger
  // drains the fleet and reports turn final.
  for (int i = 0; i < 500 && !daemon.Quiesced(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(daemon.Quiesced());
  EXPECT_EQ(daemon.FleetReport(), OracleReport(options));
  daemon.StopServing();
  daemon.StopServing();  // idempotent

  // The merge cadence checkpointed at least once: the manifest exists and a
  // fresh daemon restores from it to the identical final report.
  ASSERT_TRUE(
      std::filesystem::exists(options.checkpoint_dir + "/manifest.ckp"));
  ServeDaemon restored(options);
  ASSERT_TRUE(restored.Init(&error)) << error;
  EXPECT_EQ(restored.Drain(), 0u);
  EXPECT_EQ(restored.FleetReport(), OracleReport(options));
}

TEST_F(ServeDaemonTest, CheckpointRoundTripsAcrossDaemonInstances) {
  ServeOptions options = BaseOptions();
  options.checkpoint_dir = base_ + "/ckp";

  ServeDaemon first(options);
  std::string error;
  ASSERT_TRUE(first.Init(&error)) << error;
  EXPECT_EQ(first.Drain(), 0u);
  const std::string report = first.FleetReport();
  ASSERT_TRUE(first.SaveCheckpoint());

  // The restored daemon reproduces the report WITHOUT the node logs: the
  // drained cursors make Finish a no-op that never reopens the files.
  std::filesystem::remove_all(root_);
  ServeDaemon second(options);
  ASSERT_TRUE(second.Init(&error)) << error;
  EXPECT_EQ(second.Drain(), 0u);
  EXPECT_EQ(second.FleetReport(), report);
}

TEST_F(ServeDaemonTest, DamagedManifestFailsInitLoudly) {
  ServeOptions options = BaseOptions();
  options.checkpoint_dir = base_ + "/ckp";
  {
    ServeDaemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.Init(&error)) << error;
    daemon.PollAll();
    ASSERT_TRUE(daemon.SaveCheckpoint());
  }
  const std::string manifest = options.checkpoint_dir + "/manifest.ckp";
  auto bytes = ReadFileBytes(manifest);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[30] = static_cast<char>((*bytes)[30] ^ 0x01);  // payload bit flip
  ASSERT_TRUE(WriteFileBytes(manifest, *bytes));

  ServeDaemon damaged(options);
  std::string error;
  EXPECT_FALSE(damaged.Init(&error));
  EXPECT_NE(error.find("checkpoint manifest rejected"), std::string::npos)
      << error;

  // A topology that disagrees with a HEALTHY manifest is refused too.
  std::filesystem::remove(manifest);  // clear the damage, re-save fresh
  {
    ServeDaemon daemon(options);
    ASSERT_TRUE(daemon.Init(&error)) << error;
    daemon.PollAll();
    ASSERT_TRUE(daemon.SaveCheckpoint());
  }
  ServeOptions reshaped = options;
  reshaped.topology = ServeTopology{4, 1};
  ServeDaemon mismatched(reshaped);
  EXPECT_FALSE(mismatched.Init(&error));
  EXPECT_NE(error.find("does not match the serving topology"),
            std::string::npos)
      << error;
}

}  // namespace
}  // namespace astra::serve
