// AlertHub: bounded retention, merged-alert latching with re-arm, JSON
// rendering, and webhook delivery under bounded retry.
#include "serve/alert_hub.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace astra::serve {
namespace {

stream::Alert FleetAlert(std::int64_t at_s, std::uint64_t count) {
  stream::Alert alert;
  alert.kind = stream::Alert::Kind::kFleetCeRate;
  alert.at = SimTime::FromCivil(2019, 6, 15).AddSeconds(at_s);
  alert.node = -1;
  alert.count = count;
  alert.window_seconds = 3600;
  return alert;
}

stream::Alert NodeAlert(std::int64_t at_s, NodeId node, std::uint64_t count) {
  auto alert = FleetAlert(at_s, count);
  alert.kind = stream::Alert::Kind::kNodeCeRate;
  alert.node = node;
  return alert;
}

stream::Alert DueAlert(std::int64_t at_s, NodeId node) {
  auto alert = FleetAlert(at_s, 1);
  alert.kind = stream::Alert::Kind::kDue;
  alert.node = node;
  alert.window_seconds = 0;
  return alert;
}

TEST(AlertHubTest, KindNamesCoverTheVocabulary) {
  EXPECT_EQ(AlertKindName(stream::Alert::Kind::kFleetCeRate), "fleet_ce_rate");
  EXPECT_EQ(AlertKindName(stream::Alert::Kind::kNodeCeRate), "node_ce_rate");
  EXPECT_EQ(AlertKindName(stream::Alert::Kind::kDue), "due");
}

TEST(AlertHubTest, NodeAlertsAreRetainedAndRenderedAsJson) {
  AlertHub hub;
  hub.PublishNode("node-0007", {DueAlert(100, 7)});
  EXPECT_EQ(hub.Published(), 1u);

  const std::string json = hub.JsonSnapshot();
  EXPECT_NE(json.find("\"published\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"scope\": \"node-0007\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"due\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"node\": 7"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST(AlertHubTest, RingDropsOldestBeyondCapacity) {
  AlertHub hub(2);
  hub.PublishNode("node-0000", {DueAlert(1, 0)});
  hub.PublishNode("node-0001", {DueAlert(2, 1)});
  hub.PublishNode("node-0002", {DueAlert(3, 2)});
  EXPECT_EQ(hub.Published(), 3u);

  const std::string json = hub.JsonSnapshot();
  EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos) << json;
  EXPECT_EQ(json.find("node-0000"), std::string::npos) << json;  // evicted
  EXPECT_NE(json.find("node-0001"), std::string::npos) << json;
  EXPECT_NE(json.find("node-0002"), std::string::npos) << json;
}

TEST(AlertHubTest, MergedCrossingsLatchUntilTheySubside) {
  AlertHub hub;
  // Cycle 1 raises the fleet crossing: published once.
  hub.PublishMerged("fleet", {FleetAlert(100, 5)});
  EXPECT_EQ(hub.Published(), 1u);
  // Cycles 2..3 keep raising the same crossing: suppressed by the latch.
  hub.PublishMerged("fleet", {FleetAlert(200, 6)});
  hub.PublishMerged("fleet", {FleetAlert(300, 7)});
  EXPECT_EQ(hub.Published(), 1u);
  // Cycle 4 does not raise it: the latch re-arms.
  hub.PublishMerged("fleet", {});
  // Cycle 5 raises it again: a fresh burst, published.
  hub.PublishMerged("fleet", {FleetAlert(500, 5)});
  EXPECT_EQ(hub.Published(), 2u);
}

TEST(AlertHubTest, MergedLatchesAreScopedPerTreeNodeAndPerKey) {
  AlertHub hub;
  hub.PublishMerged("rack-00", {NodeAlert(100, 3, 4)});
  // Same crossing reported by a DIFFERENT scope is its own latch.
  hub.PublishMerged("fleet", {NodeAlert(100, 3, 4)});
  EXPECT_EQ(hub.Published(), 2u);
  // Different node under the same scope and kind: also its own latch.
  hub.PublishMerged("rack-00", {NodeAlert(120, 3, 5), NodeAlert(120, 9, 4)});
  EXPECT_EQ(hub.Published(), 3u);
  // Node 3 subsided this cycle (absent), node 9 stayed latched.
  hub.PublishMerged("rack-00", {NodeAlert(140, 9, 4)});
  EXPECT_EQ(hub.Published(), 3u);
  hub.PublishMerged("rack-00", {NodeAlert(160, 3, 4), NodeAlert(160, 9, 4)});
  EXPECT_EQ(hub.Published(), 4u);  // node 3 re-fired, node 9 still suppressed
}

TEST(AlertHubTest, WebhookReceivesOneJsonBodyPerAlert) {
  AlertHub hub;
  std::vector<std::string> bodies;
  hub.SetWebhook(
      [&bodies](const std::string& body) {
        bodies.push_back(body);
        return true;
      },
      RetryPolicy::None());
  hub.PublishNode("node-0001", {DueAlert(10, 1), DueAlert(20, 1)});
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_NE(bodies[0].find("\"scope\": \"node-0001\""), std::string::npos);
  EXPECT_NE(bodies[1].find("\"kind\": \"due\""), std::string::npos);
  EXPECT_EQ(hub.WebhookFailures(), 0u);
}

TEST(AlertHubTest, WebhookFailuresAreRetriedThenCounted) {
  AlertHub hub;
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay_ms = 0;
  int calls = 0;
  hub.SetWebhook(
      [&calls](const std::string&) {
        ++calls;
        return false;  // receiver is down for good
      },
      retry);
  hub.PublishNode("node-0002", {DueAlert(10, 2)});
  EXPECT_EQ(calls, 3);  // retried to the attempt budget
  EXPECT_EQ(hub.WebhookFailures(), 1u);
  EXPECT_EQ(hub.Published(), 1u);  // retention is independent of delivery
}

TEST(AlertHubTest, WebhookRecoveryWithinTheBudgetIsNotAFailure) {
  AlertHub hub;
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay_ms = 0;
  int calls = 0;
  hub.SetWebhook(
      [&calls](const std::string&) {
        ++calls;
        return calls >= 2;  // first attempt fails, second lands
      },
      retry);
  hub.PublishNode("node-0003", {DueAlert(10, 3)});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(hub.WebhookFailures(), 0u);
}

TEST(AlertHubTest, ScopeStringsAreJsonEscaped) {
  const ScopedAlert entry{"bad\"scope\\with\ncontrol", DueAlert(1, 4)};
  const std::string json = ScopedAlertJson(entry);
  EXPECT_NE(json.find("bad\\\"scope\\\\with\\ncontrol"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace astra::serve
