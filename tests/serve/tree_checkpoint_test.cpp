// Tree checkpoint manifest: naming, roundtrip, every envelope rejection
// path byte-by-byte, and the stale-generation sweep.
#include "serve/tree_checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "util/file_io.hpp"

namespace astra::serve {
namespace {

using stream::CheckpointStatus;

class TreeCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_tree_checkpoint_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string ManifestPath() const {
    return dir_ + "/" + std::string(kManifestFileName);
  }

  [[nodiscard]] TreeManifest SmallManifest() const {
    TreeManifest manifest;
    manifest.generation = 12;
    manifest.topology = ServeTopology{2, 3};
    for (int node = 0; node < manifest.topology.NodeCount(); ++node) {
      manifest.node_files.push_back(NodeCheckpointName(node, 12));
    }
    return manifest;
  }

  // Save SmallManifest, then corrupt the file through `mutate` and reload.
  [[nodiscard]] CheckpointStatus ReloadAfter(
      const std::function<void(std::string&)>& mutate) {
    EXPECT_EQ(SaveTreeManifest(SmallManifest(), dir_, RetryPolicy::None()),
              CheckpointStatus::kOk);
    auto bytes = ReadFileBytes(ManifestPath());
    EXPECT_TRUE(bytes.has_value());
    mutate(*bytes);
    EXPECT_TRUE(WriteFileBytes(ManifestPath(), *bytes));
    TreeManifest loaded;
    return LoadTreeManifest(loaded, dir_, RetryPolicy::None());
  }

  std::string dir_;
};

TEST_F(TreeCheckpointTest, NodeCheckpointNamesCarryNodeAndGeneration) {
  EXPECT_EQ(NodeCheckpointName(7, 12), "node-0007.g12.ckp");
  EXPECT_EQ(NodeCheckpointName(0, 1), "node-0000.g1.ckp");
  EXPECT_EQ(NodeCheckpointName(2591, 100), "node-2591.g100.ckp");
}

TEST_F(TreeCheckpointTest, ManifestRoundTripsExactly) {
  const TreeManifest saved = SmallManifest();
  ASSERT_EQ(SaveTreeManifest(saved, dir_, RetryPolicy::None()),
            CheckpointStatus::kOk);

  TreeManifest loaded;
  ASSERT_EQ(LoadTreeManifest(loaded, dir_, RetryPolicy::None()),
            CheckpointStatus::kOk);
  EXPECT_EQ(loaded.generation, 12u);
  EXPECT_EQ(loaded.topology.racks, 2);
  EXPECT_EQ(loaded.topology.nodes_per_rack, 3);
  EXPECT_EQ(loaded.node_files, saved.node_files);
}

TEST_F(TreeCheckpointTest, MissingManifestIsAnIoError) {
  TreeManifest loaded;
  loaded.generation = 99;
  EXPECT_EQ(LoadTreeManifest(loaded, dir_, RetryPolicy::None()),
            CheckpointStatus::kIoError);
  EXPECT_EQ(loaded.generation, 0u);  // reset, not half-loaded
}

TEST_F(TreeCheckpointTest, WrongMagicIsRejected) {
  EXPECT_EQ(ReloadAfter([](std::string& bytes) { bytes[0] = 'X'; }),
            CheckpointStatus::kBadMagic);
}

TEST_F(TreeCheckpointTest, UnknownVersionIsRejected) {
  // The format version is the u32 at offset 8, right after the magic.
  EXPECT_EQ(ReloadAfter([](std::string& bytes) { bytes[8] = 99; }),
            CheckpointStatus::kBadVersion);
}

TEST_F(TreeCheckpointTest, TruncationAnywhereIsDetected) {
  EXPECT_EQ(ReloadAfter([](std::string& bytes) { bytes.resize(4); }),
            CheckpointStatus::kTruncated);  // shorter than the magic
  EXPECT_EQ(ReloadAfter([](std::string& bytes) { bytes.resize(20); }),
            CheckpointStatus::kTruncated);  // header cut mid-field
  EXPECT_EQ(
      ReloadAfter([](std::string& bytes) { bytes.resize(bytes.size() - 3); }),
      CheckpointStatus::kTruncated);  // payload shorter than declared
}

TEST_F(TreeCheckpointTest, PayloadCorruptionFailsTheChecksum) {
  // Offset 24 is the first payload byte; the CRC covers all of them.
  EXPECT_EQ(
      ReloadAfter([](std::string& bytes) {
        bytes[30] = static_cast<char>(bytes[30] ^ 0x40);
      }),
      CheckpointStatus::kBadCrc);
}

TEST_F(TreeCheckpointTest, TrailingGarbageIsABadPayload) {
  EXPECT_EQ(ReloadAfter([](std::string& bytes) { bytes += "extra"; }),
            CheckpointStatus::kBadPayload);
}

TEST_F(TreeCheckpointTest, FileCountMustMatchTheTopology) {
  TreeManifest short_manifest = SmallManifest();
  short_manifest.node_files.pop_back();  // 5 files for a 6-node topology
  ASSERT_EQ(SaveTreeManifest(short_manifest, dir_, RetryPolicy::None()),
            CheckpointStatus::kOk);
  TreeManifest loaded;
  EXPECT_EQ(LoadTreeManifest(loaded, dir_, RetryPolicy::None()),
            CheckpointStatus::kBadPayload);
}

TEST_F(TreeCheckpointTest, PathTraversalInFileNamesIsRejected) {
  TreeManifest hostile = SmallManifest();
  hostile.node_files[0] = "../outside/node-0000.g12.ckp";
  ASSERT_EQ(SaveTreeManifest(hostile, dir_, RetryPolicy::None()),
            CheckpointStatus::kOk);
  TreeManifest loaded;
  EXPECT_EQ(LoadTreeManifest(loaded, dir_, RetryPolicy::None()),
            CheckpointStatus::kBadPayload);
}

TEST_F(TreeCheckpointTest, SweepRemovesOtherGenerationsAndEveryTmp) {
  const std::vector<std::string> keep = {
      "node-0000.g2.ckp", "node-0001.g2.ckp",
      "manifest.ckp",        // not a node file: never swept
      "memory_errors.tsv",   // unrelated file: never swept
  };
  const std::vector<std::string> sweep = {
      "node-0000.g1.ckp",      // stale generation
      "node-0001.g1.ckp",      //
      "node-0002.g2.ckp.tmp",  // crashed save sidecar, even for the kept gen
  };
  for (const auto& name : keep) ASSERT_TRUE(WriteFileBytes(dir_ + "/" + name, "x"));
  for (const auto& name : sweep) ASSERT_TRUE(WriteFileBytes(dir_ + "/" + name, "x"));

  EXPECT_EQ(SweepStaleGenerations(dir_, 2), sweep.size());
  for (const auto& name : keep) {
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + name)) << name;
  }
  for (const auto& name : sweep) {
    EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + name)) << name;
  }
}

TEST_F(TreeCheckpointTest, SweepOnAMissingDirectoryIsHarmless) {
  EXPECT_EQ(SweepStaleGenerations(dir_ + "/no_such_subdir", 1), 0u);
}

}  // namespace
}  // namespace astra::serve
