// The serve determinism suite: the fleet report merged from K node streams
// is byte-identical to the report over the concatenated logs for K in
// {1, 4, 36}, rack views match rack-filtered analysis, config mismatches
// are refused, and a mid-serve checkpoint/restore lands on the same bytes.
#include "serve/merge_tree.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faultsim/fleet.hpp"
#include "serve/fleet_dataset.hpp"
#include "serve/topology.hpp"
#include "serve/tree_checkpoint.hpp"
#include "stream/checkpoint.hpp"
#include "stream/monitor.hpp"

namespace astra::serve {
namespace {

// One deterministic 36-node campaign shared by every test in the suite.
const faultsim::CampaignResult& Campaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.seed = 20220622;
    config.node_count = 36;
    config.SeedFrom(config.seed);
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

stream::MonitorConfig TestMonitorConfig() {
  stream::MonitorConfig config;
  config.alerts.window_seconds = 3600;
  config.alerts.fleet_ce_threshold = 4;
  config.alerts.node_ce_threshold = 2;
  return config;
}

core::EngineSetConfig TestEngineConfig() {
  core::EngineSetConfig config;
  config.predictor = TestMonitorConfig().predictor;
  return config;
}

// Finish one monitor per node directory under `root` and sample each.
std::vector<NodeSample> DrainFleet(const std::string& root, int nodes,
                                   const stream::MonitorConfig& config) {
  std::vector<NodeSample> samples;
  samples.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    stream::StreamMonitor monitor(
        core::DatasetPaths::InDirectory(NodeDir(root, node)), config);
    EXPECT_NE(monitor.Finish(), stream::MonitorStatus::kMissingPrimary);
    samples.push_back(SampleMonitor(monitor));
  }
  return samples;
}

std::string RenderSamples(std::vector<NodeSample> samples,
                          const stream::MonitorConfig& config) {
  const auto view =
      MergeSamples(TestEngineConfig(), config.alerts, samples);
  EXPECT_TRUE(view.has_value());
  if (!view) return {};
  std::ostringstream out;
  RenderMergedReport(out, config.policy, *view);
  return out.str();
}

class MergeTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "astra_merge_tree_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  // The parity oracle: everything in one stream (K = 1).
  [[nodiscard]] std::string CombinedReport(
      const faultsim::CampaignResult& result,
      const stream::MonitorConfig& config) {
    const std::string dir = root_ + "/combined";
    EXPECT_TRUE(WriteCombinedDataset(result, dir));
    stream::StreamMonitor monitor(core::DatasetPaths::InDirectory(dir),
                                  config);
    EXPECT_NE(monitor.Finish(), stream::MonitorStatus::kMissingPrimary);
    std::vector<NodeSample> sample;
    sample.push_back(SampleMonitor(monitor));
    return RenderSamples(std::move(sample), config);
  }

  std::string root_;
};

TEST_F(MergeTreeTest, FleetReportIsByteIdenticalForOneFourAndThirtySixStreams) {
  const auto config = TestMonitorConfig();
  const std::string oracle = CombinedReport(Campaign(), config);
  ASSERT_FALSE(oracle.empty());
  ASSERT_NE(oracle.find("ingest"), std::string::npos) << oracle;

  const std::vector<ServeTopology> shapes = {{1, 1}, {2, 2}, {6, 6}};
  for (const auto& topology : shapes) {
    const std::string fleet_root =
        root_ + "/k" + std::to_string(topology.NodeCount());
    ASSERT_TRUE(WriteFleetDataset(Campaign(), fleet_root, topology));
    const std::string merged = RenderSamples(
        DrainFleet(fleet_root, topology.NodeCount(), config), config);
    EXPECT_EQ(merged, oracle) << "K=" << topology.NodeCount();
  }
}

TEST_F(MergeTreeTest, RackViewMatchesRackFilteredAnalysis) {
  const auto config = TestMonitorConfig();
  const ServeTopology topology{6, 6};
  const std::string fleet_root = root_ + "/fleet";
  ASSERT_TRUE(WriteFleetDataset(Campaign(), fleet_root, topology));
  auto samples = DrainFleet(fleet_root, topology.NodeCount(), config);

  for (const int rack : {0, 3, 5}) {
    std::vector<NodeSample> rack_samples(
        samples.begin() + topology.RackBegin(rack),
        samples.begin() + topology.RackBegin(rack) + topology.nodes_per_rack);
    const std::string merged = RenderSamples(std::move(rack_samples), config);

    // Oracle: the campaign filtered to this rack's node ids, one stream.
    faultsim::CampaignResult filtered;
    for (const auto& record : Campaign().memory_errors) {
      const int index = static_cast<int>(record.node) % topology.NodeCount();
      if (topology.RackOf(index) == rack) filtered.memory_errors.push_back(record);
    }
    for (const auto& record : Campaign().het_records) {
      const int index = static_cast<int>(record.node) % topology.NodeCount();
      if (topology.RackOf(index) == rack) filtered.het_records.push_back(record);
    }
    const std::string sub_root = root_ + "/rack" + std::to_string(rack);
    std::filesystem::create_directories(sub_root);
    EXPECT_TRUE(WriteCombinedDataset(filtered, sub_root + "/combined"));
    stream::StreamMonitor oracle_monitor(
        core::DatasetPaths::InDirectory(sub_root + "/combined"), config);
    EXPECT_NE(oracle_monitor.Finish(), stream::MonitorStatus::kMissingPrimary);
    std::vector<NodeSample> oracle_sample;
    oracle_sample.push_back(SampleMonitor(oracle_monitor));
    EXPECT_EQ(merged, RenderSamples(std::move(oracle_sample), config))
        << "rack " << rack;
  }
}

TEST_F(MergeTreeTest, ConfigMismatchesAreRefusedNotMisreported) {
  const auto config = TestMonitorConfig();
  const ServeTopology topology{2, 2};
  const std::string fleet_root = root_ + "/fleet";
  ASSERT_TRUE(WriteFleetDataset(Campaign(), fleet_root, topology));
  const auto samples = DrainFleet(fleet_root, topology.NodeCount(), config);

  stream::AlertConfig other_alerts = config.alerts;
  other_alerts.fleet_ce_threshold += 1;
  EXPECT_FALSE(MergeSamples(TestEngineConfig(), other_alerts, samples)
                   .has_value());

  core::EngineSetConfig other_engines = TestEngineConfig();
  other_engines.predictor.ce_count_threshold += 1;
  EXPECT_FALSE(
      MergeSamples(other_engines, config.alerts, samples).has_value());
}

TEST_F(MergeTreeTest, MidServeCheckpointRestoreLandsOnTheSameBytes) {
  const auto config = TestMonitorConfig();
  const ServeTopology topology{2, 2};
  const std::string fleet_root = root_ + "/fleet";
  const std::string ckp_dir = root_ + "/ckp";
  ASSERT_TRUE(WriteFleetDataset(Campaign(), fleet_root, topology));
  std::filesystem::create_directories(ckp_dir);

  // Poll (not Finish): the reorder window keeps the newest records pending
  // inside each reader, so the checkpoint captures genuinely mid-stream
  // state — cursors, pending heaps, engines, alert latches.
  std::vector<std::unique_ptr<stream::StreamMonitor>> live;
  for (int node = 0; node < topology.NodeCount(); ++node) {
    live.push_back(std::make_unique<stream::StreamMonitor>(
        core::DatasetPaths::InDirectory(NodeDir(fleet_root, node)), config));
    EXPECT_NE(live.back()->Poll(), stream::MonitorStatus::kMissingPrimary);
    const std::string path =
        ckp_dir + "/" + NodeCheckpointName(node, 1);
    ASSERT_EQ(stream::SaveMonitorCheckpoint(*live.back(), path),
              stream::CheckpointStatus::kOk);
  }

  std::vector<NodeSample> restored_samples;
  for (int node = 0; node < topology.NodeCount(); ++node) {
    stream::StreamMonitor restored(
        core::DatasetPaths::InDirectory(NodeDir(fleet_root, node)), config);
    ASSERT_EQ(stream::RestoreMonitorCheckpoint(
                  restored, ckp_dir + "/" + NodeCheckpointName(node, 1)),
              stream::CheckpointStatus::kOk);
    EXPECT_NE(restored.Finish(), stream::MonitorStatus::kMissingPrimary);
    restored_samples.push_back(SampleMonitor(restored));
  }
  const std::string restored_report =
      RenderSamples(std::move(restored_samples), config);

  std::vector<NodeSample> live_samples;
  for (auto& monitor : live) {
    EXPECT_NE(monitor->Finish(), stream::MonitorStatus::kMissingPrimary);
    live_samples.push_back(SampleMonitor(*monitor));
  }
  EXPECT_EQ(restored_report, RenderSamples(std::move(live_samples), config));
  EXPECT_EQ(restored_report, CombinedReport(Campaign(), config));
}

}  // namespace
}  // namespace astra::serve
