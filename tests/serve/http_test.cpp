// Embedded HTTP server + client: request routing, status propagation, POST
// bodies, concurrent clients, URL parsing, and idempotent shutdown.
#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace astra::serve {
namespace {

HttpHandler EchoHandler() {
  return [](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/missing") {
      response.status = 404;
      response.body = "gone\n";
      return response;
    }
    response.body = request.method + " " + request.path;
    if (!request.body.empty()) response.body += " body=" + request.body;
    return response;
  };
}

TEST(HttpServerTest, ServesGetWithKernelAssignedPort) {
  HttpServer server;
  ASSERT_TRUE(server.Start(EchoHandler()));
  ASSERT_TRUE(server.Running());
  ASSERT_NE(server.Port(), 0);

  const auto result = HttpFetch("127.0.0.1", server.Port(), "GET", "/healthz");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "GET /healthz");
  server.Stop();
  EXPECT_FALSE(server.Running());
}

TEST(HttpServerTest, PropagatesHandlerStatusAndBody) {
  HttpServer server;
  ASSERT_TRUE(server.Start(EchoHandler()));
  const auto result = HttpFetch("127.0.0.1", server.Port(), "GET", "/missing");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 404);
  EXPECT_EQ(result->body, "gone\n");
}

TEST(HttpServerTest, PostBodyReachesTheHandlerIntact) {
  HttpServer server;
  ASSERT_TRUE(server.Start(EchoHandler()));
  const auto result = HttpFetch("127.0.0.1", server.Port(), "POST", "/hook",
                                "{\"kind\": \"due\"}");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "POST /hook body={\"kind\": \"due\"}");
}

TEST(HttpServerTest, ConcurrentClientsAllGetTheirOwnAnswer) {
  HttpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, 4));
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&, i] {
      const std::string path = "/client/" + std::to_string(i);
      const auto result = HttpFetch("127.0.0.1", server.Port(), "GET", path);
      if (result && result->status == 200 && result->body == "GET " + path) {
        correct.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(correct.load(), 16);
  EXPECT_EQ(server.RequestsServed(), 16u);
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  ASSERT_TRUE(server.Start(EchoHandler()));
  server.Stop();
  server.Stop();  // second stop is a no-op
  ASSERT_TRUE(server.Start(EchoHandler()));
  const auto result = HttpFetch("127.0.0.1", server.Port(), "GET", "/again");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);
}

TEST(HttpClientTest, FetchAgainstNothingFailsCleanly) {
  // Bind-then-close gives a port with (almost certainly) no listener.
  std::uint16_t dead_port = 0;
  {
    HttpServer probe;
    ASSERT_TRUE(probe.Start(EchoHandler()));
    dead_port = probe.Port();
  }
  const auto result = HttpFetch("127.0.0.1", dead_port, "GET", "/", {}, 500);
  EXPECT_FALSE(result.has_value());
}

TEST(HttpUrlTest, ParsesWithAndWithoutSchemeAndPath) {
  const auto full = ParseHttpUrl("http://127.0.0.1:8080/alerts");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "127.0.0.1");
  EXPECT_EQ(full->port, 8080);
  EXPECT_EQ(full->path, "/alerts");

  const auto bare = ParseHttpUrl("localhost:9090");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");  // localhost normalized for the client
  EXPECT_EQ(bare->port, 9090);
  EXPECT_EQ(bare->path, "/");
}

TEST(HttpUrlTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpUrl("").has_value());
  EXPECT_FALSE(ParseHttpUrl("http://hostonly/path").has_value());  // no port
  EXPECT_FALSE(ParseHttpUrl("host:notaport/x").has_value());
  EXPECT_FALSE(ParseHttpUrl("host:99999/x").has_value());  // port overflow
}

}  // namespace
}  // namespace astra::serve
