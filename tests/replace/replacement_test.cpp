#include "replace/replacement_sim.hpp"

#include <gtest/gtest.h>

namespace astra::replace {
namespace {

TEST(ComponentHazardTest, ExpectedTotalIntegrates) {
  ComponentHazard hazard;
  hazard.infant_total = 100.0;
  hazard.infant_tau_days = 10.0;
  hazard.baseline_per_day = 2.0;
  hazard.waves = {{50.0, 5.0, 30.0}};
  const double total = hazard.ExpectedTotal(200.0);
  // infant ~100 (tau << horizon), baseline 400, wave ~30.
  EXPECT_NEAR(total, 530.0, 2.0);
  // Numerical cross-check: summing daily rates matches the closed form.
  double daily_sum = 0.0;
  for (int d = 0; d < 200; ++d) daily_sum += hazard.ExpectedOnDay(d + 0.5);
  EXPECT_NEAR(daily_sum, total, 5.0);
}

TEST(ComponentHazardTest, InfantMortalityDecays) {
  ComponentHazard hazard;
  hazard.infant_total = 100.0;
  hazard.infant_tau_days = 10.0;
  EXPECT_GT(hazard.ExpectedOnDay(0.0), hazard.ExpectedOnDay(20.0));
  EXPECT_GT(hazard.ExpectedOnDay(20.0), hazard.ExpectedOnDay(60.0));
}

TEST(AstraDefaultsTest, Table1TotalsReproduced) {
  const ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  const double days = config.tracking.DurationDays();
  // Table 1: 836 processors, 46 motherboards, 1515 DIMMs.
  EXPECT_NEAR(config.hazards[static_cast<int>(logs::ComponentKind::kProcessor)]
                  .ExpectedTotal(days),
              836.0, 30.0);
  EXPECT_NEAR(config.hazards[static_cast<int>(logs::ComponentKind::kMotherboard)]
                  .ExpectedTotal(days),
              46.0, 4.0);
  EXPECT_NEAR(config.hazards[static_cast<int>(logs::ComponentKind::kDimm)]
                  .ExpectedTotal(days),
              1515.0, 50.0);
}

TEST(ReplacementSimulatorTest, FullScaleRunLandsOnTable1) {
  const ReplacementSimulator simulator(ReplacementSimConfig::AstraDefaults());
  const ReplacementCampaign campaign = simulator.Run();
  const auto procs = campaign.CountOfKind(logs::ComponentKind::kProcessor);
  const auto mbs = campaign.CountOfKind(logs::ComponentKind::kMotherboard);
  const auto dimms = campaign.CountOfKind(logs::ComponentKind::kDimm);
  EXPECT_NEAR(static_cast<double>(procs), 836.0, 120.0);
  EXPECT_NEAR(static_cast<double>(mbs), 46.0, 25.0);
  EXPECT_NEAR(static_cast<double>(dimms), 1515.0, 160.0);
}

TEST(ReplacementSimulatorTest, Deterministic) {
  const ReplacementSimulator simulator(ReplacementSimConfig::AstraDefaults());
  const ReplacementCampaign a = simulator.Run();
  const ReplacementCampaign b = simulator.Run();
  EXPECT_EQ(a.events, b.events);
}

TEST(ReplacementSimulatorTest, EventsSortedAndInWindow) {
  ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  config.node_count = 400;
  const ReplacementSimulator simulator(config);
  const ReplacementCampaign campaign = simulator.Run();
  for (std::size_t i = 0; i < campaign.events.size(); ++i) {
    const auto& event = campaign.events[i];
    EXPECT_GE(event.day, config.tracking.begin);
    EXPECT_LT(event.day, config.tracking.end);
    EXPECT_LT(event.site.node, config.node_count);
    if (i > 0) EXPECT_LE(campaign.events[i - 1].day, event.day);
  }
}

TEST(ReplacementSimulatorTest, SerialChangesExactlyAtReplacement) {
  ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  config.node_count = 300;
  const ReplacementSimulator simulator(config);
  const ReplacementCampaign campaign = simulator.Run();
  ASSERT_FALSE(campaign.events.empty());
  const ReplacementEvent& event = campaign.events.front();
  const std::uint64_t before =
      simulator.SerialAt(campaign, event.site, event.day.AddDays(-1));
  const std::uint64_t after = simulator.SerialAt(campaign, event.site, event.day);
  EXPECT_NE(before, after);
}

TEST(ReplacementSimulatorTest, SnapshotCoversAllSites) {
  ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  config.node_count = 10;
  const ReplacementSimulator simulator(config);
  const ReplacementCampaign campaign = simulator.Run();
  const auto snapshot = simulator.SnapshotAt(campaign, config.tracking.begin);
  // 2 processors + 1 motherboard + 16 DIMMs per node.
  EXPECT_EQ(snapshot.size(), 10u * 19);
  for (const auto& record : snapshot) EXPECT_NE(record.serial, 0u);
}

TEST(DiffSnapshotsTest, RecoversInjectedReplacements) {
  ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  config.node_count = 500;
  const ReplacementSimulator simulator(config);
  const ReplacementCampaign campaign = simulator.Run();

  // Diff consecutive daily snapshots over a slice of the campaign and check
  // the recovered events match the ground truth for those days.
  const SimTime day0 = config.tracking.begin.AddDays(10);
  for (int d = 0; d < 5; ++d) {
    const SimTime before = day0.AddDays(d - 1);
    const SimTime after = day0.AddDays(d);
    const auto earlier = simulator.SnapshotAt(campaign, before);
    const auto later = simulator.SnapshotAt(campaign, after);
    const auto recovered = DiffSnapshots(earlier, later);
    std::size_t truth = 0;
    for (const auto& event : campaign.events) {
      if (event.day == after) ++truth;
    }
    EXPECT_EQ(recovered.size(), truth) << "day " << after.ToDateString();
  }
}

TEST(DiffSnapshotsTest, IdenticalSnapshotsNoEvents) {
  ReplacementSimConfig config = ReplacementSimConfig::AstraDefaults();
  config.node_count = 5;
  const ReplacementSimulator simulator(config);
  const ReplacementCampaign campaign = simulator.Run();
  const auto snapshot = simulator.SnapshotAt(campaign, config.tracking.begin);
  EXPECT_TRUE(DiffSnapshots(snapshot, snapshot).empty());
}

TEST(ReplacementCampaignTest, NoDuplicateSameDaySameSite) {
  const ReplacementSimulator simulator(ReplacementSimConfig::AstraDefaults());
  const ReplacementCampaign campaign = simulator.Run();
  for (std::size_t i = 1; i < campaign.events.size(); ++i) {
    const bool duplicate = campaign.events[i] == campaign.events[i - 1];
    EXPECT_FALSE(duplicate);
  }
}

}  // namespace
}  // namespace astra::replace
