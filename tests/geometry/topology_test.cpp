#include "geometry/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace astra {
namespace {

TEST(TopologyConstantsTest, PaperPopulations) {
  // §2.2 / Table 1 denominators.
  EXPECT_EQ(kNumNodes, 2592);
  EXPECT_EQ(kNumRacks, 36);
  EXPECT_EQ(kNodesPerRack, 72);
  EXPECT_EQ(kNumProcessors, 5184);
  EXPECT_EQ(kNumDimms, 41472);
  EXPECT_EQ(kChassisPerRack, 18);
  EXPECT_EQ(kNodesPerChassis, 4);
}

TEST(TopologyConstantsTest, DramGeometryConsistent) {
  // 16 banks x 32768 rows x 1024 columns x 8 bytes = 4 GiB per rank,
  // two ranks = the 8 GB DIMM of §2.2.
  const std::int64_t bytes_per_rank = static_cast<std::int64_t>(kBanksPerRank) *
                                      kRowsPerBank * kColumnsPerRow * kBytesPerWord;
  EXPECT_EQ(bytes_per_rank * kRanksPerDimm, 8LL << 30);
  EXPECT_EQ(kCodeBitsPerWord, 72);
  EXPECT_EQ(kDataBitsPerWord + kCheckBitsPerWord, kCodeBitsPerWord);
}

TEST(NodeLocationTest, RoundTripAllNodes) {
  for (NodeId node = 0; node < kNumNodes; ++node) {
    const NodeLocation loc = LocateNode(node);
    EXPECT_GE(loc.rack, 0);
    EXPECT_LT(loc.rack, kNumRacks);
    EXPECT_GE(loc.chassis, 0);
    EXPECT_LT(loc.chassis, kChassisPerRack);
    EXPECT_GE(loc.slot_in_chassis, 0);
    EXPECT_LT(loc.slot_in_chassis, kNodesPerChassis);
    EXPECT_EQ(NodeIdOf(loc), node);
  }
}

TEST(NodeLocationTest, KnownPlacements) {
  EXPECT_EQ(LocateNode(0), (NodeLocation{0, 0, 0}));
  EXPECT_EQ(LocateNode(71), (NodeLocation{0, 17, 3}));
  EXPECT_EQ(LocateNode(72), (NodeLocation{1, 0, 0}));
  EXPECT_EQ(LocateNode(kNumNodes - 1), (NodeLocation{35, 17, 3}));
}

TEST(RackRegionTest, ThreeEqualRegions) {
  int counts[kRackRegionCount] = {0, 0, 0};
  for (int chassis = 0; chassis < kChassisPerRack; ++chassis) {
    ++counts[static_cast<int>(RegionOfChassis(chassis))];
  }
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 6);
  EXPECT_EQ(counts[2], 6);
  EXPECT_EQ(RegionOfChassis(0), RackRegion::kBottom);
  EXPECT_EQ(RegionOfChassis(6), RackRegion::kMiddle);
  EXPECT_EQ(RegionOfChassis(17), RackRegion::kTop);
}

TEST(RackRegionTest, Names) {
  EXPECT_EQ(RackRegionName(RackRegion::kBottom), "bottom");
  EXPECT_EQ(RackRegionName(RackRegion::kMiddle), "middle");
  EXPECT_EQ(RackRegionName(RackRegion::kTop), "top");
}

TEST(DimmSlotTest, LetterRoundTrip) {
  for (int i = 0; i < kDimmSlotCount; ++i) {
    const auto slot = static_cast<DimmSlot>(i);
    const char letter = DimmSlotLetter(slot);
    EXPECT_EQ(letter, 'A' + i);
    const auto back = DimmSlotFromLetter(letter);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, slot);
    // Lowercase accepted too.
    EXPECT_EQ(DimmSlotFromLetter(static_cast<char>('a' + i)), slot);
  }
  EXPECT_FALSE(DimmSlotFromLetter('Q').has_value());
  EXPECT_FALSE(DimmSlotFromLetter('0').has_value());
}

TEST(DimmSlotTest, SocketAssignment) {
  // §2.2 / Fig. 7 caption: slots A-H on socket 0, I-P on socket 1.
  for (int i = 0; i < kDimmSlotCount; ++i) {
    const auto slot = static_cast<DimmSlot>(i);
    EXPECT_EQ(SocketOfSlot(slot), i < 8 ? 0 : 1) << DimmSlotLetter(slot);
  }
}

TEST(SensorGroupTest, PaperGrouping) {
  // §2.2: {A,C,E,G}, {H,F,D,B}, {I,K,M,O}, {J,L,N,P}.
  using S = DimmSlot;
  EXPECT_EQ(DimmSensorOfSlot(S::A), SensorKind::kDimmsACEG);
  EXPECT_EQ(DimmSensorOfSlot(S::C), SensorKind::kDimmsACEG);
  EXPECT_EQ(DimmSensorOfSlot(S::E), SensorKind::kDimmsACEG);
  EXPECT_EQ(DimmSensorOfSlot(S::G), SensorKind::kDimmsACEG);
  EXPECT_EQ(DimmSensorOfSlot(S::B), SensorKind::kDimmsHFDB);
  EXPECT_EQ(DimmSensorOfSlot(S::D), SensorKind::kDimmsHFDB);
  EXPECT_EQ(DimmSensorOfSlot(S::F), SensorKind::kDimmsHFDB);
  EXPECT_EQ(DimmSensorOfSlot(S::H), SensorKind::kDimmsHFDB);
  EXPECT_EQ(DimmSensorOfSlot(S::I), SensorKind::kDimmsIKMO);
  EXPECT_EQ(DimmSensorOfSlot(S::K), SensorKind::kDimmsIKMO);
  EXPECT_EQ(DimmSensorOfSlot(S::M), SensorKind::kDimmsIKMO);
  EXPECT_EQ(DimmSensorOfSlot(S::O), SensorKind::kDimmsIKMO);
  EXPECT_EQ(DimmSensorOfSlot(S::J), SensorKind::kDimmsJLNP);
  EXPECT_EQ(DimmSensorOfSlot(S::L), SensorKind::kDimmsJLNP);
  EXPECT_EQ(DimmSensorOfSlot(S::N), SensorKind::kDimmsJLNP);
  EXPECT_EQ(DimmSensorOfSlot(S::P), SensorKind::kDimmsJLNP);
}

TEST(SensorGroupTest, SlotsOfSensorInverse) {
  for (const auto kind : {SensorKind::kDimmsACEG, SensorKind::kDimmsHFDB,
                          SensorKind::kDimmsIKMO, SensorKind::kDimmsJLNP}) {
    for (const DimmSlot slot : SlotsOfDimmSensor(kind)) {
      EXPECT_EQ(DimmSensorOfSlot(slot), kind);
    }
  }
}

TEST(SensorKindTest, NameRoundTrip) {
  for (int i = 0; i < kSensorsPerNode; ++i) {
    const auto kind = static_cast<SensorKind>(i);
    const auto back = SensorKindFromName(SensorKindName(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(SensorKindFromName("bogus").has_value());
}

TEST(AirflowTest, Socket1IsUpstreamOfSocket0) {
  // Paper Fig. 1: CPU2 (socket 1) receives inlet air before CPU1 (socket 0).
  EXPECT_LT(AirflowDepthOfSensor(SensorKind::kCpu1Temp),
            AirflowDepthOfSensor(SensorKind::kCpu0Temp));
  EXPECT_LT(AirflowDepthOfSensor(SensorKind::kDimmsIKMO),
            AirflowDepthOfSensor(SensorKind::kDimmsACEG));
  for (int i = 0; i < kDimmSlotCount; ++i) {
    const auto slot = static_cast<DimmSlot>(i);
    const double depth = AirflowDepthOfSlot(slot);
    EXPECT_GE(depth, 0.0);
    EXPECT_LE(depth, 1.0);
  }
}

TEST(PhysicalAddressTest, RoundTripSweep) {
  for (NodeId node : {0, 100, kNumNodes - 1}) {
    for (int slot_idx : {0, 5, 8, 15}) {
      for (RankId rank = 0; rank < kRanksPerDimm; ++rank) {
        for (BankId bank : {0, 7, 15}) {
          for (RowId row : {0, 12345, kRowsPerBank - 1}) {
            for (ColumnId column : {0, 511, kColumnsPerRow - 1}) {
              DramCoord coord;
              coord.node = node;
              coord.slot = static_cast<DimmSlot>(slot_idx);
              coord.socket = SocketOfSlot(coord.slot);
              coord.rank = rank;
              coord.bank = static_cast<BankId>(bank);
              coord.row = row;
              coord.column = column;
              coord.bit = 0;
              ASSERT_TRUE(IsValid(coord));
              const std::uint64_t addr = EncodePhysicalAddress(coord);
              const DramCoord back = DecodePhysicalAddress(node, addr);
              EXPECT_EQ(back, coord);
            }
          }
        }
      }
    }
  }
}

TEST(PhysicalAddressTest, DistinctCoordsDistinctAddresses) {
  std::set<std::uint64_t> addresses;
  DramCoord coord;
  coord.node = 3;
  for (int slot_idx = 0; slot_idx < kDimmSlotCount; ++slot_idx) {
    coord.slot = static_cast<DimmSlot>(slot_idx);
    coord.socket = SocketOfSlot(coord.slot);
    for (RankId rank = 0; rank < 2; ++rank) {
      coord.rank = rank;
      for (BankId bank = 0; bank < kBanksPerRank; ++bank) {
        coord.bank = bank;
        coord.row = bank * 7;
        coord.column = static_cast<ColumnId>(bank * 3);
        addresses.insert(EncodePhysicalAddress(coord));
      }
    }
  }
  EXPECT_EQ(addresses.size(), 16u * 2 * 16);
}

TEST(IsValidTest, RejectsMismatchedSocket) {
  DramCoord coord;
  coord.node = 1;
  coord.slot = DimmSlot::I;  // socket 1 slot
  coord.socket = 0;          // claimed socket 0
  EXPECT_FALSE(IsValid(coord));
  coord.socket = 1;
  EXPECT_TRUE(IsValid(coord));
}

TEST(GlobalDimmIndexTest, DenseAndUnique) {
  EXPECT_EQ(GlobalDimmIndex(0, DimmSlot::A), 0);
  EXPECT_EQ(GlobalDimmIndex(0, DimmSlot::P), 15);
  EXPECT_EQ(GlobalDimmIndex(1, DimmSlot::A), 16);
  EXPECT_EQ(GlobalDimmIndex(kNumNodes - 1, DimmSlot::P), kNumDimms - 1);
}

}  // namespace
}  // namespace astra
