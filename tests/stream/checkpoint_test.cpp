// Checkpoint fuzzing: a damaged checkpoint — any single corrupted byte, any
// truncation point, any forged envelope — must be REJECTED with a specific
// status, never crash, and never leave the monitor half-restored.
#include "stream/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "util/binio.hpp"
#include "util/file_io.hpp"

namespace astra::stream {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_stream_checkpoint_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    paths_ = core::DatasetPaths::InDirectory(dir_);
    checkpoint_ = dir_ + "/watch.ckpt";

    faultsim::CampaignConfig config;
    config.SeedFrom(5);
    config.node_count = 24;
    const auto campaign = faultsim::FleetSimulator(config).Run();
    ASSERT_TRUE(core::WriteFailureData(paths_, campaign));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A monitor with real state: full streams consumed, analyses populated.
  StreamMonitor FinishedMonitor() {
    StreamMonitor monitor(paths_, MonitorConfig{});
    (void)monitor.Finish();
    return monitor;
  }

  static std::string RenderOf(StreamMonitor& monitor) {
    std::ostringstream out;
    core::RenderAnalysisReport(out, monitor.Artifacts());
    return out.str();
  }

  std::string SavedBytes() {
    StreamMonitor monitor(paths_, MonitorConfig{});
    (void)monitor.Poll();
    EXPECT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);
    const auto bytes = ReadFileBytes(checkpoint_);
    EXPECT_TRUE(bytes.has_value());
    return bytes.value_or("");
  }

  // Restoring `bytes` must fail with `expected` and leave the monitor fresh
  // (zero records delivered, artifacts renderable without crashing).
  void ExpectRejected(const std::string& bytes, CheckpointStatus expected,
                      const std::string& trace) {
    SCOPED_TRACE(trace);
    const std::string mangled = dir_ + "/mangled.ckpt";
    ASSERT_TRUE(WriteFileBytes(mangled, bytes));
    StreamMonitor monitor(paths_, MonitorConfig{});
    EXPECT_EQ(RestoreMonitorCheckpoint(monitor, mangled), expected);
    EXPECT_EQ(monitor.Delivered(), 0u);  // reset, not half-restored
  }

  std::string dir_;
  core::DatasetPaths paths_;
  std::string checkpoint_;
};

TEST_F(CheckpointTest, RoundTripRestoresIdenticalState) {
  auto original = FinishedMonitor();
  ASSERT_EQ(SaveMonitorCheckpoint(original, checkpoint_), CheckpointStatus::kOk);

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_), CheckpointStatus::kOk);
  EXPECT_EQ(restored.Delivered(), original.Delivered());
  EXPECT_EQ(RenderOf(restored), RenderOf(original));
}

TEST_F(CheckpointTest, SaveIsAtomicNoTmpFileLeftBehind) {
  auto monitor = FinishedMonitor();
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);
  EXPECT_TRUE(std::filesystem::exists(checkpoint_));
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  StreamMonitor monitor(paths_, MonitorConfig{});
  EXPECT_EQ(RestoreMonitorCheckpoint(monitor, dir_ + "/nope.ckpt"),
            CheckpointStatus::kIoError);
}

TEST_F(CheckpointTest, BitFlipSweepNeverRestores) {
  const std::string clean = SavedBytes();
  ASSERT_GT(clean.size(), 24u);
  const std::string mangled = dir_ + "/mangled.ckpt";
  // Flip one bit at a stride of positions covering envelope and payload.
  // The specific rejection status depends on which field the flip lands in;
  // what must hold everywhere is: rejected, crash-free, monitor left fresh.
  for (std::size_t at = 0; at < clean.size(); at += 97) {
    std::string flipped = clean;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x04);
    ASSERT_TRUE(WriteFileBytes(mangled, flipped));
    StreamMonitor monitor(paths_, MonitorConfig{});
    const auto status = RestoreMonitorCheckpoint(monitor, mangled);
    EXPECT_NE(status, CheckpointStatus::kOk) << "bit flip at byte " << at;
    EXPECT_EQ(monitor.Delivered(), 0u) << "bit flip at byte " << at;
  }
}

TEST_F(CheckpointTest, TruncationSweepNeverRestores) {
  const std::string clean = SavedBytes();
  ASSERT_GT(clean.size(), 24u);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{8}, std::size_t{12},
        std::size_t{20}, std::size_t{23}, std::size_t{24}, clean.size() / 4,
        clean.size() / 2, clean.size() - 1}) {
    const std::string mangled = dir_ + "/mangled.ckpt";
    ASSERT_TRUE(WriteFileBytes(mangled, clean.substr(0, keep)));
    StreamMonitor monitor(paths_, MonitorConfig{});
    const auto status = RestoreMonitorCheckpoint(monitor, mangled);
    EXPECT_NE(status, CheckpointStatus::kOk) << "kept " << keep << " bytes";
    EXPECT_EQ(monitor.Delivered(), 0u) << "kept " << keep << " bytes";
  }
}

TEST_F(CheckpointTest, TrailingGarbageRejected) {
  const std::string clean = SavedBytes();
  ExpectRejected(clean + "overrun", CheckpointStatus::kBadPayload,
                 "trailing garbage");
}

TEST_F(CheckpointTest, WrongMagicRejected) {
  std::string clean = SavedBytes();
  clean.replace(0, 8, "NOTACKPT");
  ExpectRejected(clean, CheckpointStatus::kBadMagic, "forged magic");
}

TEST_F(CheckpointTest, WrongVersionRejected) {
  std::string clean = SavedBytes();
  clean[8] = static_cast<char>(kCheckpointVersion + 1);  // LE low byte
  // The version mismatch must be reported as such — the message is the
  // operator's cue that a rebuild (not corruption) invalidated the file.
  ExpectRejected(clean, CheckpointStatus::kBadVersion, "future version");
  EXPECT_EQ(CheckpointStatusMessage(CheckpointStatus::kBadVersion),
            "incompatible checkpoint version");
}

TEST_F(CheckpointTest, SavedEnvelopeDeclaresVersionTwo) {
  const std::string clean = SavedBytes();
  ASSERT_GT(clean.size(), 12u);
  binio::Reader header(std::string_view(clean).substr(kCheckpointMagic.size()));
  EXPECT_EQ(header.GetU32(), 2u);
  EXPECT_EQ(kCheckpointVersion, 2u);
}

TEST_F(CheckpointTest, UpgradePathVersionOneEnvelopeRejectedNotDecoded) {
  // The upgrade path for a watcher left over from the pre-engine layout: a
  // structurally perfect v1 checkpoint (magic, declared length, matching
  // CRC) must be rejected as kBadVersion BEFORE any payload decode — v1
  // payload bytes are laid out differently and must never be half-applied.
  // The operator's recovery is a fresh monitor that re-reads the logs, which
  // is exactly the state the reject leaves behind.
  const std::string clean = SavedBytes();
  ASSERT_GT(clean.size(), 24u);
  const std::string v2_payload = clean.substr(24);

  std::string envelope;
  binio::Writer writer(envelope);
  for (const char c : kCheckpointMagic) writer.PutU8(static_cast<std::uint8_t>(c));
  writer.PutU32(1);  // the retired pre-engine format version
  writer.PutU64(v2_payload.size());
  writer.PutU32(binio::Crc32(v2_payload));
  envelope += v2_payload;
  ExpectRejected(envelope, CheckpointStatus::kBadVersion, "v1 envelope");

  // After the reject, a fresh Finish() over the same logs fully recovers.
  StreamMonitor monitor(paths_, MonitorConfig{});
  const std::string v1_path = dir_ + "/v1.ckpt";
  ASSERT_TRUE(WriteFileBytes(v1_path, envelope));
  ASSERT_EQ(RestoreMonitorCheckpoint(monitor, v1_path),
            CheckpointStatus::kBadVersion);
  EXPECT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  auto batch = FinishedMonitor();
  EXPECT_EQ(RenderOf(monitor), RenderOf(batch));
}

TEST_F(CheckpointTest, HostilePayloadWithValidCrcRejected) {
  // An attacker (or a very unlucky disk) can forge a consistent envelope
  // around garbage; the payload decode itself must be the last line of
  // defense — bounded, crash-free rejection.
  const std::string payload(64, '\xFF');
  std::string envelope;
  binio::Writer writer(envelope);
  for (const char c : kCheckpointMagic) writer.PutU8(static_cast<std::uint8_t>(c));
  writer.PutU32(kCheckpointVersion);
  writer.PutU64(payload.size());
  writer.PutU32(binio::Crc32(payload));
  envelope += payload;
  ExpectRejected(envelope, CheckpointStatus::kBadPayload, "forged envelope");
}

TEST_F(CheckpointTest, RemoveStaleCheckpointTmpIsANoOpWhenNothingIsStale) {
  // No tmp file at all: the sweep succeeds without touching anything.
  EXPECT_TRUE(RemoveStaleCheckpointTmp(checkpoint_));
  // And a completed save leaves nothing for the sweep to find.
  auto monitor = FinishedMonitor();
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);
  EXPECT_TRUE(RemoveStaleCheckpointTmp(checkpoint_));
  EXPECT_TRUE(std::filesystem::exists(checkpoint_));
}

TEST_F(CheckpointTest, RemoveStaleCheckpointTmpSweepsACrashLeftover) {
  ASSERT_TRUE(WriteFileBytes(checkpoint_ + ".tmp", "torn half-written state"));
  EXPECT_TRUE(RemoveStaleCheckpointTmp(checkpoint_));
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));
}

TEST_F(CheckpointTest, SaveOverwritesATornTmpFromAPriorCrash) {
  // Even without an explicit sweep, a save must not be confused by a torn
  // sidecar a crashed predecessor left behind: it truncates, writes and
  // atomically renames over it.
  ASSERT_TRUE(WriteFileBytes(checkpoint_ + ".tmp", "torn half-written state"));
  auto monitor = FinishedMonitor();
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderOf(restored), RenderOf(monitor));
}

TEST_F(CheckpointTest, HostileLengthFieldDoesNotOverAllocate) {
  // payload_len claims far more than the file holds: must be kTruncated,
  // and must not attempt a giant allocation on the way.
  std::string envelope;
  binio::Writer writer(envelope);
  for (const char c : kCheckpointMagic) writer.PutU8(static_cast<std::uint8_t>(c));
  writer.PutU32(kCheckpointVersion);
  writer.PutU64(std::uint64_t{1} << 60);
  writer.PutU32(0);
  ExpectRejected(envelope, CheckpointStatus::kTruncated, "hostile length");
}

}  // namespace
}  // namespace astra::stream
