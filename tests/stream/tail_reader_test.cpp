// TailReader: the follow-mode ingest must be indistinguishable from the
// batch hardened reader over the final file bytes — same records in the same
// order and the same accounting — no matter how the file grew (chunked
// appends, torn lines, rotation, late file creation) or where a checkpoint
// split the run.
#include "stream/tail_reader.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "logs/serialize.hpp"

namespace astra::stream {
namespace {

using logs::IngestPolicy;
using logs::IngestReport;
using logs::MemoryErrorRecord;

MemoryErrorRecord MakeRecord(std::int64_t offset_s, NodeId node = 3) {
  MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 6, 15, 12, 0, 0).AddSeconds(offset_s);
  r.node = node;
  r.slot = DimmSlot::C;
  r.socket = SocketOfSlot(r.slot);
  r.rank = 1;
  r.bank = 4;
  r.bit_position = logs::EncodeRecordedBit(17, 2);
  r.physical_address = 0xdeadbeefULL + static_cast<std::uint64_t>(offset_s);
  r.syndrome = 0x1234;
  return r;
}

// Immediate delivery: no re-sort buffer holding records back from the sink.
IngestPolicy NoReorder() {
  IngestPolicy policy;
  policy.reorder_window_seconds = 0;
  return policy;
}

void ExpectReportsEqual(const IngestReport& batch, const IngestReport& tail) {
  EXPECT_EQ(batch.stats.total_lines, tail.stats.total_lines);
  EXPECT_EQ(batch.stats.parsed, tail.stats.parsed);
  EXPECT_EQ(batch.stats.malformed, tail.stats.malformed);
  EXPECT_EQ(batch.malformed_by_reason, tail.malformed_by_reason);
  EXPECT_EQ(batch.duplicates_removed, tail.duplicates_removed);
  EXPECT_EQ(batch.out_of_order_seen, tail.out_of_order_seen);
  EXPECT_EQ(batch.reordered, tail.reordered);
  EXPECT_EQ(batch.order_violations, tail.order_violations);
  EXPECT_EQ(batch.header_remapped, tail.header_remapped);
  EXPECT_EQ(batch.budget_exceeded, tail.budget_exceeded);
  EXPECT_EQ(batch.aborted, tail.aborted);
  EXPECT_EQ(batch.repairs, tail.repairs);
}

class TailReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_tail_reader_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/stream.tsv";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void Append(const std::string& bytes) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << bytes;
  }

  // The whole-file dirty payload: header, parseable records, jitter inside
  // the reorder window, far stragglers, duplicates and malformed lines.
  static std::string DirtyPayload() {
    std::string bytes = std::string(logs::MemoryErrorHeader()) + "\n";
    for (int i = 0; i < 600; ++i) {
      std::int64_t offset = i * 60;
      if (i % 13 == 0) offset -= 300;
      if (i % 211 == 0) offset -= 90000;
      const std::string line = logs::FormatRecord(MakeRecord(offset));
      bytes += line + "\n";
      if (i % 97 == 0) bytes += line + "\n";  // exact duplicate
      if (i % 50 == 0) bytes += "structurally hopeless line\n";
    }
    return bytes;
  }

  // Compare the tail reader's final state against the batch reader over the
  // same final bytes.
  void ExpectMatchesBatch(const std::vector<MemoryErrorRecord>& tailed,
                          const IngestReport& tail_report,
                          const IngestPolicy& policy) {
    IngestReport batch_report;
    const auto batch = logs::IngestAllRecords<MemoryErrorRecord>(path_, policy,
                                                                 &batch_report);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(*batch, tailed);
    ExpectReportsEqual(batch_report, tail_report);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(TailReaderTest, ChunkedGrowthMatchesBatch) {
  const std::string payload = DirtyPayload();
  IngestPolicy policy;
  policy.reorder_window_seconds = 600;
  TailReader<MemoryErrorRecord> reader(path_, policy);
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };

  // Grow the file in awkward chunk sizes so polls routinely see torn lines.
  for (std::size_t at = 0; at < payload.size();) {
    const std::size_t chunk = std::min<std::size_t>(257, payload.size() - at);
    Append(payload.substr(at, chunk));
    at += chunk;
    const TailStatus status = reader.Poll(sink);
    EXPECT_TRUE(status == TailStatus::kAdvanced || status == TailStatus::kIdle);
  }
  reader.Finish(sink);
  ExpectMatchesBatch(tailed, reader.Report(), policy);
}

TEST_F(TailReaderTest, TornLineHeldUntilTerminated) {
  Append(std::string(logs::MemoryErrorHeader()) + "\n");
  const std::string line = logs::FormatRecord(MakeRecord(0));
  Append(line.substr(0, line.size() / 2));

  TailReader<MemoryErrorRecord> reader(path_, NoReorder());
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  ASSERT_EQ(reader.Poll(sink), TailStatus::kAdvanced);  // consumed the header
  EXPECT_TRUE(tailed.empty());
  EXPECT_EQ(reader.Poll(sink), TailStatus::kIdle);  // torn line still pending

  Append(line.substr(line.size() / 2) + "\n");
  EXPECT_EQ(reader.Poll(sink), TailStatus::kAdvanced);
  ASSERT_EQ(tailed.size(), 1u);
  EXPECT_EQ(tailed[0], MakeRecord(0));
}

TEST_F(TailReaderTest, UnterminatedFinalLineConsumedAtFinish) {
  Append(std::string(logs::MemoryErrorHeader()) + "\n" +
         logs::FormatRecord(MakeRecord(0)) + "\n" +
         logs::FormatRecord(MakeRecord(60)));  // no trailing newline

  TailReader<MemoryErrorRecord> reader(path_, NoReorder());
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  (void)reader.Poll(sink);
  EXPECT_EQ(tailed.size(), 1u);  // the torn tail is not delivered by Poll
  reader.Finish(sink);
  ASSERT_EQ(tailed.size(), 2u);  // getline semantics: Finish visits it
  ExpectMatchesBatch(tailed, reader.Report(), NoReorder());
}

TEST_F(TailReaderTest, MissingFileRetriedUntilItAppears) {
  TailReader<MemoryErrorRecord> reader(path_, NoReorder());
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  EXPECT_EQ(reader.Poll(sink), TailStatus::kMissing);
  EXPECT_FALSE(reader.SeenFile());

  Append(std::string(logs::MemoryErrorHeader()) + "\n" +
         logs::FormatRecord(MakeRecord(0)) + "\n");
  EXPECT_EQ(reader.Poll(sink), TailStatus::kAdvanced);
  EXPECT_TRUE(reader.SeenFile());
  EXPECT_EQ(tailed.size(), 1u);
}

TEST_F(TailReaderTest, RotationRestartsFileCursorKeepsAccounting) {
  Append(std::string(logs::MemoryErrorHeader()) + "\n" +
         logs::FormatRecord(MakeRecord(0)) + "\n" +
         logs::FormatRecord(MakeRecord(60)) + "\n");
  TailReader<MemoryErrorRecord> reader(path_, NoReorder());
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  ASSERT_EQ(reader.Poll(sink), TailStatus::kAdvanced);
  EXPECT_EQ(tailed.size(), 2u);

  // The producer rotates: a shorter fresh file, with its own header.
  {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << logs::MemoryErrorHeader() << '\n'
        << logs::FormatRecord(MakeRecord(120)) << '\n';
  }
  ASSERT_EQ(reader.Poll(sink), TailStatus::kRotated);
  reader.Finish(sink);
  EXPECT_EQ(reader.Rotations(), 1u);
  ASSERT_EQ(tailed.size(), 3u);
  EXPECT_EQ(tailed[2], MakeRecord(120));
  // The stream-level accounting spans both files.
  EXPECT_EQ(reader.Report().stats.parsed, 3u);
}

TEST_F(TailReaderTest, StrictBudgetAbortIsSticky) {
  IngestPolicy policy;
  policy.mode = IngestPolicy::Mode::kStrict;
  policy.max_malformed_fraction = 0.05;
  std::string bytes = std::string(logs::MemoryErrorHeader()) + "\n";
  for (int i = 0; i < 300; ++i) {
    bytes += logs::FormatRecord(MakeRecord(i * 60)) + "\n";
    if (i % 3 == 0) bytes += "garbage line " + std::to_string(i) + "\n";
  }
  Append(bytes);

  TailReader<MemoryErrorRecord> reader(path_, policy);
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  EXPECT_EQ(reader.Poll(sink), TailStatus::kAborted);
  EXPECT_TRUE(reader.Aborted());
  EXPECT_EQ(reader.Poll(sink), TailStatus::kAborted);  // sticky

  reader.Finish(sink);
  ExpectMatchesBatch(tailed, reader.Report(), policy);
  EXPECT_TRUE(reader.Report().aborted);
  EXPECT_TRUE(reader.Report().budget_exceeded);
}

TEST_F(TailReaderTest, CheckpointMidStreamResumesExactly) {
  const std::string payload = DirtyPayload();
  IngestPolicy policy;
  policy.reorder_window_seconds = 600;

  // Reader A consumes roughly half the file, then checkpoints.
  TailReader<MemoryErrorRecord> a(path_, policy);
  std::vector<MemoryErrorRecord> resumed;
  const auto resumed_sink = [&resumed](const MemoryErrorRecord& r) {
    resumed.push_back(r);
  };
  Append(payload.substr(0, payload.size() / 2));
  (void)a.Poll(resumed_sink);

  std::string state;
  binio::Writer writer(state);
  a.SaveState(writer);

  // Reader B restores and finishes the stream; A is discarded.
  TailReader<MemoryErrorRecord> b(path_, policy);
  binio::Reader reader(state);
  ASSERT_TRUE(b.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());
  Append(payload.substr(payload.size() / 2));
  (void)b.Poll(resumed_sink);
  b.Finish(resumed_sink);
  ExpectMatchesBatch(resumed, b.Report(), policy);
}

TEST_F(TailReaderTest, LoadStateRejectsCorruptPayloadAndResets) {
  TailReader<MemoryErrorRecord> a(path_, IngestPolicy{});
  Append(std::string(logs::MemoryErrorHeader()) + "\n" +
         logs::FormatRecord(MakeRecord(0)) + "\n");
  std::vector<MemoryErrorRecord> sunk;
  (void)a.Poll([&sunk](const MemoryErrorRecord& r) { sunk.push_back(r); });
  std::string state;
  binio::Writer writer(state);
  a.SaveState(writer);

  for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, state.size() / 2,
                                state.size() - 1}) {
    TailReader<MemoryErrorRecord> b(path_, IngestPolicy{});
    binio::Reader reader(std::string_view(state).substr(0, cut));
    EXPECT_FALSE(b.LoadState(reader)) << "cut at " << cut;
    EXPECT_EQ(b.Offset(), 0u);  // reset, not half-restored
  }
}

TEST_F(TailReaderTest, FollowsAWriterThread) {
  const std::string payload = DirtyPayload();
  IngestPolicy policy;
  policy.reorder_window_seconds = 600;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::size_t at = 0; at < payload.size();) {
      const std::size_t chunk = std::min<std::size_t>(1999, payload.size() - at);
      {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << payload.substr(at, chunk);
        out.flush();
      }
      at += chunk;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
  });

  TailReader<MemoryErrorRecord> reader(path_, policy);
  std::vector<MemoryErrorRecord> tailed;
  const auto sink = [&tailed](const MemoryErrorRecord& r) { tailed.push_back(r); };
  while (!done.load()) {
    (void)reader.Poll(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  (void)reader.Poll(sink);
  reader.Finish(sink);
  ExpectMatchesBatch(tailed, reader.Report(), policy);
}

}  // namespace
}  // namespace astra::stream
