// Sliding-window burst alerts: rising-edge semantics with re-arm, per-node
// independence, unconditional DUE alerts, out-of-order hygiene, and exact
// continuation across a checkpoint.
#include "stream/alerts.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/binio.hpp"

namespace astra::stream {
namespace {

logs::MemoryErrorRecord Ce(std::int64_t offset_s, NodeId node) {
  logs::MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 6, 15, 0, 0, 0).AddSeconds(offset_s);
  r.node = node;
  r.slot = DimmSlot::A;
  r.socket = SocketOfSlot(r.slot);
  r.type = logs::FailureType::kCorrectable;
  return r;
}

logs::MemoryErrorRecord Due(std::int64_t offset_s, NodeId node) {
  auto r = Ce(offset_s, node);
  r.type = logs::FailureType::kUncorrectable;
  return r;
}

std::vector<std::string> Messages(std::vector<Alert> alerts) {
  std::vector<std::string> messages;
  messages.reserve(alerts.size());
  for (const auto& alert : alerts) messages.push_back(alert.Message());
  return messages;
}

TEST(StreamingAlertsTest, FleetThresholdFiresOnRisingEdgeOnly) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  StreamingAlerts alerts(config);

  alerts.Observe(Ce(0, 1));
  alerts.Observe(Ce(10, 2));
  EXPECT_TRUE(alerts.Drain().empty());  // below threshold: armed, silent

  alerts.Observe(Ce(20, 3));
  auto fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Alert::Kind::kFleetCeRate);
  EXPECT_EQ(fired[0].count, 3u);
  EXPECT_EQ(fired[0].window_seconds, 100);

  // Sustained burst: still over threshold, but the edge already fired.
  alerts.Observe(Ce(30, 4));
  alerts.Observe(Ce(40, 5));
  EXPECT_TRUE(alerts.Drain().empty());
}

TEST(StreamingAlertsTest, FleetReArmsAfterBurstSubsides) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  StreamingAlerts alerts(config);

  for (const std::int64_t t : {0, 10, 20}) alerts.Observe(Ce(t, 1));
  EXPECT_EQ(alerts.Drain().size(), 1u);

  // 150s later the whole burst has aged out: the window drains, the rule
  // re-arms, and a fresh burst fires a second alert.
  alerts.Observe(Ce(170, 1));
  alerts.Observe(Ce(180, 1));
  alerts.Observe(Ce(190, 1));
  auto fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].count, 3u);
}

TEST(StreamingAlertsTest, NodeThresholdsAreIndependent) {
  AlertConfig config;
  config.window_seconds = 1000;
  config.node_ce_threshold = 2;
  StreamingAlerts alerts(config);

  alerts.Observe(Ce(0, 7));
  alerts.Observe(Ce(10, 9));
  EXPECT_TRUE(alerts.Drain().empty());  // one CE each: neither node is bursting

  alerts.Observe(Ce(20, 7));
  auto fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Alert::Kind::kNodeCeRate);
  EXPECT_EQ(fired[0].node, 7);
  EXPECT_EQ(fired[0].count, 2u);

  alerts.Observe(Ce(30, 9));
  fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].node, 9);
}

TEST(StreamingAlertsTest, DueAlertsAreUnconditional) {
  // No CE thresholds configured at all: uncorrectables still page.
  StreamingAlerts alerts(AlertConfig{});
  alerts.Observe(Due(0, 42));
  auto fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Alert::Kind::kDue);
  EXPECT_NE(fired[0].Message().find("uncorrectable (DUE) on node 42"),
            std::string::npos);
}

TEST(StreamingAlertsTest, StaleOutOfOrderCeDoesNotCount) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  StreamingAlerts alerts(config);

  alerts.Observe(Ce(1000, 1));
  alerts.Observe(Ce(850, 2));  // older than the window: must not count
  alerts.Observe(Ce(950, 3));
  EXPECT_TRUE(alerts.Drain().empty());  // 2 in window, not 3

  alerts.Observe(Ce(990, 4));
  auto fired = alerts.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].count, 3u);
}

TEST(StreamingAlertsTest, EveryMessageCarriesTheAlertMarker) {
  AlertConfig config;
  config.window_seconds = 60;
  config.fleet_ce_threshold = 1;
  config.node_ce_threshold = 1;
  StreamingAlerts alerts(config);
  alerts.Observe(Ce(0, 5));
  alerts.Observe(Due(1, 5));
  const auto messages = Messages(alerts.Drain());
  ASSERT_EQ(messages.size(), 3u);  // fleet + node + due
  for (const auto& message : messages) {
    EXPECT_NE(message.find("ALERT"), std::string::npos) << message;
  }
}

TEST(StreamingAlertsTest, CheckpointMidBurstContinuesIdentically) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  config.node_ce_threshold = 2;

  StreamingAlerts uninterrupted(config);
  StreamingAlerts first_half(config);
  for (const std::int64_t t : {0, 10}) {
    uninterrupted.Observe(Ce(t, 1));
    first_half.Observe(Ce(t, 1));
  }
  (void)first_half.Drain();
  (void)uninterrupted.Drain();

  std::string state;
  binio::Writer writer(state);
  first_half.Snapshot(writer);
  StreamingAlerts restored(config);
  binio::Reader reader(state);
  ASSERT_TRUE(restored.Restore(reader));
  EXPECT_TRUE(reader.AtEnd());

  // The third CE completes the burst on both timelines identically.
  restored.Observe(Ce(20, 1));
  uninterrupted.Observe(Ce(20, 1));
  EXPECT_EQ(Messages(restored.Drain()), Messages(uninterrupted.Drain()));
}

TEST(StreamingAlertsTest, TruncatedStateIsRejectedAndReset) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 2;
  StreamingAlerts alerts(config);
  alerts.Observe(Ce(0, 1));
  std::string state;
  binio::Writer writer(state);
  alerts.Snapshot(writer);

  StreamingAlerts damaged(config);
  binio::Reader truncated(std::string_view(state).substr(0, state.size() / 2));
  EXPECT_FALSE(damaged.Restore(truncated));
  // Reset to fresh: the next two CEs form a complete burst of their own.
  damaged.Observe(Ce(0, 1));
  damaged.Observe(Ce(10, 2));
  EXPECT_EQ(damaged.Drain().size(), 1u);
}

TEST(StreamingAlertsMergeTest, SelfMergeAndConfigMismatchAreRefused) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  StreamingAlerts alerts(config);
  EXPECT_FALSE(alerts.MergeFrom(alerts));

  AlertConfig other = config;
  other.fleet_ce_threshold = 4;
  StreamingAlerts mismatched(other);
  EXPECT_FALSE(alerts.MergeFrom(mismatched));

  StreamingAlerts compatible(config);
  EXPECT_TRUE(alerts.MergeFrom(compatible));
}

TEST(StreamingAlertsMergeTest, PendingAlertsSurviveTheMerge) {
  AlertConfig config;
  StreamingAlerts source(config);
  source.Observe(Due(100, 7));  // pending, never drained

  StreamingAlerts target(config);
  target.Observe(Due(50, 3));
  ASSERT_TRUE(target.MergeFrom(source));
  const auto fired = target.Drain();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].node, 3);
  EXPECT_EQ(fired[1].node, 7);
}

TEST(StreamingAlertsMergeTest, FiredLatchesOrSoMergedBurstsDoNotRefire) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;

  StreamingAlerts source(config);
  for (const std::int64_t t : {0, 10, 20}) source.Observe(Ce(t, 1));
  EXPECT_EQ(source.Drain().size(), 1u);  // source already alerted

  StreamingAlerts target(config);
  ASSERT_TRUE(target.MergeFrom(source));
  // The merged window stands over the threshold, but the crossing was
  // already reported by the operand: no duplicate.
  EXPECT_TRUE(target.Drain().empty());

  // Still latched: another in-window CE stays silent...
  target.Observe(Ce(30, 2));
  EXPECT_TRUE(target.Drain().empty());
  // ...and after the burst ages out, the rule re-arms as usual.
  target.Observe(Ce(500, 1));
  target.Observe(Ce(510, 2));
  target.Observe(Ce(520, 3));
  EXPECT_EQ(target.Drain().size(), 1u);
}

TEST(StreamingAlertsMergeTest, CrossStreamFleetBurstFiresAtTheMergedMax) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 4;

  // Two CEs per stream: neither stream alone crosses the fleet threshold.
  StreamingAlerts left(config);
  left.Observe(Ce(0, 1));
  left.Observe(Ce(20, 2));
  StreamingAlerts right(config);
  right.Observe(Ce(10, 3));
  right.Observe(Ce(30, 4));
  EXPECT_TRUE(left.Drain().empty());
  EXPECT_TRUE(right.Drain().empty());

  StreamingAlerts merged(config);
  ASSERT_TRUE(merged.MergeFrom(left));
  ASSERT_TRUE(merged.MergeFrom(right));
  const auto fired = merged.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Alert::Kind::kFleetCeRate);
  EXPECT_EQ(fired[0].count, 4u);
  EXPECT_EQ(fired[0].at, Ce(30, 4).timestamp);  // the merged horizon
}

TEST(StreamingAlertsMergeTest, CrossStreamNodeBurstIsDetected) {
  AlertConfig config;
  config.window_seconds = 100;
  config.node_ce_threshold = 2;

  // Node 7's CEs land in different streams (e.g. around a failover).
  StreamingAlerts left(config);
  left.Observe(Ce(0, 7));
  StreamingAlerts right(config);
  right.Observe(Ce(10, 7));
  EXPECT_TRUE(left.Drain().empty());
  EXPECT_TRUE(right.Drain().empty());

  StreamingAlerts merged(config);
  ASSERT_TRUE(merged.MergeFrom(left));
  ASSERT_TRUE(merged.MergeFrom(right));
  const auto fired = merged.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Alert::Kind::kNodeCeRate);
  EXPECT_EQ(fired[0].node, 7);
}

TEST(StreamingAlertsMergeTest, MergeReEvictsAgainstTheMergedHorizon) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;

  // Two stale CEs in one stream, one much newer CE in the other: the merged
  // window only contains the newer one, so no threshold crossing fires.
  StreamingAlerts stale(config);
  stale.Observe(Ce(0, 1));
  stale.Observe(Ce(10, 2));
  StreamingAlerts fresh(config);
  fresh.Observe(Ce(500, 3));

  StreamingAlerts merged(config);
  ASSERT_TRUE(merged.MergeFrom(stale));
  ASSERT_TRUE(merged.MergeFrom(fresh));
  EXPECT_TRUE(merged.Drain().empty());

  // Two more in-window CEs complete a genuine burst of exactly three.
  merged.Observe(Ce(510, 4));
  merged.Observe(Ce(520, 5));
  const auto fired = merged.Drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].count, 3u);
}

TEST(StreamingAlertsMergeTest, NeverDropsAnAlertSerialReplayWouldRaise) {
  AlertConfig config;
  config.window_seconds = 100;
  config.fleet_ce_threshold = 3;
  config.node_ce_threshold = 2;

  // The oracle: one engine sees the combined stream in time order.
  const std::vector<logs::MemoryErrorRecord> combined = {
      Ce(0, 1), Ce(10, 7), Due(15, 2), Ce(20, 7), Ce(30, 3)};
  StreamingAlerts serial(config);
  for (const auto& record : combined) serial.Observe(record);
  const auto expected = serial.Drain();
  ASSERT_FALSE(expected.empty());

  // The split: records partitioned across two streams, then merged.  Alerts
  // surface either at the member (drained pre-merge, as the serve merge
  // cycle does) or from the merged engine — the union may exceed the serial
  // set, but must never miss a (kind, node) the serial replay raised.
  StreamingAlerts left(config);
  StreamingAlerts right(config);
  left.Observe(combined[0]);
  right.Observe(combined[1]);
  left.Observe(combined[2]);
  right.Observe(combined[3]);
  left.Observe(combined[4]);
  auto raised = left.Drain();
  const auto right_raised = right.Drain();
  raised.insert(raised.end(), right_raised.begin(), right_raised.end());

  StreamingAlerts merged(config);
  ASSERT_TRUE(merged.MergeFrom(left));
  ASSERT_TRUE(merged.MergeFrom(right));
  const auto merge_raised = merged.Drain();
  raised.insert(raised.end(), merge_raised.begin(), merge_raised.end());

  for (const auto& alert : expected) {
    bool found = false;
    for (const auto& candidate : raised) {
      found = found || (candidate.kind == alert.kind &&
                        candidate.node == alert.node);
    }
    EXPECT_TRUE(found) << alert.Message();
  }
}

}  // namespace
}  // namespace astra::stream
