// Driver parity: both drivers — batch `analyze` and streaming `watch` — are
// thin shells over the same engine set (core/engine.hpp), so the rendered
// reports must be BYTE-IDENTICAL over the same final files.  The engine
// algebra itself (split/merge, resume, reject-reset) is proved per-engine in
// tests/core/engine_contract_test.cpp; this suite checks the remaining
// driver-owned seams: ingest-policy handling, missing/empty streams,
// arbitrary chunked growth, and the checkpoint envelope — on clean data,
// under every corruption mode, and under strict-mode rejection.
#include "stream/monitor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "logs/corruption.hpp"
#include "stream/checkpoint.hpp"
#include "util/file_io.hpp"

namespace astra::stream {
namespace {

struct Rendered {
  int code = 0;           // the CLI exit code the render path implies
  std::string out;        // the stdout bytes
};

// The batch `analyze` pipeline, byte-for-byte (astra_mrt_cli.cpp CmdAnalyze),
// rendered into a string instead of stdout.
Rendered BatchRender(const std::string& dir, const logs::IngestPolicy& policy) {
  Rendered result;
  std::ostringstream out;
  const auto paths = core::DatasetPaths::InDirectory(dir);
  const auto ingest = core::IngestFailureData(paths, policy);
  if (ingest.status == core::DatasetStatus::kMissingPrimary) {
    result.code = 2;
    return result;
  }
  core::RenderIngestReport(out, policy, ingest.memory_report,
                           ingest.het_missing ? nullptr : &ingest.het_report);
  if (ingest.status == core::DatasetStatus::kRejected) {
    result.code = 3;
    result.out = out.str();
    return result;
  }
  if (ingest.memory_errors.empty()) {
    core::RenderEmptyDatasetReport(out, ingest.quality);
    result.out = out.str();
    return result;
  }
  NodeId max_node = 0;
  SimTime lo = ingest.memory_errors.front().timestamp;
  SimTime hi = lo;
  for (const auto& r : ingest.memory_errors) {
    max_node = std::max(max_node, r.node);
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  SimTime het_start = hi;
  for (const auto& r : ingest.het_events) {
    het_start = std::min(het_start, r.timestamp);
  }
  const auto artifacts = core::BuildAnalysisArtifacts(
      ingest.memory_errors, ingest.het_events, max_node + 1,
      {lo, hi.AddSeconds(1)}, het_start, &ingest.quality);
  core::RenderAnalysisReport(out, artifacts);
  result.out = out.str();
  return result;
}

// The streaming `watch` final render (astra_mrt_cli.cpp CmdWatch after the
// follow loop), over a monitor whose streams are already consumed.
Rendered StreamRender(StreamMonitor& monitor, const logs::IngestPolicy& policy) {
  Rendered result;
  std::ostringstream out;
  const auto final_status = monitor.Finish();
  if (final_status == MonitorStatus::kMissingPrimary) {
    result.code = 2;
    return result;
  }
  core::RenderIngestReport(out, policy, monitor.MemoryReport(),
                           monitor.HetMissing() ? nullptr : &monitor.HetReport());
  if (final_status == MonitorStatus::kRejected) {
    result.code = 3;
    result.out = out.str();
    return result;
  }
  if (monitor.Delivered() == 0) {
    core::RenderEmptyDatasetReport(out, monitor.Quality());
    result.out = out.str();
    return result;
  }
  core::RenderAnalysisReport(out, monitor.Artifacts());
  result.out = out.str();
  return result;
}

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_stream_equivalence_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    paths_ = core::DatasetPaths::InDirectory(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A small but non-trivial campaign: enough nodes for multi-fault structure
  // without dominating the test budget.
  void WriteCampaign(std::uint64_t seed = 11, int nodes = 36) {
    faultsim::CampaignConfig config;
    config.SeedFrom(seed);
    config.node_count = nodes;
    const auto campaign = faultsim::FleetSimulator(config).Run();
    ASSERT_TRUE(core::WriteFailureData(paths_, campaign));
    ASSERT_GT(campaign.memory_errors.size(), 100u);
  }

  void Corrupt(const logs::CorruptionConfig& config) {
    logs::CorruptionInjector injector(config);
    ASSERT_TRUE(injector.CorruptDirectory(dir_).has_value());
  }

  // One-shot: finish a fresh monitor over the current files and demand
  // byte-identity with the batch render.
  void ExpectStreamEqualsBatch(const logs::IngestPolicy& policy) {
    const Rendered batch = BatchRender(dir_, policy);
    MonitorConfig config;
    config.policy = policy;
    StreamMonitor monitor(paths_, config);
    const Rendered streamed = StreamRender(monitor, policy);
    EXPECT_EQ(batch.code, streamed.code);
    EXPECT_EQ(batch.out, streamed.out);
    EXPECT_FALSE(batch.out.empty());
  }

  std::string dir_;
  core::DatasetPaths paths_;
};

TEST_F(EquivalenceTest, CleanDataset) {
  WriteCampaign();
  ExpectStreamEqualsBatch(logs::IngestPolicy{});
}

TEST_F(EquivalenceTest, EveryCorruptionModeSeparately) {
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    const auto mode = static_cast<logs::CorruptionMode>(m);
    const std::string subdir = dir_ + "/" + std::string(logs::CorruptionModeName(mode));
    std::filesystem::create_directories(subdir);
    paths_ = core::DatasetPaths::InDirectory(subdir);
    WriteCampaign();

    logs::CorruptionConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(m);
    config.Set(mode, 0.3);
    logs::CorruptionInjector injector(config);
    ASSERT_TRUE(injector.CorruptDirectory(subdir).has_value());

    SCOPED_TRACE(std::string("mode ") + std::string(logs::CorruptionModeName(mode)));
    const Rendered batch = BatchRender(subdir, logs::IngestPolicy{});
    MonitorConfig monitor_config;
    StreamMonitor monitor(paths_, monitor_config);
    const Rendered streamed = StreamRender(monitor, logs::IngestPolicy{});
    EXPECT_EQ(batch.code, streamed.code);
    EXPECT_EQ(batch.out, streamed.out);
  }
}

TEST_F(EquivalenceTest, AllCorruptionModesAtOnce) {
  WriteCampaign();
  logs::CorruptionConfig config;
  config.seed = 77;
  config.SetAll(0.25);
  Corrupt(config);
  ExpectStreamEqualsBatch(logs::IngestPolicy{});
}

TEST_F(EquivalenceTest, StrictRejectionMatches) {
  WriteCampaign();
  logs::CorruptionConfig config;
  config.seed = 9;
  config.SetAll(0.4);
  Corrupt(config);

  const auto policy = logs::IngestPolicy::Strict();
  const Rendered batch = BatchRender(dir_, policy);
  MonitorConfig monitor_config;
  monitor_config.policy = policy;
  StreamMonitor monitor(paths_, monitor_config);
  const Rendered streamed = StreamRender(monitor, policy);
  EXPECT_EQ(batch.code, 3);  // heavy damage must actually trip strict mode
  EXPECT_EQ(streamed.code, 3);
  EXPECT_EQ(batch.out, streamed.out);
}

TEST_F(EquivalenceTest, MissingPrimaryStreamMatches) {
  // No files at all: both paths report the unreadable primary stream.
  const Rendered batch = BatchRender(dir_, logs::IngestPolicy{});
  MonitorConfig config;
  StreamMonitor monitor(paths_, config);
  const Rendered streamed = StreamRender(monitor, logs::IngestPolicy{});
  EXPECT_EQ(batch.code, 2);
  EXPECT_EQ(streamed.code, 2);
}

TEST_F(EquivalenceTest, EmptyDatasetMatches) {
  // Headers only: ingest succeeds but delivers nothing usable.
  {
    std::ofstream memory(paths_.memory_errors);
    memory << logs::MemoryErrorHeader() << '\n';
    std::ofstream het(paths_.het_events);
    het << logs::HetHeader() << '\n';
  }
  ExpectStreamEqualsBatch(logs::IngestPolicy{});
}

TEST_F(EquivalenceTest, ChunkedGrowthNotAtLineBoundaries) {
  WriteCampaign();
  // Move the full files aside, then grow fresh ones chunk by chunk with cuts
  // that routinely fall mid-line, polling between appends.
  const auto memory_bytes = ReadFileBytes(paths_.memory_errors);
  const auto het_bytes = ReadFileBytes(paths_.het_events);
  ASSERT_TRUE(memory_bytes.has_value());
  ASSERT_TRUE(het_bytes.has_value());
  std::filesystem::remove(paths_.memory_errors);
  std::filesystem::remove(paths_.het_events);

  MonitorConfig config;
  StreamMonitor monitor(paths_, config);
  EXPECT_EQ(monitor.Poll(), MonitorStatus::kMissingPrimary);

  const auto append = [](const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  std::size_t mem_at = 0;
  std::size_t het_at = 0;
  while (mem_at < memory_bytes->size() || het_at < het_bytes->size()) {
    if (mem_at < memory_bytes->size()) {
      const std::size_t chunk =
          std::min<std::size_t>(30011, memory_bytes->size() - mem_at);
      append(paths_.memory_errors,
             std::string_view(*memory_bytes).substr(mem_at, chunk));
      mem_at += chunk;
    }
    if (het_at < het_bytes->size()) {
      const std::size_t chunk =
          std::min<std::size_t>(4099, het_bytes->size() - het_at);
      append(paths_.het_events,
             std::string_view(*het_bytes).substr(het_at, chunk));
      het_at += chunk;
    }
    const auto status = monitor.Poll();
    EXPECT_TRUE(status == MonitorStatus::kAdvanced ||
                status == MonitorStatus::kIdle);
  }

  const Rendered streamed = StreamRender(monitor, logs::IngestPolicy{});
  const Rendered batch = BatchRender(dir_, logs::IngestPolicy{});
  EXPECT_EQ(batch.code, streamed.code);
  EXPECT_EQ(batch.out, streamed.out);
}

// The acceptance criterion: a checkpoint taken mid-stream, restored into a
// FRESH monitor, continued over the remaining growth, renders byte-identical
// to batch analysis of the final files.
TEST_F(EquivalenceTest, MidStreamCheckpointRestoreCycle) {
  WriteCampaign();
  const auto memory_bytes = ReadFileBytes(paths_.memory_errors);
  ASSERT_TRUE(memory_bytes.has_value());
  std::filesystem::remove(paths_.memory_errors);

  const std::string checkpoint = dir_ + "/watch.ckpt";
  const auto append = [&](std::string_view bytes) {
    std::ofstream out(paths_.memory_errors, std::ios::app | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Monitor A sees roughly the first half (cut mid-line), then checkpoints.
  {
    MonitorConfig config;
    StreamMonitor a(paths_, config);
    append(std::string_view(*memory_bytes).substr(0, memory_bytes->size() / 2));
    const auto status = a.Poll();
    EXPECT_EQ(status, MonitorStatus::kAdvanced);
    EXPECT_GT(a.Delivered(), 0u);
    ASSERT_EQ(SaveMonitorCheckpoint(a, checkpoint), CheckpointStatus::kOk);
  }  // A is gone: the restart really starts from the checkpoint alone.

  MonitorConfig config;
  StreamMonitor b(paths_, config);
  ASSERT_EQ(RestoreMonitorCheckpoint(b, checkpoint), CheckpointStatus::kOk);
  EXPECT_GT(b.Delivered(), 0u);

  append(std::string_view(*memory_bytes).substr(memory_bytes->size() / 2));
  (void)b.Poll();

  const Rendered streamed = StreamRender(b, logs::IngestPolicy{});
  const Rendered batch = BatchRender(dir_, logs::IngestPolicy{});
  EXPECT_EQ(batch.code, streamed.code);
  EXPECT_EQ(batch.out, streamed.out);
  EXPECT_FALSE(streamed.out.empty());
}

}  // namespace
}  // namespace astra::stream
