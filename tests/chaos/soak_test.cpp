// Kill-and-restore soak: 50 cycles of append → poll → checkpoint → process
// death → restore, the whole time under randomized-but-seeded I/O fault
// injection on every map, read, write, rename and fsync.  The acceptance
// criterion is the tentpole guarantee end-to-end: after the last cycle the
// restored pipeline renders a report BYTE-IDENTICAL to a clean, single-pass
// run over the same final files — and the entire soak is a pure function of
// the injection seed (ASTRA_CHAOS_SEED), so any failure replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "stream/checkpoint.hpp"
#include "stream/monitor.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::stream {
namespace {

constexpr int kCycles = 50;

std::uint64_t ChaosSeed() {
  if (const char* env = std::getenv("ASTRA_CHAOS_SEED")) {
    if (const auto parsed = ParseUint64(env)) return *parsed;
  }
  return 1;
}

std::string RenderAll(StreamMonitor& monitor, const logs::IngestPolicy& policy) {
  std::ostringstream out;
  core::RenderIngestReport(out, policy, monitor.MemoryReport(),
                           monitor.HetMissing() ? nullptr : &monitor.HetReport());
  core::RenderAnalysisReport(out, monitor.Artifacts());
  return out.str();
}

// Faults on every operation the soak exercises.  max_consecutive keeps each
// kind transient; the generous per-op retry budgets below absorb even
// adversarial alternation across kinds (the bound is per-kind, so distinct
// kinds can take turns failing a combined operation).
io::FaultConfig SoakFaults(std::uint64_t seed) {
  io::FaultConfig config;
  config.seed = seed;
  config.open_fail = 0.15;
  config.read_fail = 0.15;
  config.read_short = 0.15;
  config.map_fail = 0.15;
  config.write_fail = 0.15;
  config.write_torn = 0.15;
  config.rename_fail = 0.15;
  config.sync_fail = 0.15;
  config.max_consecutive = 2;
  return config;
}

RetryPolicy SoakRetry() {
  RetryPolicy retry;
  retry.max_attempts = 32;  // back-to-back (null sleep): depth is cheap
  return retry;
}

struct SoakOutcome {
  std::string render;
  std::uint64_t faults_injected = 0;
  std::uint64_t checkpoint_restores = 0;
};

// One complete soak in its own directory.  `memory_bytes`/`het_bytes` are
// the final file contents; the memory log grows in kCycles byte slices whose
// cuts routinely fall mid-line.
SoakOutcome RunSoak(const std::string& dir, std::uint64_t seed,
                    const std::string& memory_bytes,
                    const std::string& het_bytes) {
  SoakOutcome outcome;
  std::filesystem::create_directories(dir);
  const auto paths = core::DatasetPaths::InDirectory(dir);
  const std::string checkpoint = dir + "/soak.ckpt";
  EXPECT_TRUE(io::DefaultIo().WriteFile(paths.het_events, het_bytes));

  const auto append = [&](std::string_view bytes) {
    // The producer side of the pipeline: plain appends, outside the seam —
    // chaos is injected on the CONSUMER's syscalls only.
    std::ofstream out(paths.memory_errors, std::ios::app | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const std::size_t slice = memory_bytes.size() / kCycles + 1;

  io::FaultyIo faulty(SoakFaults(seed));
  io::ScopedIo scope(faulty);
  MonitorConfig config;
  config.io_retry = SoakRetry();

  std::size_t at = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const std::size_t chunk = std::min(slice, memory_bytes.size() - at);
    append(std::string_view(memory_bytes).substr(at, chunk));
    at += chunk;

    // "Boot": a fresh process restores the previous cycle's checkpoint.
    StreamMonitor monitor(paths, config);
    if (cycle > 0) {
      EXPECT_EQ(RestoreMonitorCheckpoint(monitor, checkpoint, SoakRetry()),
                CheckpointStatus::kOk)
          << "cycle " << cycle;
      ++outcome.checkpoint_restores;
    }
    const auto status = monitor.Poll();
    EXPECT_NE(status, MonitorStatus::kRejected) << "cycle " << cycle;
    EXPECT_EQ(SaveMonitorCheckpoint(monitor, checkpoint, SoakRetry()),
              CheckpointStatus::kOk)
        << "cycle " << cycle;
  }  // "kill": the monitor dies with state persisted only in the checkpoint

  EXPECT_EQ(at, memory_bytes.size());
  StreamMonitor survivor(paths, config);
  EXPECT_EQ(RestoreMonitorCheckpoint(survivor, checkpoint, SoakRetry()),
            CheckpointStatus::kOk);
  ++outcome.checkpoint_restores;
  EXPECT_EQ(survivor.Finish(), MonitorStatus::kAdvanced);
  outcome.render = RenderAll(survivor, logs::IngestPolicy{});
  outcome.faults_injected = faulty.Stats().Total();
  return outcome;
}

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_chaos_soak_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);

    // The reference dataset and its clean single-pass render.
    const std::string golden_dir = dir_ + "/golden";
    std::filesystem::create_directories(golden_dir);
    const auto golden_paths = core::DatasetPaths::InDirectory(golden_dir);
    faultsim::CampaignConfig config;
    config.SeedFrom(11);
    config.node_count = 24;
    const auto campaign = faultsim::FleetSimulator(config).Run();
    ASSERT_TRUE(core::WriteFailureData(golden_paths, campaign));

    const auto memory = io::DefaultIo().ReadFile(golden_paths.memory_errors);
    const auto het = io::DefaultIo().ReadFile(golden_paths.het_events);
    ASSERT_TRUE(memory.has_value());
    ASSERT_TRUE(het.has_value());
    memory_bytes_ = *memory;
    het_bytes_ = *het;
    ASSERT_GT(memory_bytes_.size(), static_cast<std::size_t>(kCycles));

    StreamMonitor clean(golden_paths, MonitorConfig{});
    ASSERT_EQ(clean.Finish(), MonitorStatus::kAdvanced);
    golden_ = RenderAll(clean, logs::IngestPolicy{});
    ASSERT_FALSE(golden_.empty());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::string memory_bytes_;
  std::string het_bytes_;
  std::string golden_;
};

TEST_F(SoakTest, FiftyKillRestoreCyclesUnderFaultsRenderByteIdentical) {
  const auto outcome = RunSoak(dir_ + "/run", ChaosSeed(), memory_bytes_,
                               het_bytes_);
  EXPECT_EQ(outcome.render, golden_);
  EXPECT_EQ(outcome.checkpoint_restores,
            static_cast<std::uint64_t>(kCycles));
  // The soak must actually have been chaotic — a quiet FaultyIo proves
  // nothing about recovery.
  EXPECT_GT(outcome.faults_injected, 0u);
}

TEST_F(SoakTest, TheWholeSoakIsAPureFunctionOfTheSeed) {
  const auto first = RunSoak(dir_ + "/a", ChaosSeed(), memory_bytes_,
                             het_bytes_);
  const auto second = RunSoak(dir_ + "/b", ChaosSeed(), memory_bytes_,
                              het_bytes_);
  EXPECT_EQ(first.render, second.render);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.render, golden_);
}

}  // namespace
}  // namespace astra::stream
