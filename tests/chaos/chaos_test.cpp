// Chaos suite: the whole streaming pipeline — poll, finish, checkpoint save
// and restore — runs under seeded syscall-level fault injection (io::FaultyIo)
// and must end every scenario in one of the three documented outcomes:
//
//   retryable  — bounded transient faults are absorbed by retries and the
//                rendered report is BYTE-IDENTICAL to the clean run;
//   degradable — a persistently sick stream degrades to the same report the
//                pipeline produces when that stream is absent (DataQuality
//                caveats, exit 0), never to silent data loss;
//   fatal      — persistent faults on a required artifact surface as a
//                specific non-kOk status after the retry budget, with the
//                previous on-disk artifact left intact.
//
// The injection seed comes from ASTRA_CHAOS_SEED (CI sweeps several), so the
// same binary exercises different fault interleavings while every individual
// run stays deterministic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "stream/checkpoint.hpp"
#include "stream/monitor.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::stream {
namespace {

std::uint64_t ChaosSeed() {
  if (const char* env = std::getenv("ASTRA_CHAOS_SEED")) {
    if (const auto parsed = ParseUint64(env)) return *parsed;
  }
  return 1;
}

// The watch CLI's final render (ingest accounting + analysis report) — what
// "byte-identical report" means throughout this suite.
std::string RenderAll(StreamMonitor& monitor, const logs::IngestPolicy& policy) {
  std::ostringstream out;
  core::RenderIngestReport(out, policy, monitor.MemoryReport(),
                           monitor.HetMissing() ? nullptr : &monitor.HetReport());
  core::RenderAnalysisReport(out, monitor.Artifacts());
  return out.str();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_chaos_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    paths_ = core::DatasetPaths::InDirectory(dir_);
    checkpoint_ = dir_ + "/watch.ckpt";

    faultsim::CampaignConfig config;
    config.SeedFrom(11);
    config.node_count = 24;
    campaign_ = faultsim::FleetSimulator(config).Run();
    ASSERT_TRUE(core::WriteFailureData(paths_, campaign_));

    // The golden render, computed before any fault source is installed.
    StreamMonitor clean(paths_, MonitorConfig{});
    ASSERT_EQ(clean.Finish(), MonitorStatus::kAdvanced);
    golden_ = RenderAll(clean, logs::IngestPolicy{});
    ASSERT_FALSE(golden_.empty());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // A monitor whose in-poll retry budget (no sleeping) exceeds the
  // transience bound the tests configure (2), so bounded single-kind faults
  // are guaranteed to be absorbed.  Tests mixing several fault kinds pass a
  // larger budget: the transience bound is per-kind, so alternating kinds
  // can string together longer combined failure streaks.
  static MonitorConfig RetryingConfig(int attempts = 4) {
    MonitorConfig config;
    config.io_retry.max_attempts = attempts;
    return config;
  }

  static RetryPolicy CheckpointRetry() {
    RetryPolicy retry;
    retry.max_attempts = 4;
    return retry;
  }

  // Drive a monitor to completion under whatever Io is installed.
  static void DrainAndFinish(StreamMonitor& monitor) {
    for (int i = 0; i < 8; ++i) {
      const auto status = monitor.Poll();
      ASSERT_NE(status, MonitorStatus::kRejected);
    }
    ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  }

  std::string dir_;
  core::DatasetPaths paths_;
  std::string checkpoint_;
  faultsim::CampaignResult campaign_;
  std::string golden_;
};

// --- retryable: transient faults, byte-identical reports ----------------------

TEST_F(ChaosTest, TransientOpenFailuresAreInvisibleInTheReport) {
  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 1.0;  // every map attempt wants to fail...
  config.max_consecutive = 2;  // ...but never more than twice in a row
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor monitor(paths_, RetryingConfig());
  DrainAndFinish(monitor);
  EXPECT_EQ(RenderAll(monitor, logs::IngestPolicy{}), golden_);
  EXPECT_GT(monitor.IoRetries(), 0u);
  EXPECT_GT(faulty.Stats().Count(io::Fault::kOpenFail), 0u);
}

TEST_F(ChaosTest, TransientMmapFailuresAreInvisibleInTheReport) {
  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.map_fail = 1.0;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor monitor(paths_, RetryingConfig());
  DrainAndFinish(monitor);
  EXPECT_EQ(RenderAll(monitor, logs::IngestPolicy{}), golden_);
  EXPECT_GT(monitor.IoRetries(), 0u);
  EXPECT_GT(faulty.Stats().Count(io::Fault::kMapFail), 0u);
}

TEST_F(ChaosTest, MixedTransientFaultsStillConverge) {
  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 0.5;
  config.map_fail = 0.5;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor monitor(paths_, RetryingConfig(64));
  DrainAndFinish(monitor);
  EXPECT_EQ(RenderAll(monitor, logs::IngestPolicy{}), golden_);
}

// --- checkpoint save under environmental failure ------------------------------

TEST_F(ChaosTest, EnospcMidCheckpointIsFatalButKeepsThePreviousCheckpoint) {
  // Save a good checkpoint first, then fill the disk (persistent torn
  // writes).  The failed save must report kIoError, sweep its own tmp, and
  // leave the previous checkpoint fully restorable.
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.write_torn = 1.0;
  config.max_consecutive = 0;  // persistent: every write attempt tears
  io::FaultyIo faulty(config);
  {
    io::ScopedIo scope(faulty);
    EXPECT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_, CheckpointRetry()),
              CheckpointStatus::kIoError);
  }
  EXPECT_GT(faulty.Stats().Count(io::Fault::kTornWrite), 0u);
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderAll(restored, logs::IngestPolicy{}), golden_);
}

TEST_F(ChaosTest, TransientRenameFailureIsAbsorbedBySaveRetries) {
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.rename_fail = 1.0;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  {
    io::ScopedIo scope(faulty);
    EXPECT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_, CheckpointRetry()),
              CheckpointStatus::kOk);
  }
  EXPECT_EQ(faulty.Stats().Count(io::Fault::kRenameFail), 2u);

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderAll(restored, logs::IngestPolicy{}), golden_);
}

TEST_F(ChaosTest, PersistentRenameFailureIsFatalAndPreservesTheOldCheckpoint) {
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);
  const auto before = io::DefaultIo().ReadFile(checkpoint_);
  ASSERT_TRUE(before.has_value());

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.rename_fail = 1.0;
  config.max_consecutive = 0;
  io::FaultyIo faulty(config);
  {
    io::ScopedIo scope(faulty);
    EXPECT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_, CheckpointRetry()),
              CheckpointStatus::kIoError);
  }
  // The target was never touched (rename is the commit point) and the tmp
  // was swept on the way out.
  EXPECT_EQ(io::DefaultIo().ReadFile(checkpoint_), before);
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));
}

// --- torn tmp files from a crashed save ---------------------------------------

TEST_F(ChaosTest, TornTmpFromACrashedSaveIsSweptOnRestart) {
  // Simulate the crash aftermath directly: a garbage sidecar next to a good
  // checkpoint.  Startup sweeps it; save and restore then work unaffected.
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_TRUE(io::DefaultIo().WriteFile(checkpoint_ + ".tmp", "torn garbage"));

  ASSERT_TRUE(RemoveStaleCheckpointTmp(checkpoint_));
  EXPECT_FALSE(std::filesystem::exists(checkpoint_ + ".tmp"));
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderAll(restored, logs::IngestPolicy{}), golden_);
}

// --- checkpoint restore under environmental failure ---------------------------

TEST_F(ChaosTest, RestoreRetriesThroughTransientReadFailures) {
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 1.0;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_, CheckpointRetry()),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderAll(restored, logs::IngestPolicy{}), golden_);
  EXPECT_EQ(faulty.Stats().Count(io::Fault::kOpenFail), 2u);
}

TEST_F(ChaosTest, RestoreRetriesThroughShortReads) {
  // A short read of the checkpoint looks like truncation — retryable, since
  // re-reading delivers the whole file once the transient passes.
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.read_short = 1.0;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor restored(paths_, MonitorConfig{});
  ASSERT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_, CheckpointRetry()),
            CheckpointStatus::kOk);
  EXPECT_EQ(RenderAll(restored, logs::IngestPolicy{}), golden_);
  EXPECT_GT(faulty.Stats().Count(io::Fault::kShortRead), 0u);
}

TEST_F(ChaosTest, PersistentlyUnreadableCheckpointIsFatalAfterTheBudget) {
  StreamMonitor monitor(paths_, MonitorConfig{});
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  ASSERT_EQ(SaveMonitorCheckpoint(monitor, checkpoint_), CheckpointStatus::kOk);

  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 1.0;
  config.max_consecutive = 0;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor restored(paths_, MonitorConfig{});
  EXPECT_EQ(RestoreMonitorCheckpoint(restored, checkpoint_, CheckpointRetry()),
            CheckpointStatus::kIoError);
  EXPECT_EQ(restored.Delivered(), 0u);  // reject-and-reset, not half-restored
  EXPECT_EQ(faulty.Stats().Count(io::Fault::kOpenFail), 4u);  // full budget
}

// --- rotation racing the reader -----------------------------------------------

TEST_F(ChaosTest, RotationDuringFaultyReadsKeepsAccountingConsistent) {
  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 0.5;
  config.max_consecutive = 2;
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  TailReader<logs::MemoryErrorRecord> reader(paths_.memory_errors,
                                             logs::IngestPolicy{},
                                             RetryingConfig().io_retry);
  std::uint64_t delivered = 0;
  const auto sink = [&delivered](const logs::MemoryErrorRecord&) {
    ++delivered;
  };
  ASSERT_NE(reader.Poll(sink), TailStatus::kMissing);  // retry absorbs faults
  const std::uint64_t before_rotation = delivered;
  ASSERT_GT(before_rotation, 0u);

  // Rotate: replace the log with a shorter file (its own header + a prefix
  // of the same records).  The reader restarts at byte 0; dedup recognises
  // every re-read record, so delivery and parse accounting stay exact.
  const auto bytes = io::DefaultIo().ReadFile(paths_.memory_errors);
  ASSERT_TRUE(bytes.has_value());
  const std::size_t cut = bytes->find('\n', bytes->size() / 2);
  ASSERT_NE(cut, std::string::npos);
  ASSERT_TRUE(
      io::DefaultIo().WriteFile(paths_.memory_errors, bytes->substr(0, cut + 1)));

  EXPECT_EQ(reader.Poll(sink), TailStatus::kRotated);
  reader.Finish(sink);
  EXPECT_EQ(reader.Rotations(), 1u);
  // Every re-read record was recognised as a duplicate and dropped, so
  // delivery equals unique parses — no record delivered twice, none lost.
  EXPECT_GT(reader.Report().duplicates_removed, 0u);
  EXPECT_EQ(delivered, reader.Report().stats.parsed -
                           reader.Report().duplicates_removed);
}

// --- degradable: a persistently sick secondary stream -------------------------

TEST_F(ChaosTest, PersistentHetStreamLossDegradesToTheMissingStreamReport) {
  // Golden for degradation: the same dataset with het_events absent.
  const std::string degraded_dir = dir_ + "/no_het";
  std::filesystem::create_directories(degraded_dir);
  const auto degraded_paths = core::DatasetPaths::InDirectory(degraded_dir);
  std::filesystem::copy_file(paths_.memory_errors, degraded_paths.memory_errors);
  StreamMonitor no_het(degraded_paths, MonitorConfig{});
  ASSERT_EQ(no_het.Finish(), MonitorStatus::kAdvanced);
  ASSERT_TRUE(no_het.HetMissing());
  const std::string degraded_golden = RenderAll(no_het, logs::IngestPolicy{});
  ASSERT_NE(degraded_golden, golden_);

  // Now make ONLY the het stream persistently unreadable in the full
  // dataset: the pipeline must degrade to exactly that report — quality
  // caveats, zero silent loss on the healthy stream.
  io::FaultConfig config;
  config.seed = ChaosSeed();
  config.open_fail = 1.0;
  config.map_fail = 1.0;
  config.max_consecutive = 0;
  config.path_filter = "het_events";
  io::FaultyIo faulty(config);
  io::ScopedIo scope(faulty);

  StreamMonitor monitor(paths_, RetryingConfig());
  ASSERT_EQ(monitor.Finish(), MonitorStatus::kAdvanced);
  EXPECT_TRUE(monitor.HetMissing());
  EXPECT_TRUE(monitor.Quality().stream_missing);
  EXPECT_EQ(RenderAll(monitor, logs::IngestPolicy{}), degraded_golden);
}

// --- determinism --------------------------------------------------------------

TEST_F(ChaosTest, SameSeedSameFaultScheduleSameOutcome) {
  const auto run = [&](std::uint64_t seed) {
    io::FaultConfig config;
    config.seed = seed;
    config.open_fail = 0.4;
    config.map_fail = 0.3;
    config.max_consecutive = 2;
    io::FaultyIo faulty(config);
    io::ScopedIo scope(faulty);
    StreamMonitor monitor(paths_, RetryingConfig());
    for (int i = 0; i < 8; ++i) (void)monitor.Poll();
    (void)monitor.Finish();
    return std::make_tuple(RenderAll(monitor, logs::IngestPolicy{}),
                           faulty.Stats().Total(), monitor.IoRetries());
  };
  const auto first = run(ChaosSeed());
  const auto second = run(ChaosSeed());
  EXPECT_EQ(first, second);
  EXPECT_EQ(std::get<0>(first), golden_);  // and still byte-identical
  EXPECT_GT(std::get<1>(first), 0u);
}

}  // namespace
}  // namespace astra::stream
