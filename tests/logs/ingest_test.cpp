// Hardened ingest layer: header-drift repair, dedup, windowed re-sort,
// malformed accounting, strict/lenient policy and writer failure surfacing.
#include "logs/ingest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logs/log_file.hpp"
#include "logs/serialize.hpp"

namespace astra::logs {
namespace {

MemoryErrorRecord MakeRecord(std::int64_t offset_s, NodeId node = 3) {
  MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 6, 15, 12, 0, 0).AddSeconds(offset_s);
  r.node = node;
  r.slot = DimmSlot::C;
  r.socket = SocketOfSlot(r.slot);
  r.rank = 1;
  r.bank = 4;
  r.bit_position = EncodeRecordedBit(17, 2);
  r.physical_address = 0xdeadbeefULL + static_cast<std::uint64_t>(offset_s);
  r.syndrome = 0x1234;
  return r;
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_ingest_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/stream.tsv";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteLines(const std::vector<std::string>& lines) {
    std::ofstream out(path_);
    for (const auto& line : lines) out << line << '\n';
  }

  std::vector<MemoryErrorRecord> Ingest(const IngestPolicy& policy,
                                        IngestReport* report) {
    const auto records =
        IngestAllRecords<MemoryErrorRecord>(path_, policy, report);
    EXPECT_TRUE(records.has_value());
    return records.value_or(std::vector<MemoryErrorRecord>{});
  }

  std::string dir_;
  std::string path_;
};

TEST(ClassifyMalformedTest, DistinguishesReasons) {
  const std::size_t fields = 11;
  EXPECT_EQ(ClassifyMalformed("only\tthree\tfields", fields),
            MalformedReason::kFieldCount);
  EXPECT_EQ(ClassifyMalformed(
                "not-a-time\t0\t0\tCE\tA\t-\t0\t0\t0\t0x0\t0x0", fields),
            MalformedReason::kBadTimestamp);
  EXPECT_EQ(ClassifyMalformed(
                "2019-06-15 12:34:56\t0\t0\tCE\tA\t-\t0\t0\tWAT\t0x0\t0x0",
                fields),
            MalformedReason::kBadFieldValue);
}

TEST(HeaderMapTest, CanonicalHeaderIsIdentity) {
  const auto map = HeaderMap::Build(MemoryErrorHeader(), MemoryErrorHeader());
  ASSERT_TRUE(map.has_value());
  EXPECT_TRUE(map->Identity());
}

TEST(HeaderMapTest, AliasOnlyRenameKeepsOrder) {
  const auto map = HeaderMap::Build(
      MemoryErrorHeader(),
      "ts\tnode_id\tskt\tfailure_type\tdimm_slot\trow\trank\tbank\tbit\taddr\tsynd");
  ASSERT_TRUE(map.has_value());
  EXPECT_TRUE(map->Identity());  // same columns, same order
}

TEST(HeaderMapTest, PermutedColumnsProjectBack) {
  // node and timestamp swapped, syndrome aliased.
  const auto map = HeaderMap::Build(
      MemoryErrorHeader(),
      "node\ttimestamp\tsocket\ttype\tslot\trow\trank\tbank\tbit\tphysaddr\tsynd");
  ASSERT_TRUE(map.has_value());
  EXPECT_FALSE(map->Identity());

  const MemoryErrorRecord original = MakeRecord(0, 7);
  const std::string canonical_line = FormatRecord(original);
  const auto fields = SplitView(canonical_line, '\t');
  // Build the drifted line by swapping the first two fields.
  std::string drifted(fields[1]);
  drifted += '\t';
  drifted += fields[0];
  for (std::size_t i = 2; i < fields.size(); ++i) {
    drifted += '\t';
    drifted += fields[i];
  }
  std::string projected;
  ASSERT_TRUE(map->ProjectLine(SplitView(drifted, '\t'), projected));
  const auto parsed = ParseMemoryError(projected);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(HeaderMapTest, UnrecognisableHeaderIsRejected) {
  EXPECT_FALSE(HeaderMap::Build(MemoryErrorHeader(),
                                "2019-06-15 12:34:56\t0\t0\tCE\tA\t-\t0\t0\t0"
                                "\t0x0\t0x0")
                   .has_value());
  EXPECT_FALSE(HeaderMap::Build(MemoryErrorHeader(), "a\tb\tc").has_value());
}

TEST_F(IngestTest, CleanFileFullAccounting) {
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 20; ++i) lines.push_back(FormatRecord(MakeRecord(i * 60)));
  WriteLines(lines);

  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  EXPECT_EQ(records.size(), 20u);
  EXPECT_EQ(report.stats.total_lines, 20u);
  EXPECT_EQ(report.stats.parsed, 20u);
  EXPECT_EQ(report.stats.malformed, 0u);
  EXPECT_TRUE(report.Consistent());
  EXPECT_FALSE(report.budget_exceeded);
  EXPECT_TRUE(report.repairs.empty());
}

TEST_F(IngestTest, HeaderlessFileStartsWithData) {
  WriteLines({FormatRecord(MakeRecord(0)), FormatRecord(MakeRecord(60))});
  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(report.stats.parsed, 2u);
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, ExactDuplicatesDropped) {
  const std::string line = FormatRecord(MakeRecord(0));
  WriteLines({std::string(MemoryErrorHeader()), line, line, line,
              FormatRecord(MakeRecord(60))});
  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(report.duplicates_removed, 2u);
  EXPECT_EQ(report.Delivered(), 2u);
  EXPECT_TRUE(report.Consistent());
  EXPECT_FALSE(report.repairs.empty());
}

TEST_F(IngestTest, DedupDisabledKeepsDuplicates) {
  const std::string line = FormatRecord(MakeRecord(0));
  WriteLines({std::string(MemoryErrorHeader()), line, line});
  IngestPolicy policy;
  policy.dedup = false;
  IngestReport report;
  const auto records = Ingest(policy, &report);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(report.duplicates_removed, 0u);
}

TEST_F(IngestTest, WindowedReSortRepairsBoundedDisorder) {
  // 10:00, 10:02, 10:01 — the straggler is within any reasonable window.
  WriteLines({std::string(MemoryErrorHeader()), FormatRecord(MakeRecord(0)),
              FormatRecord(MakeRecord(120)), FormatRecord(MakeRecord(60))});
  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LE(records[0].timestamp, records[1].timestamp);
  EXPECT_LE(records[1].timestamp, records[2].timestamp);
  EXPECT_EQ(report.out_of_order_seen, 1u);
  EXPECT_EQ(report.reordered, 1u);
  EXPECT_EQ(report.order_violations, 0u);
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, BeyondWindowCountsAsOrderViolation) {
  IngestPolicy policy;
  policy.reorder_window_seconds = 10;
  // The +100 record forces the re-sort buffer to flush the first record;
  // the -500 straggler then lands behind what was already delivered.
  WriteLines({std::string(MemoryErrorHeader()), FormatRecord(MakeRecord(0)),
              FormatRecord(MakeRecord(100)), FormatRecord(MakeRecord(-500))});
  IngestReport report;
  const auto records = Ingest(policy, &report);
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(report.order_violations, 1u);
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, ReorderDisabledDeliversArrivalOrder) {
  IngestPolicy policy;
  policy.reorder_window_seconds = 0;
  WriteLines({std::string(MemoryErrorHeader()), FormatRecord(MakeRecord(120)),
              FormatRecord(MakeRecord(0))});
  IngestReport report;
  const auto records = Ingest(policy, &report);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GT(records[0].timestamp, records[1].timestamp);
  EXPECT_EQ(report.order_violations, 1u);
}

TEST_F(IngestTest, DriftedHeaderRepairedEndToEnd) {
  const MemoryErrorRecord original = MakeRecord(0, 11);
  const std::string canonical_line = FormatRecord(original);
  const auto fields = SplitView(canonical_line, '\t');
  std::string drifted(fields[1]);
  drifted += '\t';
  drifted += fields[0];
  for (std::size_t i = 2; i < fields.size(); ++i) {
    drifted += '\t';
    drifted += fields[i];
  }
  WriteLines({"node_id\tts\tsocket\ttype\tslot\trow\trank\tbank\tbit\tphysaddr"
              "\tsyndrome",
              drifted});
  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], original);
  EXPECT_TRUE(report.header_remapped);
  EXPECT_FALSE(report.repairs.empty());
}

TEST_F(IngestTest, RemapDisabledTreatsDriftedHeaderAsData) {
  IngestPolicy policy = IngestPolicy::Raw();
  WriteLines({"node_id\tts\tsocket\ttype\tslot\trow\trank\tbank\tbit\tphysaddr"
              "\tsyndrome",
              FormatRecord(MakeRecord(0))});
  IngestReport report;
  const auto records = Ingest(policy, &report);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_FALSE(report.header_remapped);
  EXPECT_EQ(report.stats.malformed, 1u);  // the drifted header line
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, MalformedReasonBreakdown) {
  WriteLines({std::string(MemoryErrorHeader()),
              FormatRecord(MakeRecord(0)),
              "torn\tline",                                             // field count
              "garbage-time\t0\t0\tCE\tA\t-\t0\t0\t0\t0x0\t0x0",       // timestamp
              "2019-06-15 12:34:56\t0\t0\tCE\tA\t-\t0\t0\tX\t0x0\t0x0"});  // value
  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(report.stats.malformed, 3u);
  EXPECT_EQ(report.malformed_by_reason[static_cast<std::size_t>(
                MalformedReason::kFieldCount)],
            1u);
  EXPECT_EQ(report.malformed_by_reason[static_cast<std::size_t>(
                MalformedReason::kBadTimestamp)],
            1u);
  EXPECT_EQ(report.malformed_by_reason[static_cast<std::size_t>(
                MalformedReason::kBadFieldValue)],
            1u);
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, StrictFailsFastOverBudget) {
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 300; ++i) {
    lines.push_back(i % 2 == 0 ? FormatRecord(MakeRecord(i)) : "###garbage###");
  }
  WriteLines(lines);

  IngestReport report;
  const auto records = Ingest(IngestPolicy::Strict(0.05), &report);
  EXPECT_TRUE(report.aborted);
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_FALSE(report.AcceptedBy(IngestPolicy::Strict(0.05)));
  EXPECT_LT(report.stats.total_lines, 300u);  // stopped early
  EXPECT_GE(report.stats.total_lines, IngestPolicy::kBudgetGraceLines);
  EXPECT_TRUE(report.Consistent());
  EXPECT_EQ(records.size(), report.Delivered());
}

TEST_F(IngestTest, LenientQuarantinesAndContinues) {
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 300; ++i) {
    lines.push_back(i % 2 == 0 ? FormatRecord(MakeRecord(i)) : "###garbage###");
  }
  WriteLines(lines);

  IngestReport report;
  const auto records = Ingest(IngestPolicy{}, &report);
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.budget_exceeded);  // flagged, not fatal
  EXPECT_TRUE(report.AcceptedBy(IngestPolicy{}));
  EXPECT_EQ(report.stats.total_lines, 300u);
  EXPECT_EQ(report.stats.parsed, 150u);
  EXPECT_EQ(report.stats.malformed, 150u);
  EXPECT_EQ(records.size(), 150u);
  EXPECT_TRUE(report.Consistent());
}

TEST_F(IngestTest, MissingFileReturnsNullopt) {
  IngestReport report;
  EXPECT_FALSE(IngestAllRecords<MemoryErrorRecord>(dir_ + "/nope.tsv",
                                                   IngestPolicy{}, &report)
                   .has_value());
}

TEST(LogFileWriterTest, UnwritablePathSurfacesFailure) {
  LogFileWriter<MemoryErrorRecord> writer("/no/such/dir/out.tsv");
  EXPECT_FALSE(writer.Ok());
  writer.Append(MakeRecord(0));  // must be a safe no-op
  EXPECT_EQ(writer.Written(), 0u);
  EXPECT_FALSE(writer.Finish());
}

TEST(LogFileWriterTest, FullDeviceSurfacesFailureOnFinish) {
  // /dev/full accepts the open but fails every flush with ENOSPC — exactly
  // the deferred-failure case Finish() exists to catch.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  LogFileWriter<MemoryErrorRecord> writer("/dev/full");
  for (int i = 0; i < 20000 && writer.Ok(); ++i) writer.Append(MakeRecord(i));
  EXPECT_FALSE(writer.Finish());
  EXPECT_FALSE(writer.Ok());
}

}  // namespace
}  // namespace astra::logs
