// Corruption injector properties: determinism, severity scaling, per-mode
// damage, and the acceptance round trip — any corrupted dataset must ingest
// leniently with full line accounting and reject cleanly under strict mode.
#include "logs/corruption.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logs/ingest.hpp"
#include "logs/log_file.hpp"
#include "logs/serialize.hpp"
#include "util/file_io.hpp"

namespace astra::logs {
namespace {

namespace fs = std::filesystem;

// A small synthetic dataset: several nodes, several days, strictly ordered.
void WriteMemoryErrors(const std::string& path, int lines) {
  LogFileWriter<MemoryErrorRecord> writer(path);
  for (int i = 0; i < lines; ++i) {
    MemoryErrorRecord r;
    r.timestamp = SimTime::FromCivil(2019, 3, 1).AddSeconds(i * 900);
    r.node = static_cast<NodeId>(i % 12);
    r.slot = static_cast<DimmSlot>(i % kDimmSlotsPerNode);
    r.socket = SocketOfSlot(r.slot);
    r.rank = static_cast<RankId>(i % kRanksPerDimm);
    r.bank = static_cast<BankId>(i % kBanksPerRank);
    r.bit_position = EncodeRecordedBit(i % 72, 1);
    r.physical_address = 0x4000ULL + static_cast<std::uint64_t>(i) * 64;
    r.syndrome = static_cast<std::uint32_t>(0xa000 + i);
    writer.Append(r);
  }
  ASSERT_TRUE(writer.Finish());
}

void WriteHetEvents(const std::string& path, int lines) {
  LogFileWriter<HetRecord> writer(path);
  for (int i = 0; i < lines; ++i) {
    HetRecord r;
    r.timestamp = SimTime::FromCivil(2019, 3, 2).AddSeconds(i * 7200);
    r.node = static_cast<NodeId>(i % 8);
    r.event = static_cast<HetEventType>(i % kHetEventTypeCount);
    r.severity = static_cast<HetSeverity>(i % 3);
    r.socket = static_cast<std::int8_t>(i % 2);
    r.slot = static_cast<std::int8_t>(i % 16);
    writer.Append(r);
  }
  ASSERT_TRUE(writer.Finish());
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs discovered cases in parallel, and a
    // shared directory would let one case's TearDown delete another's files.
    dir_ = ::testing::TempDir() + "astra_corruption_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string MakeDataset(const std::string& name, int lines = 400) {
    const std::string sub = dir_ + "/" + name;
    fs::create_directories(sub);
    WriteMemoryErrors(sub + "/memory_errors.tsv", lines);
    WriteHetEvents(sub + "/het_events.tsv", lines / 8);
    return sub;
  }

  std::string dir_;
};

TEST_F(CorruptionTest, SameSeedProducesIdenticalBytes) {
  const std::string a = MakeDataset("a");
  const std::string b = MakeDataset("b");

  CorruptionConfig config;
  config.seed = 42;
  config.SetAll(0.6);
  const CorruptionInjector injector(config);
  ASSERT_TRUE(injector.CorruptDirectory(a).has_value());
  ASSERT_TRUE(injector.CorruptDirectory(b).has_value());

  for (const char* file : {"/memory_errors.tsv", "/het_events.tsv"}) {
    const auto bytes_a = ReadFileBytes(a + file);
    const auto bytes_b = ReadFileBytes(b + file);
    ASSERT_EQ(bytes_a.has_value(), bytes_b.has_value()) << file;
    if (bytes_a) EXPECT_EQ(*bytes_a, *bytes_b) << file;
  }
}

TEST_F(CorruptionTest, DifferentSeedsDiverge) {
  const std::string a = MakeDataset("a");
  const std::string b = MakeDataset("b");
  CorruptionConfig config;
  config.SetAll(0.6);
  config.seed = 1;
  ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(a).has_value());
  config.seed = 2;
  ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(b).has_value());
  EXPECT_NE(ReadFileBytes(a + "/memory_errors.tsv"),
            ReadFileBytes(b + "/memory_errors.tsv"));
}

TEST_F(CorruptionTest, ZeroSeverityIsByteExactNoOp) {
  const std::string sub = MakeDataset("a");
  const auto before = ReadFileBytes(sub + "/memory_errors.tsv");
  CorruptionConfig config;  // all severities default to 0
  const auto report = CorruptionInjector(config).CorruptDirectory(sub);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->TotalAffected(), 0u);
  EXPECT_EQ(report->files_corrupted, 0u);
  EXPECT_EQ(ReadFileBytes(sub + "/memory_errors.tsv"), before);
}

TEST_F(CorruptionTest, EveryModeDamagesAtHighSeverity) {
  for (int m = 0; m < kCorruptionModeCount; ++m) {
    const auto mode = static_cast<CorruptionMode>(m);
    // Per-file damage is probabilistic; a handful of seeds makes each mode's
    // trigger overwhelmingly likely while staying deterministic.
    std::uint64_t affected = 0;
    for (std::uint64_t seed = 1; seed <= 5 && affected == 0; ++seed) {
      const std::string sub =
          MakeDataset("m" + std::to_string(m) + "s" + std::to_string(seed));
      CorruptionConfig config;
      config.seed = seed;
      config.Set(mode, 1.0);
      const auto report = CorruptionInjector(config).CorruptDirectory(sub);
      ASSERT_TRUE(report.has_value());
      affected = report->AffectedBy(mode) + report->bytes_chopped +
                 report->files_dropped;
    }
    EXPECT_GT(affected, 0u) << "mode " << CorruptionModeName(mode)
                            << " never produced damage";
  }
}

TEST_F(CorruptionTest, MemoryErrorsProtectedFromWholeFileDrop) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string sub = MakeDataset("p" + std::to_string(seed), 60);
    CorruptionConfig config;
    config.seed = seed;
    config.Set(CorruptionMode::kMissingData, 1.0);
    ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(sub).has_value());
    EXPECT_TRUE(fs::exists(sub + "/memory_errors.tsv")) << "seed " << seed;
  }
}

// The acceptance property: simulate → corrupt (any mode × severity × seed) →
// lenient ingest never crashes and always accounts for every line.
TEST_F(CorruptionTest, RoundTripAccountsForEveryLine) {
  int configurations = 0;
  for (int m = 0; m < kCorruptionModeCount; ++m) {
    for (const double severity : {0.3, 1.0}) {
      for (const std::uint64_t seed : {1ULL, 7ULL}) {
        const std::string sub = MakeDataset(
            "rt" + std::to_string(m) + "_" +
            std::to_string(static_cast<int>(severity * 10)) + "_" +
            std::to_string(seed));
        CorruptionConfig config;
        config.seed = seed;
        config.Set(static_cast<CorruptionMode>(m), severity);
        ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(sub).has_value());

        IngestReport report;
        const auto records = IngestAllRecords<MemoryErrorRecord>(
            sub + "/memory_errors.tsv", IngestPolicy{}, &report);
        ASSERT_TRUE(records.has_value());
        EXPECT_TRUE(report.Consistent())
            << CorruptionModeName(static_cast<CorruptionMode>(m)) << " sev "
            << severity << " seed " << seed;
        EXPECT_EQ(report.stats.parsed + report.stats.malformed,
                  report.stats.total_lines);
        EXPECT_EQ(records->size(), report.Delivered());
        ++configurations;
      }
    }
  }
  EXPECT_EQ(configurations, kCorruptionModeCount * 2 * 2);
}

TEST_F(CorruptionTest, AllModesAtOnceStillIngests) {
  const std::string sub = MakeDataset("all", 600);
  CorruptionConfig config;
  config.seed = 99;
  config.SetAll(0.9);
  ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(sub).has_value());

  IngestReport report;
  const auto records = IngestAllRecords<MemoryErrorRecord>(
      sub + "/memory_errors.tsv", IngestPolicy{}, &report);
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(report.Consistent());
}

TEST_F(CorruptionTest, StrictRejectsHeavyGarbage) {
  const std::string sub = MakeDataset("strict", 3000);
  CorruptionConfig config;
  config.seed = 5;
  config.Set(CorruptionMode::kEncodingGarbage, 1.0);  // ~13% of lines garbled
  ASSERT_TRUE(CorruptionInjector(config).CorruptDirectory(sub).has_value());

  IngestReport report;
  const auto records = IngestAllRecords<MemoryErrorRecord>(
      sub + "/memory_errors.tsv", IngestPolicy::Strict(0.05), &report);
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.AcceptedBy(IngestPolicy::Strict(0.05)));
  EXPECT_TRUE(report.Consistent());
}

TEST_F(CorruptionTest, InjectedHeaderDriftStaysRepairable) {
  // The injector and the reader share one alias table, so injected schema
  // drift must always be repairable: no quarantined lines from drift alone.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string sub = MakeDataset("hd" + std::to_string(seed), 200);
    CorruptionConfig config;
    config.seed = seed;
    config.Set(CorruptionMode::kHeaderDrift, 1.0);
    const auto damage = CorruptionInjector(config).CorruptDirectory(sub);
    ASSERT_TRUE(damage.has_value());

    IngestReport report;
    const auto records = IngestAllRecords<MemoryErrorRecord>(
        sub + "/memory_errors.tsv", IngestPolicy{}, &report);
    ASSERT_TRUE(records.has_value());
    EXPECT_EQ(report.stats.malformed, 0u) << "seed " << seed;
    EXPECT_EQ(records->size(), 200u) << "seed " << seed;
    if (damage->AffectedBy(CorruptionMode::kHeaderDrift) > 0) {
      EXPECT_TRUE(report.header_remapped) << "seed " << seed;
    }
  }
}

TEST_F(CorruptionTest, CorruptFileOnMissingPathFails) {
  CorruptionConfig config;
  config.SetAll(0.5);
  EXPECT_FALSE(CorruptionInjector(config)
                   .CorruptFile(dir_ + "/does_not_exist.tsv")
                   .has_value());
}

}  // namespace
}  // namespace astra::logs
