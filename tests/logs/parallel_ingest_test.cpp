// Parallel sharded ingest: byte-identical semantics versus the serial
// hardened reader at every thread count — same records in the same order,
// same quarantine/dedup/re-sort accounting, same repair log, and the same
// strict-mode abort point.
#include "logs/parallel_ingest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logs/serialize.hpp"

namespace astra::logs {
namespace {

MemoryErrorRecord MakeRecord(std::int64_t offset_s, NodeId node = 3) {
  MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 6, 15, 12, 0, 0).AddSeconds(offset_s);
  r.node = node;
  r.slot = DimmSlot::C;
  r.socket = SocketOfSlot(r.slot);
  r.rank = 1;
  r.bank = 4;
  r.bit_position = EncodeRecordedBit(17, 2);
  r.physical_address = 0xdeadbeefULL + static_cast<std::uint64_t>(offset_s);
  r.syndrome = 0x1234;
  return r;
}

void ExpectReportsEqual(const IngestReport& serial, const IngestReport& parallel) {
  EXPECT_EQ(serial.stats.total_lines, parallel.stats.total_lines);
  EXPECT_EQ(serial.stats.parsed, parallel.stats.parsed);
  EXPECT_EQ(serial.stats.malformed, parallel.stats.malformed);
  EXPECT_EQ(serial.malformed_by_reason, parallel.malformed_by_reason);
  EXPECT_EQ(serial.duplicates_removed, parallel.duplicates_removed);
  EXPECT_EQ(serial.out_of_order_seen, parallel.out_of_order_seen);
  EXPECT_EQ(serial.reordered, parallel.reordered);
  EXPECT_EQ(serial.order_violations, parallel.order_violations);
  EXPECT_EQ(serial.header_remapped, parallel.header_remapped);
  EXPECT_EQ(serial.budget_exceeded, parallel.budget_exceeded);
  EXPECT_EQ(serial.aborted, parallel.aborted);
  EXPECT_EQ(serial.repairs, parallel.repairs);
  EXPECT_TRUE(parallel.Consistent());
}

class ParallelIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_parallel_ingest_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/stream.tsv";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteLines(const std::vector<std::string>& lines) {
    std::ofstream out(path_);
    for (const auto& line : lines) out << line << '\n';
    // The file must be large enough to engage the sharded path, not its
    // small-file serial fallback.
    ASSERT_GE(std::filesystem::file_size(path_), kParallelIngestMinBytes);
  }

  // The core assertion: the parallel path is indistinguishable from the
  // serial one at every thread count.
  void ExpectMatchesSerial(const IngestPolicy& policy) {
    IngestReport serial_report;
    const auto serial =
        IngestAllRecords<MemoryErrorRecord>(path_, policy, &serial_report);
    ASSERT_TRUE(serial.has_value());
    for (const unsigned threads : {2u, 3u, 8u}) {
      IngestReport parallel_report;
      const auto parallel = ParallelIngestAllRecords<MemoryErrorRecord>(
          path_, policy, threads, &parallel_report);
      ASSERT_TRUE(parallel.has_value()) << threads << " threads";
      EXPECT_EQ(*serial, *parallel) << threads << " threads";
      ExpectReportsEqual(serial_report, parallel_report);
    }
  }

  std::string dir_;
  std::string path_;
};

TEST_F(ParallelIngestTest, CleanSortedFile) {
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 2000; ++i) lines.push_back(FormatRecord(MakeRecord(i * 60)));
  WriteLines(lines);
  ExpectMatchesSerial(IngestPolicy{});
}

TEST_F(ParallelIngestTest, MissingHeaderTreatsFirstLineAsData) {
  std::vector<std::string> lines;
  for (int i = 0; i < 2000; ++i) lines.push_back(FormatRecord(MakeRecord(i * 60)));
  WriteLines(lines);
  ExpectMatchesSerial(IngestPolicy{});
}

TEST_F(ParallelIngestTest, DirtyMixOfDamage) {
  // Malformed lines, exact duplicates, small out-of-order jitter (repairable
  // within the window) and far stragglers (order violations) — all at once.
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 2500; ++i) {
    std::int64_t offset = i * 60;
    if (i % 13 == 0) offset -= 300;    // within the reorder window
    if (i % 411 == 0) offset -= 90000; // far behind: delivered out of order
    lines.push_back(FormatRecord(MakeRecord(offset)));
    if (i % 97 == 0) lines.push_back(lines.back());  // exact duplicate
    if (i % 50 == 0) lines.push_back("this line is structurally hopeless");
    if (i % 73 == 0) {
      lines.push_back(
          "not-a-time\t3\t0\tCE\tC\t-\t1\t4\t529\t0xdeadbeef\t0x1234");
    }
  }
  IngestPolicy policy;
  policy.reorder_window_seconds = 600;
  WriteLines(lines);
  ExpectMatchesSerial(policy);
}

TEST_F(ParallelIngestTest, DriftedHeaderRemapsIdentically) {
  // node and timestamp swapped: every data line needs column projection.
  std::vector<std::string> lines{
      "node\ttimestamp\tsocket\ttype\tslot\trow\trank\tbank\tbit\tphysaddr"
      "\tsyndrome"};
  for (int i = 0; i < 2000; ++i) {
    const std::string canonical = FormatRecord(MakeRecord(i * 60));
    const auto fields = SplitView(canonical, '\t');
    std::string drifted(fields[1]);
    drifted += '\t';
    drifted += fields[0];
    for (std::size_t f = 2; f < fields.size(); ++f) {
      drifted += '\t';
      drifted += fields[f];
    }
    lines.push_back(drifted);
  }
  WriteLines(lines);
  ExpectMatchesSerial(IngestPolicy{});

  IngestReport report;
  const auto records = ParallelIngestAllRecords<MemoryErrorRecord>(
      path_, IngestPolicy{}, 8, &report);
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(report.header_remapped);
  EXPECT_EQ(records->front(), MakeRecord(0));
}

TEST_F(ParallelIngestTest, StrictAbortStopsAtTheSameLine) {
  // 20% malformed against a 5% budget: strict mode must abort, and the
  // abort line (hence total_lines and the delivered prefix) must not depend
  // on the thread count.
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 2000; ++i) {
    lines.push_back(FormatRecord(MakeRecord(i * 60)));
    if (i % 5 == 0) lines.push_back("garbage\tline");
  }
  IngestPolicy policy;
  policy.mode = IngestPolicy::Mode::kStrict;
  policy.max_malformed_fraction = 0.05;
  WriteLines(lines);
  ExpectMatchesSerial(policy);

  IngestReport report;
  const auto records = ParallelIngestAllRecords<MemoryErrorRecord>(
      path_, policy, 8, &report);
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(report.aborted);
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_LT(report.stats.total_lines, 2400u);  // stopped early, not at EOF
}

TEST_F(ParallelIngestTest, LenientBudgetOverrunIsFlaggedNotAborted) {
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 2000; ++i) {
    lines.push_back(FormatRecord(MakeRecord(i * 60)));
    if (i % 5 == 0) lines.push_back("garbage\tline");
  }
  IngestPolicy policy;  // lenient
  policy.max_malformed_fraction = 0.05;
  WriteLines(lines);
  ExpectMatchesSerial(policy);

  IngestReport report;
  const auto records = ParallelIngestAllRecords<MemoryErrorRecord>(
      path_, policy, 4, &report);
  ASSERT_TRUE(records.has_value());
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(records->size(), 2000u);
}

TEST_F(ParallelIngestTest, MoreThreadsThanLinesStillExact) {
  // Shard count far above what the byte range supports: the chunker caps it.
  std::vector<std::string> lines{std::string(MemoryErrorHeader())};
  for (int i = 0; i < 1200; ++i) lines.push_back(FormatRecord(MakeRecord(i * 60)));
  WriteLines(lines);

  IngestReport serial_report;
  const auto serial =
      IngestAllRecords<MemoryErrorRecord>(path_, IngestPolicy{}, &serial_report);
  ASSERT_TRUE(serial.has_value());
  IngestReport parallel_report;
  const auto parallel = ParallelIngestAllRecords<MemoryErrorRecord>(
      path_, IngestPolicy{}, 64, &parallel_report);
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(*serial, *parallel);
  ExpectReportsEqual(serial_report, parallel_report);
}

}  // namespace
}  // namespace astra::logs
