// Robustness properties of the log parsers: byte-level mutations of valid
// lines must never crash, and whatever parses must satisfy the record
// invariants.  Real syslog extracts contain truncation, corruption and
// encoding damage; §2.2's "we exclude these data points" only works if the
// ingest layer survives them.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logs/log_file.hpp"
#include "logs/serialize.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace astra::logs {
namespace {

MemoryErrorRecord TemplateRecord() {
  MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 6, 15, 12, 34, 56);
  r.node = 1000;
  r.slot = DimmSlot::M;
  r.socket = SocketOfSlot(r.slot);
  r.rank = 1;
  r.bank = 9;
  r.bit_position = EncodeRecordedBit(33, 1);
  r.physical_address = 0x1abcdef012ULL;
  r.syndrome = 0xcafef00d;
  return r;
}

std::string Mutate(std::string line, Rng& rng) {
  if (line.empty()) return line;
  const int op = static_cast<int>(rng.UniformInt(std::uint64_t{4}));
  const std::size_t pos = rng.UniformInt(line.size());
  switch (op) {
    case 0:  // flip a byte to an arbitrary value (including NUL-ish range)
      line[pos] = static_cast<char>(1 + rng.UniformInt(std::uint64_t{254}));
      break;
    case 1:  // delete a byte
      line.erase(pos, 1);
      break;
    case 2:  // duplicate a byte
      line.insert(pos, 1, line[pos]);
      break;
    case 3:  // truncate
      line.resize(pos);
      break;
  }
  return line;
}

// Invariants any successfully parsed record must satisfy.
void CheckInvariants(const MemoryErrorRecord& r) {
  EXPECT_GE(r.node, 0);
  EXPECT_LT(r.node, kNumNodes);
  EXPECT_EQ(SocketOfSlot(r.slot), r.socket);
  EXPECT_GE(r.rank, 0);
  EXPECT_LT(r.rank, kRanksPerDimm);
  EXPECT_GE(r.bank, 0);
  EXPECT_LT(r.bank, kBanksPerRank);
  EXPECT_TRUE(r.row == kNoRowInfo || (r.row >= 0 && r.row < kRowsPerBank));
}

// Reference scalar parser: the pre-SWAR ParseMemoryError, verbatim in
// structure — heap-allocating SplitView plus the from_chars-backed numeric
// helpers.  The production parser replaced the mechanics (ScanFields,
// ParseDecimalI64/ParseHexU64) but must accept and reject the exact same
// language; the parity fuzz below holds the two against each other.
std::optional<MemoryErrorRecord> ReferenceParseMemoryError(
    std::string_view line) {
  const auto fields = SplitView(line, '\t');
  if (fields.size() != 11) return std::nullopt;

  MemoryErrorRecord r;
  SimTime ts;
  if (!SimTime::Parse(fields[0], ts)) return std::nullopt;
  const auto node = ParseInt64(fields[1]);
  const auto socket = ParseInt64(fields[2]);
  const auto type = FailureTypeFromName(fields[3]);
  if (!node || *node < 0 || *node >= kNumNodes) return std::nullopt;
  if (!socket || !type) return std::nullopt;
  if (*socket < 0 || *socket >= kSocketsPerNode) return std::nullopt;
  if (fields[4].size() != 1) return std::nullopt;
  const auto slot = DimmSlotFromLetter(fields[4][0]);
  if (!slot || SocketOfSlot(*slot) != *socket) return std::nullopt;

  r.timestamp = ts;
  r.node = static_cast<NodeId>(*node);
  r.socket = static_cast<SocketId>(*socket);
  r.type = *type;
  r.slot = *slot;

  if (fields[5] == "-") {
    r.row = kNoRowInfo;
  } else {
    const auto row = ParseInt64(fields[5]);
    if (!row || *row < 0 || *row >= kRowsPerBank) return std::nullopt;
    r.row = static_cast<std::int32_t>(*row);
  }

  const auto rank = ParseInt64(fields[6]);
  const auto bank = ParseInt64(fields[7]);
  const auto bit = ParseInt64(fields[8]);
  const auto addr = ParseUint64(fields[9], 16);
  const auto syndrome = ParseUint64(fields[10], 16);
  if (!rank || !bank || !bit || !addr || !syndrome) return std::nullopt;
  if (*rank < 0 || *rank >= kRanksPerDimm) return std::nullopt;
  if (*bank < 0 || *bank >= kBanksPerRank) return std::nullopt;
  if (*bit < 0 || *bit > 0x3FF) return std::nullopt;

  r.rank = static_cast<RankId>(*rank);
  r.bank = static_cast<BankId>(*bank);
  r.bit_position = static_cast<std::int32_t>(*bit);
  r.physical_address = *addr;
  r.syndrome = static_cast<std::uint32_t>(*syndrome);
  return r;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, MutatedMemoryErrorLinesNeverCrash) {
  Rng rng(GetParam());
  const std::string base = FormatRecord(TemplateRecord());
  int parsed = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string line = base;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{4}));
    for (int m = 0; m < mutations; ++m) line = Mutate(std::move(line), rng);
    if (const auto record = ParseMemoryError(line)) {
      ++parsed;
      CheckInvariants(*record);
    }
  }
  // Most mutations must be rejected (the format is not accept-everything).
  EXPECT_LT(parsed, 3000);
}

TEST_P(FuzzSeedTest, SwarParserParityWithScalarReference) {
  // The SWAR fast path and the scalar reference must agree on every mutated
  // line: same accept/reject decision, and identical records when accepted.
  Rng rng(GetParam() ^ 0x50a7);
  const std::string base = FormatRecord(TemplateRecord());
  int accepted = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string line = base;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{4}));
    for (int m = 0; m < mutations; ++m) line = Mutate(std::move(line), rng);
    const auto fast = ParseMemoryError(line);
    const auto reference = ReferenceParseMemoryError(line);
    ASSERT_EQ(fast.has_value(), reference.has_value())
        << "trial " << trial << " line: " << line;
    if (fast) {
      ++accepted;
      EXPECT_TRUE(*fast == *reference) << "trial " << trial << " line: " << line;
    }
  }
  // The unmutated base line itself must parse identically too.
  const auto fast = ParseMemoryError(base);
  const auto reference = ReferenceParseMemoryError(base);
  ASSERT_TRUE(fast && reference);
  EXPECT_TRUE(*fast == *reference);
  (void)accepted;
}

TEST_P(FuzzSeedTest, MutatedSensorAndHetLinesNeverCrash) {
  Rng rng(GetParam() ^ 0x5e);
  SensorRecord sensor;
  sensor.timestamp = SimTime::FromCivil(2019, 7, 1);
  sensor.node = 5;
  sensor.sensor = SensorKind::kDcPower;
  sensor.valid = true;
  sensor.value = 301.25;
  HetRecord het;
  het.timestamp = SimTime::FromCivil(2019, 9, 1);
  het.node = 9;
  het.event = HetEventType::kUncorrectableEcc;
  het.severity = HetSeverity::kNonRecoverable;
  het.socket = 1;
  het.slot = 12;

  for (const std::string& base : {FormatRecord(sensor), FormatRecord(het)}) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::string line = base;
      for (int m = 0; m < 3; ++m) line = Mutate(std::move(line), rng);
      (void)ParseSensor(line);
      (void)ParseHet(line);
      (void)ParseInventory(line);
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, MutatedInventoryLinesNeverCrash) {
  Rng rng(GetParam() ^ 0x17c);
  InventoryRecord inventory;
  inventory.scan_date = SimTime::FromCivil(2019, 8, 20);
  inventory.site.kind = ComponentKind::kDimm;
  inventory.site.node = 321;
  inventory.site.index = 7;
  inventory.serial = 0x00facefeedULL;

  const std::string base = FormatRecord(inventory);
  int parsed = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string line = base;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{4}));
    for (int m = 0; m < mutations; ++m) line = Mutate(std::move(line), rng);
    if (const auto record = ParseInventory(line)) {
      ++parsed;
      EXPECT_GE(record->site.node, 0);
      EXPECT_LT(record->site.node, kNumNodes);
      EXPECT_GE(record->site.index, 0);
    }
  }
  EXPECT_LT(parsed, 3000);
}

// Full-file fuzzing: mutate a whole dataset file at the byte level and push
// it through the hardened reader.  No input may crash the ingest, and the
// accounting invariant parsed + malformed == total_lines must always hold.
TEST_P(FuzzSeedTest, MutatedWholeFilesIngestWithFullAccounting) {
  Rng rng(GetParam() ^ 0xf11e);
  const std::string dir = ::testing::TempDir() + "astra_fuzz_file";
  std::filesystem::create_directories(dir);
  const std::string path =
      dir + "/fuzz_" + std::to_string(GetParam()) + ".tsv";

  // A valid base file: header + 50 ordered records.
  std::string base(MemoryErrorHeader());
  base += '\n';
  for (int i = 0; i < 50; ++i) {
    MemoryErrorRecord r = TemplateRecord();
    r.timestamp = r.timestamp.AddSeconds(i * 30);
    r.node = static_cast<NodeId>(i % 40);
    base += FormatRecord(r);
    base += '\n';
  }

  for (int trial = 0; trial < 60; ++trial) {
    std::string content = base;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{40}));
    for (int m = 0; m < mutations && !content.empty(); ++m) {
      const std::size_t pos = rng.UniformInt(content.size());
      switch (static_cast<int>(rng.UniformInt(std::uint64_t{4}))) {
        case 0:  // flip to any byte, newlines included (splices lines)
          content[pos] = static_cast<char>(rng.UniformInt(std::uint64_t{256}));
          break;
        case 1:
          content.erase(pos, 1 + rng.UniformInt(std::uint64_t{8}));
          break;
        case 2:
          content.insert(pos, 1, static_cast<char>(rng.UniformInt(std::uint64_t{256})));
          break;
        case 3:
          content.resize(pos);
          break;
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content;
    }

    IngestReport report;
    const auto records =
        IngestAllRecords<MemoryErrorRecord>(path, IngestPolicy{}, &report);
    ASSERT_TRUE(records.has_value());
    EXPECT_EQ(report.stats.parsed + report.stats.malformed,
              report.stats.total_lines)
        << "trial " << trial;
    EXPECT_TRUE(report.Consistent()) << "trial " << trial;
    EXPECT_EQ(records->size(), report.Delivered()) << "trial " << trial;
    for (const auto& record : *records) CheckInvariants(record);
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL, 7ULL,
                                           8ULL));

TEST(FuzzCorpusTest, PathologicalLinesRejectedCleanly) {
  const char* corpus[] = {
      "\t\t\t\t\t\t\t\t\t\t",
      "2019-06-15 12:34:56\t\t\t\t\t\t\t\t\t\t",
      "9999999999999999999999\t0\t0\tCE\tA\t-\t0\t0\t0\t0x0\t0x0",
      "2019-06-15 12:34:56\t-1\t0\tCE\tA\t-\t0\t0\t0\t0x0\t0x0",
      "2019-06-15 12:34:56\t0\t0\tCE\tA\t-\t0\t0\t-7\t0x0\t0x0",
      "2019-06-15 12:34:56\t0\t0\tCE\tA\t99999999\t0\t0\t0\t0x0\t0x0",
      "\xff\xfe\xfd",
      "CE CE CE CE CE CE CE CE CE CE CE",
  };
  for (const char* line : corpus) {
    EXPECT_FALSE(ParseMemoryError(line).has_value()) << line;
  }
}

}  // namespace
}  // namespace astra::logs
