#include "logs/serialize.hpp"

#include <gtest/gtest.h>

namespace astra::logs {
namespace {

MemoryErrorRecord SampleError() {
  MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 3, 14, 1, 59, 26);
  r.node = 1234;
  r.socket = 1;
  r.type = FailureType::kCorrectable;
  r.slot = DimmSlot::J;
  r.row = kNoRowInfo;
  r.rank = 1;
  r.bank = 13;
  r.bit_position = EncodeRecordedBit(37, 2);
  r.physical_address = 0x1234567890ULL;
  r.syndrome = 0xdeadbeef;
  return r;
}

TEST(MemoryErrorSerializeTest, RoundTrip) {
  const MemoryErrorRecord original = SampleError();
  const auto parsed = ParseMemoryError(FormatRecord(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(MemoryErrorSerializeTest, RowFieldRoundTrip) {
  MemoryErrorRecord r = SampleError();
  r.row = 4321;
  const auto parsed = ParseMemoryError(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->row, 4321);
  r.row = kNoRowInfo;
  const std::string line = FormatRecord(r);
  EXPECT_NE(line.find("\t-\t"), std::string::npos);
  EXPECT_EQ(ParseMemoryError(line)->row, kNoRowInfo);
}

TEST(MemoryErrorSerializeTest, DueTypeRoundTrip) {
  MemoryErrorRecord r = SampleError();
  r.type = FailureType::kUncorrectable;
  const auto parsed = ParseMemoryError(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FailureType::kUncorrectable);
}

TEST(MemoryErrorSerializeTest, VendorBitEncoding) {
  EXPECT_EQ(EncodeRecordedBit(5, 0), 5);
  EXPECT_EQ(EncodeRecordedBit(5, 3), 5 | (3 << 7));
  EXPECT_EQ(TrueBitOfRecorded(EncodeRecordedBit(71, 2)), 71);
  // Consistency: same true bit + same vendor code -> same recorded value.
  EXPECT_EQ(EncodeRecordedBit(10, 1), EncodeRecordedBit(10, 1));
}

class MalformedErrorLineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedErrorLineTest, Rejected) {
  EXPECT_FALSE(ParseMemoryError(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Lines, MalformedErrorLineTest,
    ::testing::Values(
        "",                                     // empty
        "not a record",                         // junk
        "2019-03-14 01:59:26\t1234\t1\tCE\tJ",  // too few fields
        // bad timestamp
        "junk\t1234\t1\tCE\tJ\t-\t1\t13\t37\t0x1234\t0xdead",
        // node out of range
        "2019-03-14 01:59:26\t99999\t1\tCE\tJ\t-\t1\t13\t37\t0x1234\t0xdead",
        // socket/slot mismatch (J belongs to socket 1)
        "2019-03-14 01:59:26\t1234\t0\tCE\tJ\t-\t1\t13\t37\t0x1234\t0xdead",
        // unknown failure type
        "2019-03-14 01:59:26\t1234\t1\tXX\tJ\t-\t1\t13\t37\t0x1234\t0xdead",
        // bad slot letter
        "2019-03-14 01:59:26\t1234\t1\tCE\tZ\t-\t1\t13\t37\t0x1234\t0xdead",
        // rank out of range
        "2019-03-14 01:59:26\t1234\t1\tCE\tJ\t-\t5\t13\t37\t0x1234\t0xdead",
        // bank out of range
        "2019-03-14 01:59:26\t1234\t1\tCE\tJ\t-\t1\t99\t37\t0x1234\t0xdead",
        // non-hex address
        "2019-03-14 01:59:26\t1234\t1\tCE\tJ\t-\t1\t13\t37\tzzzz\t0xdead"));

TEST(SensorSerializeTest, RoundTrip) {
  SensorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 5, 20, 0, 1, 0);
  r.node = 77;
  r.sensor = SensorKind::kDimmsJLNP;
  r.valid = true;
  r.value = 43.25;
  const auto parsed = ParseSensor(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->node, r.node);
  EXPECT_EQ(parsed->sensor, r.sensor);
  EXPECT_TRUE(parsed->valid);
  EXPECT_NEAR(parsed->value, 43.25, 0.01);
}

TEST(SensorSerializeTest, MissingValueAsNA) {
  SensorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 5, 20);
  r.node = 1;
  r.sensor = SensorKind::kDcPower;
  r.valid = false;
  const std::string line = FormatRecord(r);
  EXPECT_NE(line.find("NA"), std::string::npos);
  const auto parsed = ParseSensor(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->valid);
}

TEST(SensorSerializeTest, RejectsUnknownSensor) {
  EXPECT_FALSE(ParseSensor("2019-05-20 00:00:00\t1\tnot_a_sensor\t42.0").has_value());
}

TEST(HetSerializeTest, RoundTripAllTypes) {
  for (int e = 0; e < kHetEventTypeCount; ++e) {
    HetRecord r;
    r.timestamp = SimTime::FromCivil(2019, 8, 30, 12, 0, 0);
    r.node = 55;
    r.event = static_cast<HetEventType>(e);
    r.severity = HetSeverity::kNonRecoverable;
    r.socket = 0;
    r.slot = 4;
    const auto parsed = ParseHet(FormatRecord(r));
    ASSERT_TRUE(parsed.has_value()) << e;
    EXPECT_EQ(*parsed, r);
  }
}

TEST(HetSerializeTest, EventNamesMatchPaperSpelling) {
  // Fig. 15 legend spellings, including the vendor's "redundacy" typo.
  EXPECT_EQ(HetEventTypeName(HetEventType::kUncorrectableEcc), "uncorrectableECC");
  EXPECT_EQ(HetEventTypeName(HetEventType::kRedundancyLost), "redundacyLost");
  EXPECT_EQ(HetEventTypeName(HetEventType::kPowerSupplyFailureDeasserted),
            "powerSupplyFailureDetected de-asserted");
  EXPECT_EQ(HetEventTypeName(HetEventType::kUncorrectableMachineCheck),
            "uncorrectableMachineCheckException");
}

TEST(HetSerializeTest, NotApplicableSlots) {
  HetRecord r;
  r.timestamp = SimTime::FromCivil(2019, 9, 1);
  r.node = 3;
  r.event = HetEventType::kPowerSupplyFailure;
  r.severity = HetSeverity::kInformational;
  r.socket = -1;
  r.slot = -1;
  const auto parsed = ParseHet(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->socket, -1);
  EXPECT_EQ(parsed->slot, -1);
}

TEST(InventorySerializeTest, RoundTrip) {
  InventoryRecord r;
  r.scan_date = SimTime::FromCivil(2019, 2, 17);
  r.site = ComponentSite{ComponentKind::kDimm, 2000, 9};
  r.serial = 0xfedcba9876543211ULL;
  const auto parsed = ParseInventory(FormatRecord(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(InventorySerializeTest, AllKindsRoundTrip) {
  for (int k = 0; k < kComponentKindCount; ++k) {
    InventoryRecord r;
    r.scan_date = SimTime::FromCivil(2019, 3, 1);
    r.site.kind = static_cast<ComponentKind>(k);
    r.site.node = 17;
    r.site.index = 1;
    r.serial = 42;
    const auto parsed = ParseInventory(FormatRecord(r));
    ASSERT_TRUE(parsed.has_value()) << k;
    EXPECT_EQ(parsed->site.kind, r.site.kind);
  }
}

TEST(ParseStatsTest, MalformedFraction) {
  ParseStats stats;
  stats.total_lines = 200;
  stats.parsed = 198;
  stats.malformed = 2;
  EXPECT_DOUBLE_EQ(stats.MalformedFraction(), 0.01);
  EXPECT_DOUBLE_EQ(ParseStats{}.MalformedFraction(), 0.0);
}

}  // namespace
}  // namespace astra::logs
