#include "logs/log_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace astra::logs {
namespace {

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "astra_log_file_test.tsv"; }
  void TearDown() override { std::remove(path_.c_str()); }

  static MemoryErrorRecord MakeRecord(int i) {
    MemoryErrorRecord r;
    r.timestamp = SimTime::FromCivil(2019, 4, 1).AddMinutes(i);
    r.node = i % kNumNodes;
    r.slot = static_cast<DimmSlot>(i % kDimmSlotCount);
    r.socket = SocketOfSlot(r.slot);
    r.rank = static_cast<RankId>(i % 2);
    r.bank = static_cast<BankId>(i % kBanksPerRank);
    r.bit_position = i % 72;
    r.physical_address = static_cast<std::uint64_t>(i) * 8;
    r.syndrome = static_cast<std::uint32_t>(i);
    return r;
  }

  std::string path_;
};

TEST_F(LogFileTest, WriterProducesHeaderAndRows) {
  {
    LogFileWriter<MemoryErrorRecord> writer(path_);
    ASSERT_TRUE(writer.Ok());
    for (int i = 0; i < 10; ++i) writer.Append(MakeRecord(i));
    EXPECT_EQ(writer.Written(), 10u);
  }
  std::ifstream in(path_);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, MemoryErrorHeader());
}

TEST_F(LogFileTest, RoundTripAllRecords) {
  {
    LogFileWriter<MemoryErrorRecord> writer(path_);
    for (int i = 0; i < 100; ++i) writer.Append(MakeRecord(i));
  }
  ParseStats stats;
  const auto records = ReadAllRecords<MemoryErrorRecord>(path_, &stats);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 100u);
  EXPECT_EQ(stats.parsed, 100u);
  EXPECT_EQ(stats.malformed, 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*records)[static_cast<std::size_t>(i)], MakeRecord(i));
  }
}

TEST_F(LogFileTest, MalformedLinesCountedNotFatal) {
  {
    std::ofstream out(path_);
    out << MemoryErrorHeader() << '\n';
    out << FormatRecord(MakeRecord(1)) << '\n';
    out << "this line is garbage\n";
    out << FormatRecord(MakeRecord(2)) << '\n';
    out << "another\tbad\tline\n";
  }
  ParseStats stats;
  const auto records = ReadAllRecords<MemoryErrorRecord>(path_, &stats);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.total_lines, 4u);
  EXPECT_DOUBLE_EQ(stats.MalformedFraction(), 0.5);
}

TEST_F(LogFileTest, HeaderlessFileStillParses) {
  {
    std::ofstream out(path_);
    out << FormatRecord(MakeRecord(5)) << '\n';
  }
  const auto records = ReadAllRecords<MemoryErrorRecord>(path_);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(LogFileTest, EmptyLinesSkipped) {
  {
    std::ofstream out(path_);
    out << MemoryErrorHeader() << "\n\n\n" << FormatRecord(MakeRecord(3)) << "\n\n";
  }
  ParseStats stats;
  const auto records = ReadAllRecords<MemoryErrorRecord>(path_, &stats);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST_F(LogFileTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadAllRecords<MemoryErrorRecord>("/no/such/file.tsv").has_value());
}

TEST_F(LogFileTest, StreamingSinkEarlyRecordsVisible) {
  {
    LogFileWriter<HetRecord> writer(path_);
    HetRecord r;
    r.timestamp = SimTime::FromCivil(2019, 9, 1);
    r.node = 1;
    r.event = HetEventType::kUncorrectableEcc;
    r.severity = HetSeverity::kNonRecoverable;
    writer.Append(r);
    r.node = 2;
    writer.Append(r);
  }
  std::vector<NodeId> nodes;
  const auto stats = ReadLogFile<HetRecord>(
      path_, [&nodes](const HetRecord& r) { nodes.push_back(r.node); });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2}));
}

TEST_F(LogFileTest, SensorRecordsRoundTrip) {
  {
    LogFileWriter<SensorRecord> writer(path_);
    SensorRecord r;
    r.timestamp = SimTime::FromCivil(2019, 5, 20, 10, 30, 0);
    r.node = 9;
    r.sensor = SensorKind::kDcPower;
    r.valid = true;
    r.value = 312.5;
    writer.Append(r);
    r.valid = false;
    writer.Append(r);
  }
  const auto records = ReadAllRecords<SensorRecord>(path_);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE((*records)[0].valid);
  EXPECT_FALSE((*records)[1].valid);
}

}  // namespace
}  // namespace astra::logs
