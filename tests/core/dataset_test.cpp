#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace astra::core {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_dataset_test";
    std::filesystem::create_directories(dir_);
    paths_ = DatasetPaths::InDirectory(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  DatasetPaths paths_;
};

TEST_F(DatasetTest, FailureDataRoundTrip) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 120;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));

  const auto loaded = ReadFailureData(paths_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->memory_errors.size(), sim.memory_errors.size());
  EXPECT_EQ(loaded->het_events.size(), sim.het_records.size());
  EXPECT_EQ(loaded->memory_stats.malformed, 0u);
  EXPECT_EQ(loaded->het_stats.malformed, 0u);
  // Spot-check exact record equality.
  for (std::size_t i = 0; i < sim.memory_errors.size(); i += 131) {
    EXPECT_EQ(loaded->memory_errors[i], sim.memory_errors[i]);
  }
}

TEST_F(DatasetTest, SensorDumpParsesBack) {
  const sensors::Environment env;
  const TimeWindow window{SimTime::FromCivil(2019, 5, 20),
                          SimTime::FromCivil(2019, 5, 21)};
  SensorDumpOptions options;
  options.stride_minutes = 120;
  ASSERT_TRUE(WriteSensorData(paths_, env, window, /*node_count=*/4, options));
  logs::ParseStats stats;
  const auto records = logs::ReadAllRecords<logs::SensorRecord>(paths_.sensors, &stats);
  ASSERT_TRUE(records.has_value());
  // 12 samples/day x 4 nodes x 7 sensors.
  EXPECT_EQ(records->size(), 12u * 4 * 7);
  EXPECT_EQ(stats.malformed, 0u);
  int missing = 0;
  for (const auto& r : *records) missing += !r.valid;
  EXPECT_LT(missing, 20);
}

TEST_F(DatasetTest, InventoryDumpDiffsToEvents) {
  auto config = replace::ReplacementSimConfig::AstraDefaults();
  config.node_count = 60;
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  ASSERT_TRUE(WriteInventoryData(paths_, simulator, campaign, /*stride_days=*/30));
  logs::ParseStats stats;
  const auto records =
      logs::ReadAllRecords<logs::InventoryRecord>(paths_.inventory, &stats);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(stats.malformed, 0u);
  // 8 snapshots (every 30 days over 212) x 60 nodes x 19 sites.
  EXPECT_EQ(records->size() % (60u * 19), 0u);
  EXPECT_GE(records->size() / (60u * 19), 7u);
}

TEST_F(DatasetTest, WriteToBadDirectoryFails) {
  const DatasetPaths bad = DatasetPaths::InDirectory("/no/such/dir");
  faultsim::CampaignConfig config;
  config.node_count = 1;
  const auto sim = faultsim::FleetSimulator(config).Run();
  EXPECT_FALSE(WriteFailureData(bad, sim));
}

}  // namespace
}  // namespace astra::core
