#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace astra::core {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_dataset_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    paths_ = DatasetPaths::InDirectory(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  DatasetPaths paths_;
};

TEST_F(DatasetTest, FailureDataRoundTrip) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 120;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));

  const auto loaded = ReadFailureData(paths_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->memory_errors.size(), sim.memory_errors.size());
  EXPECT_EQ(loaded->het_events.size(), sim.het_records.size());
  EXPECT_EQ(loaded->memory_stats.malformed, 0u);
  EXPECT_EQ(loaded->het_stats.malformed, 0u);
  // Spot-check exact record equality.
  for (std::size_t i = 0; i < sim.memory_errors.size(); i += 131) {
    EXPECT_EQ(loaded->memory_errors[i], sim.memory_errors[i]);
  }
}

TEST_F(DatasetTest, SensorDumpParsesBack) {
  const sensors::Environment env;
  const TimeWindow window{SimTime::FromCivil(2019, 5, 20),
                          SimTime::FromCivil(2019, 5, 21)};
  SensorDumpOptions options;
  options.stride_minutes = 120;
  ASSERT_TRUE(WriteSensorData(paths_, env, window, /*node_count=*/4, options));
  logs::ParseStats stats;
  const auto records = logs::ReadAllRecords<logs::SensorRecord>(paths_.sensors, &stats);
  ASSERT_TRUE(records.has_value());
  // 12 samples/day x 4 nodes x 7 sensors.
  EXPECT_EQ(records->size(), 12u * 4 * 7);
  EXPECT_EQ(stats.malformed, 0u);
  int missing = 0;
  for (const auto& r : *records) missing += !r.valid;
  EXPECT_LT(missing, 20);
}

TEST_F(DatasetTest, InventoryDumpDiffsToEvents) {
  auto config = replace::ReplacementSimConfig::AstraDefaults();
  config.node_count = 60;
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  ASSERT_TRUE(WriteInventoryData(paths_, simulator, campaign, /*stride_days=*/30));
  logs::ParseStats stats;
  const auto records =
      logs::ReadAllRecords<logs::InventoryRecord>(paths_.inventory, &stats);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ(stats.malformed, 0u);
  // 8 snapshots (every 30 days over 212) x 60 nodes x 19 sites.
  EXPECT_EQ(records->size() % (60u * 19), 0u);
  EXPECT_GE(records->size() / (60u * 19), 7u);
}

TEST_F(DatasetTest, WriteToBadDirectoryFails) {
  const DatasetPaths bad = DatasetPaths::InDirectory("/no/such/dir");
  faultsim::CampaignConfig config;
  config.node_count = 1;
  const auto sim = faultsim::FleetSimulator(config).Run();
  EXPECT_FALSE(WriteFailureData(bad, sim));
}

TEST_F(DatasetTest, IngestFailureDataCleanDataset) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 80;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));

  const auto ingest = IngestFailureData(paths_, logs::IngestPolicy{});
  EXPECT_EQ(ingest.status, DatasetStatus::kOk);
  // A burst can log byte-identical CE records within one second; line-level
  // dedup cannot tell those from collection duplicates, so it drops them —
  // counted, and reconcilable against the simulated ground truth.
  EXPECT_EQ(ingest.memory_errors.size() + ingest.memory_report.duplicates_removed,
            sim.memory_errors.size());
  EXPECT_LT(ingest.quality.DuplicateFraction(), 0.01);
  EXPECT_EQ(ingest.het_events.size() + ingest.het_report.duplicates_removed,
            sim.het_records.size());
  EXPECT_FALSE(ingest.het_missing);
  EXPECT_TRUE(ingest.memory_report.Consistent());
  EXPECT_TRUE(ingest.het_report.Consistent());
  // No damage beyond the disclosed dedup: nothing quarantined, no drift.
  EXPECT_EQ(ingest.quality.quarantined, 0u);
  EXPECT_FALSE(ingest.quality.header_remapped);
  EXPECT_FALSE(ingest.quality.over_budget);
  EXPECT_FALSE(ingest.quality.stream_missing);
}

TEST_F(DatasetTest, IngestRawPolicyPreservesEveryRecord) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 80;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));

  const auto ingest = IngestFailureData(paths_, logs::IngestPolicy::Raw());
  EXPECT_EQ(ingest.status, DatasetStatus::kOk);
  EXPECT_EQ(ingest.memory_errors.size(), sim.memory_errors.size());
  EXPECT_EQ(ingest.het_events.size(), sim.het_records.size());
  EXPECT_FALSE(ingest.quality.Degraded());
}

TEST_F(DatasetTest, IngestFailureDataMissingPrimaryStream) {
  const auto ingest = IngestFailureData(paths_, logs::IngestPolicy{});
  EXPECT_EQ(ingest.status, DatasetStatus::kMissingPrimary);
  EXPECT_TRUE(ingest.memory_errors.empty());
}

TEST_F(DatasetTest, IngestFailureDataMissingHetDegrades) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 40;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));
  std::filesystem::remove(paths_.het_events);

  const auto ingest = IngestFailureData(paths_, logs::IngestPolicy{});
  EXPECT_EQ(ingest.status, DatasetStatus::kOk);  // degrade, don't fail
  EXPECT_TRUE(ingest.het_missing);
  EXPECT_TRUE(ingest.quality.stream_missing);
  EXPECT_TRUE(ingest.quality.Degraded());
  EXPECT_FALSE(ingest.memory_errors.empty());
}

TEST_F(DatasetTest, IngestFailureDataStrictRejectsGarbage) {
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 40;
  const auto sim = faultsim::FleetSimulator(config).Run();
  ASSERT_TRUE(WriteFailureData(paths_, sim));
  // Append enough garbage to blow a 5% malformed budget.
  {
    std::ofstream out(paths_.memory_errors, std::ios::app);
    for (std::size_t i = 0; i < sim.memory_errors.size() / 4 + 200; ++i) {
      out << "!!not a record!!\n";
    }
  }

  const auto strict = IngestFailureData(paths_, logs::IngestPolicy::Strict(0.05));
  EXPECT_EQ(strict.status, DatasetStatus::kRejected);

  const auto lenient = IngestFailureData(paths_, logs::IngestPolicy{});
  EXPECT_EQ(lenient.status, DatasetStatus::kOk);
  EXPECT_EQ(lenient.memory_errors.size() + lenient.memory_report.duplicates_removed,
            sim.memory_errors.size());
  EXPECT_TRUE(lenient.quality.over_budget);
  EXPECT_TRUE(lenient.quality.Degraded());
}

}  // namespace
}  // namespace astra::core
