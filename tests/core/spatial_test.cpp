#include "core/spatial.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"
#include "util/rng.hpp"

namespace astra::core {
namespace {

// Build a CoalesceResult with faults placed at given (node, slot) pairs.
CoalesceResult Synthetic(const std::vector<std::pair<NodeId, int>>& placements) {
  CoalesceResult result;
  for (const auto& [node, slot] : placements) {
    CoalescedFault fault;
    fault.node = node;
    fault.slot = static_cast<DimmSlot>(slot);
    fault.socket = SocketOfSlot(fault.slot);
    fault.error_count = 1;
    result.faults.push_back(fault);
    ++result.total_errors;
  }
  return result;
}

TEST(SpatialTest, UniformPlacementIsPoissonLike) {
  // One fault on each of 200 distinct DIMMs across 200 nodes.
  std::vector<std::pair<NodeId, int>> placements;
  for (int i = 0; i < 200; ++i) placements.push_back({i, i % kDimmSlotsPerNode});
  const SpatialAnalysis analysis =
      AnalyzeSpatialClustering(Synthetic(placements), 200);
  // No repeats by construction: dispersion slightly below 1 (underdispersed).
  EXPECT_LT(analysis.per_dimm.dispersion, 1.05);
  EXPECT_EQ(analysis.per_dimm.containers_with_repeat, 0u);
  EXPECT_DOUBLE_EQ(analysis.multi_dimm_probability, 0.0);
}

TEST(SpatialTest, ClusteredPlacementDetected) {
  // 100 faults piled on one DIMM of one node, plus 10 scattered.
  std::vector<std::pair<NodeId, int>> placements;
  for (int i = 0; i < 100; ++i) placements.push_back({0, 0});
  for (int i = 0; i < 10; ++i) placements.push_back({10 + i, 3});
  const SpatialAnalysis analysis =
      AnalyzeSpatialClustering(Synthetic(placements), 500);
  EXPECT_GT(analysis.per_dimm.dispersion, 5.0);
  EXPECT_GT(analysis.per_dimm.RecurrenceLift(), 2.0);
}

TEST(SpatialTest, MultiDimmLiftDetectsNodeClustering) {
  // 40 nodes each with 3 distinct faulty DIMMs; fleet of 4000 nodes.  Under
  // independence, 3 faulty DIMMs on one node would be vanishingly rare.
  std::vector<std::pair<NodeId, int>> placements;
  for (int n = 0; n < 40; ++n) {
    placements.push_back({n, 0});
    placements.push_back({n, 5});
    placements.push_back({n, 11});
  }
  const SpatialAnalysis analysis =
      AnalyzeSpatialClustering(Synthetic(placements), 4000);
  EXPECT_DOUBLE_EQ(analysis.multi_dimm_probability, 1.0);
  EXPECT_GT(analysis.MultiDimmLift(), 10.0);
}

TEST(SpatialTest, CampaignShowsClustering) {
  // The susceptibility model makes clustering a designed-in property; the
  // analysis must recover it from coalesced faults alone.
  faultsim::CampaignConfig config;
  config.SeedFrom(41);
  config.node_count = 800;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  const SpatialAnalysis analysis =
      AnalyzeSpatialClustering(coalesced, config.node_count);

  EXPECT_GT(analysis.per_node.dispersion, 2.0);
  EXPECT_GT(analysis.per_dimm.RecurrenceLift(), 1.5);
  // Within-node cross-DIMM lift is modest (the independence baseline is
  // already high at this fault incidence) but must exceed 1.
  EXPECT_GT(analysis.MultiDimmLift(), 1.02);
  // Populations wired through correctly.
  EXPECT_EQ(analysis.per_node.containers, 800u);
  EXPECT_EQ(analysis.per_dimm.containers, 800u * kDimmSlotsPerNode);
}

TEST(SpatialTest, EmptyInput) {
  const SpatialAnalysis analysis = AnalyzeSpatialClustering(CoalesceResult{}, 100);
  EXPECT_DOUBLE_EQ(analysis.per_dimm.dispersion, 0.0);
  EXPECT_DOUBLE_EQ(analysis.MultiDimmLift(), 0.0);
}

}  // namespace
}  // namespace astra::core
