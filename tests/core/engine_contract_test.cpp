// Engine-contract property suite (core/engine.hpp): every analysis engine
// must satisfy the same algebra the drivers rely on —
//
//   split/merge    Observe-all == split-at-EVERY-boundary + MergeFrom, down
//                  to identical Snapshot bytes (the parallel driver's
//                  correctness for any shard layout).
//   resume         a mid-stream Snapshot restored into a fresh engine and
//                  fed the remaining records lands on identical Snapshot
//                  bytes (the streaming driver's checkpoint correctness).
//   reject-reset   a Restore that returns false leaves the engine in its
//                  freshly-constructed state, never half-restored.
//   guards         MergeFrom refuses self-merge and config mismatches.
//
// The set-level tests additionally demand byte-identical RENDERED reports,
// and repeat the resume property over records ingested from datasets damaged
// by every corruption mode — the engines must uphold the contract on exactly
// the record streams a dirty production ingest would deliver.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/burstiness.hpp"
#include "core/dataset.hpp"
#include "core/impact.hpp"
#include "core/lifetime.hpp"
#include "core/report.hpp"
#include "core/spatial.hpp"
#include "core/temperature.hpp"
#include "core/vendor_analysis.hpp"
#include "faultsim/fleet.hpp"
#include "logs/corruption.hpp"
#include "util/binio.hpp"

namespace astra::core {
namespace {

template <typename Engine>
std::string SnapshotBytes(const Engine& engine) {
  std::string bytes;
  binio::Writer writer(bytes);
  engine.Snapshot(writer);
  return bytes;
}

// Property: serial replay and every two-way split produce identical state.
// `make` builds a fresh engine with the fixture's config; the second shard
// observes with the GLOBAL sequence indices, exactly as the parallel driver
// numbers its shards.
template <typename Engine, typename Record, typename Make>
void CheckSplitMergeEqualsSerial(Make make, const std::vector<Record>& records) {
  Engine serial = make();
  for (std::size_t i = 0; i < records.size(); ++i) {
    serial.Observe(records[i], i);
  }
  const std::string want = SnapshotBytes(serial);

  for (std::size_t cut = 0; cut <= records.size(); ++cut) {
    Engine left = make();
    Engine right = make();
    for (std::size_t i = 0; i < cut; ++i) left.Observe(records[i], i);
    for (std::size_t i = cut; i < records.size(); ++i) {
      right.Observe(records[i], i);
    }
    ASSERT_TRUE(left.MergeFrom(right)) << "cut at " << cut;
    ASSERT_EQ(SnapshotBytes(left), want) << "cut at " << cut;
  }
}

// Property: Snapshot mid-stream, Restore into a fresh engine, feed the rest;
// both engines land on identical Snapshot bytes.
template <typename Engine, typename Record, typename Make>
void CheckMidStreamResume(Make make, const std::vector<Record>& records) {
  for (const std::size_t cut :
       {std::size_t{0}, records.size() / 3, records.size() / 2,
        records.size()}) {
    Engine original = make();
    for (std::size_t i = 0; i < cut; ++i) original.Observe(records[i], i);
    const std::string saved = SnapshotBytes(original);

    Engine resumed = make();
    binio::Reader reader{std::string_view(saved)};
    ASSERT_TRUE(resumed.Restore(reader)) << "cut at " << cut;
    EXPECT_TRUE(reader.AtEnd()) << "cut at " << cut;

    for (std::size_t i = cut; i < records.size(); ++i) {
      original.Observe(records[i], i);
      resumed.Observe(records[i], i);
    }
    ASSERT_EQ(SnapshotBytes(resumed), SnapshotBytes(original))
        << "cut at " << cut;
  }
}

// Property: a failed Restore resets to the fresh state, and no damaged
// payload crashes the decoder.  Truncations MUST fail; bit flips may decode
// into a different-but-valid state (the checkpoint CRC envelope is the layer
// that catches those), so for flips only reject-implies-reset is demanded.
template <typename Engine, typename Record, typename Make>
void CheckDamagedRestoreRejectsAndResets(Make make,
                                         const std::vector<Record>& records) {
  Engine full = make();
  for (std::size_t i = 0; i < records.size(); ++i) full.Observe(records[i], i);
  const std::string saved = SnapshotBytes(full);
  const std::string fresh = SnapshotBytes(make());
  if (saved.empty()) return;  // stateless finalize-stage engine

  for (const std::size_t keep :
       {std::size_t{0}, saved.size() / 4, saved.size() / 2, saved.size() - 1}) {
    Engine engine = make();
    binio::Reader reader{std::string_view(saved).substr(0, keep)};
    const bool ok = engine.Restore(reader) && reader.AtEnd();
    EXPECT_FALSE(ok) << "kept " << keep << " of " << saved.size() << " bytes";
    if (!ok) {
      EXPECT_EQ(SnapshotBytes(engine), fresh)
          << "kept " << keep << " bytes: engine not reset";
    }
  }
  for (std::size_t at = 0; at < saved.size(); at += 13) {
    std::string flipped = saved;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x20);
    Engine engine = make();
    binio::Reader reader{std::string_view(flipped)};
    if (!engine.Restore(reader)) {
      EXPECT_EQ(SnapshotBytes(engine), fresh)
          << "flip at byte " << at << ": engine not reset";
    }
  }
}

template <typename Engine, typename Make>
void CheckSelfMergeRefused(Make make) {
  Engine engine = make();
  EXPECT_FALSE(engine.MergeFrom(engine));
}

class EngineContractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    faultsim::CampaignConfig config;
    config.SeedFrom(17);
    config.node_count = 36;
    campaign_ = new faultsim::CampaignResult(
        faultsim::FleetSimulator(config).Run());
    ASSERT_GT(campaign_->memory_errors.size(), 200u);
    ASSERT_FALSE(campaign_->het_records.empty());
  }
  static void TearDownTestSuite() {
    delete campaign_;
    campaign_ = nullptr;
  }

  // Split-at-every-boundary is O(n^2) observes; a bounded prefix keeps the
  // suite fast while still crossing fault-group, month and node boundaries.
  static std::vector<logs::MemoryErrorRecord> MemoryPrefix(std::size_t n = 150) {
    const auto& all = campaign_->memory_errors;
    return {all.begin(),
            all.begin() + static_cast<std::ptrdiff_t>(std::min(n, all.size()))};
  }
  static const std::vector<logs::HetRecord>& HetRecords() {
    return campaign_->het_records;
  }

  static faultsim::CampaignResult* campaign_;
};

faultsim::CampaignResult* EngineContractTest::campaign_ = nullptr;

// One TEST_F per engine keeps failures attributable.  The three properties
// (split/merge, resume, damaged-restore) run over the same record prefix.

TEST_F(EngineContractTest, FaultCoalescer) {
  const auto records = MemoryPrefix();
  const auto make = [] { return FaultCoalescer{}; };
  CheckSplitMergeEqualsSerial<FaultCoalescer>(make, records);
  CheckMidStreamResume<FaultCoalescer>(make, records);
  CheckDamagedRestoreRejectsAndResets<FaultCoalescer>(make, records);
  CheckSelfMergeRefused<FaultCoalescer>(make);
}

TEST_F(EngineContractTest, FaultCoalescerConfigMismatchRefused) {
  CoalesceOptions other_options;
  other_options.row_decodable = true;
  FaultCoalescer a;
  const FaultCoalescer b{other_options};
  EXPECT_FALSE(a.MergeFrom(b));
}

TEST_F(EngineContractTest, PositionalCounts) {
  const auto records = MemoryPrefix();
  const auto make = [] { return PositionalCounts{}; };
  CheckSplitMergeEqualsSerial<PositionalCounts>(make, records);
  CheckMidStreamResume<PositionalCounts>(make, records);
  CheckDamagedRestoreRejectsAndResets<PositionalCounts>(make, records);
  CheckSelfMergeRefused<PositionalCounts>(make);
}

TEST_F(EngineContractTest, TemporalEngine) {
  const auto records = MemoryPrefix();
  const auto make = [] { return TemporalEngine{}; };
  CheckSplitMergeEqualsSerial<TemporalEngine>(make, records);
  CheckMidStreamResume<TemporalEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<TemporalEngine>(make, records);
  CheckSelfMergeRefused<TemporalEngine>(make);
}

TEST_F(EngineContractTest, PredictorEngine) {
  const auto records = MemoryPrefix();
  PredictorConfig config;
  config.ce_count_threshold = 4;
  config.distinct_address_threshold = 3;
  const auto make = [config] { return PredictorEngine{config}; };
  CheckSplitMergeEqualsSerial<PredictorEngine>(make, records);
  CheckMidStreamResume<PredictorEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<PredictorEngine>(make, records);
  CheckSelfMergeRefused<PredictorEngine>(make);
}

TEST_F(EngineContractTest, PredictorEngineConfigMismatchRefused) {
  PredictorConfig other_config;
  other_config.ce_count_threshold = 99;
  PredictorEngine a;
  const PredictorEngine b{other_config};
  EXPECT_FALSE(a.MergeFrom(b));
}

TEST_F(EngineContractTest, LifetimeEngine) {
  const auto records = MemoryPrefix();
  const auto make = [] { return LifetimeEngine{}; };
  CheckSplitMergeEqualsSerial<LifetimeEngine>(make, records);
  CheckMidStreamResume<LifetimeEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<LifetimeEngine>(make, records);
  CheckSelfMergeRefused<LifetimeEngine>(make);
}

TEST_F(EngineContractTest, BurstinessEngine) {
  const auto records = MemoryPrefix();
  const auto make = [] { return BurstinessEngine{}; };
  CheckSplitMergeEqualsSerial<BurstinessEngine>(make, records);
  CheckMidStreamResume<BurstinessEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<BurstinessEngine>(make, records);
  CheckSelfMergeRefused<BurstinessEngine>(make);
}

TEST_F(EngineContractTest, TemperatureEngine) {
  const auto records = MemoryPrefix(80);  // replay buffer: O(n^2) bytes moved
  const auto make = [] { return TemperatureEngine{}; };
  CheckSplitMergeEqualsSerial<TemperatureEngine>(make, records);
  CheckMidStreamResume<TemperatureEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<TemperatureEngine>(make, records);
  CheckSelfMergeRefused<TemperatureEngine>(make);
}

TEST_F(EngineContractTest, ImpactEngine) {
  const auto records = MemoryPrefix(80);  // replay buffer: O(n^2) bytes moved
  const auto make = [] { return ImpactEngine{}; };
  CheckSplitMergeEqualsSerial<ImpactEngine>(make, records);
  CheckMidStreamResume<ImpactEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<ImpactEngine>(make, records);
  CheckSelfMergeRefused<ImpactEngine>(make);
}

TEST_F(EngineContractTest, SpatialEngine) {
  const auto records = MemoryPrefix();
  const auto make = [] { return SpatialEngine{}; };
  CheckSplitMergeEqualsSerial<SpatialEngine>(make, records);
  CheckMidStreamResume<SpatialEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<SpatialEngine>(make, records);
  CheckSelfMergeRefused<SpatialEngine>(make);
}

TEST_F(EngineContractTest, VendorEngine) {
  const auto records = MemoryPrefix();
  const auto make = [] { return VendorEngine{}; };
  CheckSplitMergeEqualsSerial<VendorEngine>(make, records);
  CheckMidStreamResume<VendorEngine>(make, records);
  CheckDamagedRestoreRejectsAndResets<VendorEngine>(make, records);
  CheckSelfMergeRefused<VendorEngine>(make);
}

TEST_F(EngineContractTest, UncorrectableEngine) {
  const auto& records = HetRecords();
  const auto make = [] { return UncorrectableEngine{}; };
  CheckSplitMergeEqualsSerial<UncorrectableEngine, logs::HetRecord>(make,
                                                                    records);
  CheckMidStreamResume<UncorrectableEngine, logs::HetRecord>(make, records);
  CheckDamagedRestoreRejectsAndResets<UncorrectableEngine, logs::HetRecord>(
      make, records);
  CheckSelfMergeRefused<UncorrectableEngine>(make);
}

// --- AnalysisEngineSet: the composite the drivers actually hold ---------------

std::string RenderedReport(const AnalysisEngineSet& set) {
  std::ostringstream out;
  RenderAnalysisReport(out, set.Finalize(set.InferredContext()));
  return out.str();
}

TEST_F(EngineContractTest, EngineSetContractProperties) {
  const auto records = MemoryPrefix(100);  // holds two replay buffers
  const auto make = [] { return AnalysisEngineSet{}; };
  CheckSplitMergeEqualsSerial<AnalysisEngineSet>(make, records);
  CheckMidStreamResume<AnalysisEngineSet>(make, records);
  CheckDamagedRestoreRejectsAndResets<AnalysisEngineSet>(make, records);
  CheckSelfMergeRefused<AnalysisEngineSet>(make);
}

TEST_F(EngineContractTest, EngineSetConfigMismatchRefused) {
  EngineSetConfig other_config;
  other_config.predictor.ce_count_threshold = 7;
  AnalysisEngineSet a;
  const AnalysisEngineSet b{other_config};
  EXPECT_FALSE(a.MergeFrom(b));
}

// The parallel driver's sharding: shard k's engine is seeded with its first
// GLOBAL index and fed via ObserveMemory; index-order reduction plus serial
// het replay must render the byte-identical report.
TEST_F(EngineContractTest, EngineSetShardedReductionRendersIdentically) {
  const auto& records = campaign_->memory_errors;
  const auto& het = HetRecords();

  AnalysisEngineSet serial;
  for (const auto& record : records) serial.ObserveMemory(record);
  for (const auto& record : het) serial.ObserveHet(record);
  const std::string want = RenderedReport(serial);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{3},
                                   std::size_t{8}}) {
    std::vector<AnalysisEngineSet> sets;
    const std::size_t per = (records.size() + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t first = std::min(s * per, records.size());
      const std::size_t last = std::min(first + per, records.size());
      sets.emplace_back(EngineSetConfig{}, first);
      for (std::size_t i = first; i < last; ++i) {
        sets.back().ObserveMemory(records[i]);
      }
    }
    for (std::size_t s = 1; s < sets.size(); ++s) {
      ASSERT_TRUE(sets.front().MergeFrom(sets[s])) << shards << " shards";
    }
    for (const auto& record : het) sets.front().ObserveHet(record);
    ASSERT_EQ(RenderedReport(sets.front()), want) << shards << " shards";
    ASSERT_EQ(sets.front().Delivered(), records.size()) << shards << " shards";
  }
}

// The streaming driver's checkpoint cycle on DIRTY data: for every corruption
// mode, write the campaign, damage the files, ingest through the quarantining
// reader, and demand the resume property over exactly the surviving records —
// ending in a byte-identical rendered report.
TEST_F(EngineContractTest, MidStreamResumeHoldsUnderEveryCorruptionMode) {
  const std::string base = ::testing::TempDir() + "astra_engine_contract_dirty";
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    const auto mode = static_cast<logs::CorruptionMode>(m);
    SCOPED_TRACE(std::string("mode ") +
                 std::string(logs::CorruptionModeName(mode)));
    const std::string dir =
        base + "_" + std::string(logs::CorruptionModeName(mode));
    std::filesystem::create_directories(dir);
    const auto paths = DatasetPaths::InDirectory(dir);
    ASSERT_TRUE(WriteFailureData(paths, *campaign_));

    logs::CorruptionConfig corruption;
    corruption.seed = 2000 + static_cast<std::uint64_t>(m);
    corruption.Set(mode, 0.3);
    logs::CorruptionInjector injector(corruption);
    ASSERT_TRUE(injector.CorruptDirectory(dir).has_value());

    const auto ingest = IngestFailureData(paths, logs::IngestPolicy{});
    ASSERT_EQ(ingest.status, DatasetStatus::kOk);

    AnalysisEngineSet serial;
    for (const auto& record : ingest.memory_errors) {
      serial.ObserveMemory(record);
    }
    for (const auto& record : ingest.het_events) serial.ObserveHet(record);

    // Checkpoint halfway, resume into a fresh set, feed the remainder.
    const std::size_t cut = ingest.memory_errors.size() / 2;
    AnalysisEngineSet first_half;
    for (std::size_t i = 0; i < cut; ++i) {
      first_half.ObserveMemory(ingest.memory_errors[i]);
    }
    const std::string saved = SnapshotBytes(first_half);
    AnalysisEngineSet resumed;
    binio::Reader reader{std::string_view(saved)};
    ASSERT_TRUE(resumed.Restore(reader));
    for (std::size_t i = cut; i < ingest.memory_errors.size(); ++i) {
      resumed.ObserveMemory(ingest.memory_errors[i]);
    }
    for (const auto& record : ingest.het_events) resumed.ObserveHet(record);

    EXPECT_EQ(SnapshotBytes(resumed), SnapshotBytes(serial));
    EXPECT_EQ(RenderedReport(resumed), RenderedReport(serial));
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace astra::core
