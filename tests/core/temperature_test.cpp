#include "core/temperature.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

struct Fixture {
  Fixture() {
    config.SeedFrom(31);
    config.node_count = 250;
    sim = faultsim::FleetSimulator(config).Run();
    TemperatureAnalysisConfig tconfig;
    tconfig.max_lookback_samples = 4000;
    tconfig.mean_samples = 48;
    // Two look-back windows keep the fixture fast; Fig. 9 runs all four.
    tconfig.lookback_seconds = {SimTime::kSecondsPerHour, SimTime::kSecondsPerDay};
    TemperatureAnalyzer analyzer(tconfig, &env);
    analysis = analyzer.Analyze(sim.memory_errors, config.node_count);
    window = tconfig.window;
  }
  faultsim::CampaignConfig config;
  sensors::Environment env;
  faultsim::CampaignResult sim;
  TemperatureAnalysis analysis;
  TimeWindow window;
};

const Fixture& Shared() {
  static const Fixture fixture;
  return fixture;
}

TEST(TemperatureAnalysisTest, LookbackFitsProduced) {
  const auto& f = Shared();
  ASSERT_EQ(f.analysis.lookback_fits.size(), 2u);
  for (const auto& lookback : f.analysis.lookback_fits) {
    EXPECT_FALSE(lookback.temperature_bins.empty());
    EXPECT_EQ(lookback.temperature_bins.size(), lookback.ce_counts.size());
  }
}

TEST(TemperatureAnalysisTest, LookbackTemperaturesPlausible) {
  const auto& f = Shared();
  for (const auto& lookback : f.analysis.lookback_fits) {
    for (const double t : lookback.temperature_bins) {
      EXPECT_GT(t, 20.0);
      EXPECT_LT(t, 70.0);
    }
  }
}

TEST(TemperatureAnalysisTest, NoStrongPositiveCorrelation) {
  // The paper's §3.3 conclusion — the fault process is temperature-blind in
  // the simulator, so the analysis must find no strong positive link.
  EXPECT_FALSE(Shared().analysis.AnyStrongPositiveCorrelation());
}

TEST(TemperatureAnalysisTest, LookbackCountsCoverAllCes) {
  const auto& f = Shared();
  std::uint64_t in_window = 0;
  for (const auto& r : f.sim.memory_errors) {
    if (r.type == logs::FailureType::kCorrectable && f.window.Contains(r.timestamp)) {
      ++in_window;
    }
  }
  for (const auto& lookback : f.analysis.lookback_fits) {
    double scaled = 0.0;
    for (const double c : lookback.ce_counts) scaled += c;
    EXPECT_NEAR(scaled, static_cast<double>(in_window),
                static_cast<double>(in_window) * 0.02 + 1.0);
  }
}

TEST(TemperatureAnalysisTest, DecileSeriesPerSensor) {
  const auto& f = Shared();
  for (int s = 0; s < kTempSensorsPerNode; ++s) {
    const auto& deciles = f.analysis.deciles[static_cast<std::size_t>(s)];
    EXPECT_EQ(deciles.sensor, static_cast<SensorKind>(s));
    ASSERT_EQ(deciles.by_temperature.buckets.size(), 10u);
    // x_max ascending.
    for (std::size_t i = 1; i < deciles.by_temperature.buckets.size(); ++i) {
      EXPECT_GE(deciles.by_temperature.buckets[i].x_max,
                deciles.by_temperature.buckets[i - 1].x_max);
    }
  }
}

TEST(TemperatureAnalysisTest, Cpu1DecilesHotterThanCpu2) {
  // Fig. 13a: the whole CPU1 curve sits right of CPU2's.
  const auto& f = Shared();
  const auto& cpu1 = f.analysis.deciles[static_cast<int>(SensorKind::kCpu0Temp)];
  const auto& cpu2 = f.analysis.deciles[static_cast<int>(SensorKind::kCpu1Temp)];
  EXPECT_GT(cpu1.median_temperature, cpu2.median_temperature + 1.0);
}

TEST(TemperatureAnalysisTest, DecileSpansMatchPaperBands) {
  // §3.3: first..ninth decile span ~7 degC for CPUs, ~4 degC for DIMMs.
  const auto& f = Shared();
  for (const auto kind : {SensorKind::kCpu0Temp, SensorKind::kCpu1Temp}) {
    const auto& buckets =
        f.analysis.deciles[static_cast<std::size_t>(kind)].by_temperature.buckets;
    const double span = buckets[8].x_max - buckets[0].x_max;
    EXPECT_GT(span, 1.0);
    EXPECT_LT(span, 12.0);
  }
  for (const auto kind : {SensorKind::kDimmsACEG, SensorKind::kDimmsJLNP}) {
    const auto& buckets =
        f.analysis.deciles[static_cast<std::size_t>(kind)].by_temperature.buckets;
    const double span = buckets[8].x_max - buckets[0].x_max;
    EXPECT_GT(span, 0.5);
    EXPECT_LT(span, 8.0);
  }
}

TEST(TemperatureAnalysisTest, NoSchroederTrendInTemperatureDeciles) {
  const auto& f = Shared();
  int increasing = 0;
  for (const auto& deciles : f.analysis.deciles) {
    increasing += deciles.by_temperature.MonotonicallyIncreasing();
  }
  // At most a fluke sensor may look increasing; most must not.
  EXPECT_LE(increasing, 1);
}

TEST(TemperatureAnalysisTest, HotColdSplitPartitionsObservations) {
  const auto& f = Shared();
  for (const auto& deciles : f.analysis.deciles) {
    std::size_t hot = 0, cold = 0;
    for (const auto& b : deciles.by_power_hot.buckets) hot += b.count;
    for (const auto& b : deciles.by_power_cold.buckets) cold += b.count;
    std::size_t total = 0;
    for (const auto& obs : f.analysis.observations) {
      total += obs.sensor == deciles.sensor;
    }
    EXPECT_EQ(hot + cold, total);
    // Median split: halves within rounding.
    EXPECT_NEAR(static_cast<double>(hot), static_cast<double>(cold),
                static_cast<double>(total) * 0.1 + 2.0);
  }
}

TEST(TemperatureAnalysisTest, HotSamplesShiftedRightInPower) {
  // Fig. 14: hot samples have generally higher power (temperature follows
  // utilization).
  const auto& f = Shared();
  const auto& cpu1 = f.analysis.deciles[static_cast<int>(SensorKind::kCpu0Temp)];
  ASSERT_FALSE(cpu1.by_power_hot.buckets.empty());
  ASSERT_FALSE(cpu1.by_power_cold.buckets.empty());
  EXPECT_GT(cpu1.by_power_hot.buckets.back().x_max,
            cpu1.by_power_cold.buckets.front().x_max);
  double hot_mean = 0.0, cold_mean = 0.0;
  for (const auto& b : cpu1.by_power_hot.buckets) hot_mean += b.x_mean;
  for (const auto& b : cpu1.by_power_cold.buckets) cold_mean += b.x_mean;
  EXPECT_GT(hot_mean / 10.0, cold_mean / 10.0);
}

TEST(TemperatureAnalysisTest, ObservationCeCountsConserve) {
  const auto& f = Shared();
  std::uint64_t observed = 0;
  for (const auto& obs : f.analysis.observations) {
    // CPU sensors cover the socket; each CE is counted once under its
    // socket's CPU sensor and once under its DIMM-group sensor.
    if (obs.sensor == SensorKind::kCpu0Temp || obs.sensor == SensorKind::kCpu1Temp) {
      observed += obs.ce_count;
    }
  }
  std::uint64_t in_window = 0;
  for (const auto& r : f.sim.memory_errors) {
    if (r.type == logs::FailureType::kCorrectable && f.window.Contains(r.timestamp)) {
      ++in_window;
    }
  }
  EXPECT_EQ(observed, in_window);
}

}  // namespace
}  // namespace astra::core
