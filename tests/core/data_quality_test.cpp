// DataQuality bridge and graceful-degradation guards: ingest damage becomes
// explicit caveats, and headline statistics flag themselves when their
// sample is too small to support the paper's conclusions.
#include "core/data_quality.hpp"

#include <gtest/gtest.h>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "core/temperature.hpp"
#include "core/uncorrectable.hpp"

namespace astra::core {
namespace {

logs::IngestReport DamagedReport() {
  logs::IngestReport report;
  report.stats.total_lines = 1000;
  report.stats.parsed = 900;
  report.stats.malformed = 100;
  report.malformed_by_reason[0] = 100;
  report.duplicates_removed = 50;
  report.out_of_order_seen = 20;
  report.reordered = 18;
  report.order_violations = 2;
  report.header_remapped = true;
  report.budget_exceeded = true;
  return report;
}

TEST(DataQualityTest, FromReportCopiesEveryCounter) {
  const auto q = DataQuality::FromReport(DamagedReport());
  EXPECT_EQ(q.lines_seen, 1000u);
  EXPECT_EQ(q.parsed, 900u);
  EXPECT_EQ(q.quarantined, 100u);
  EXPECT_EQ(q.duplicates_removed, 50u);
  EXPECT_EQ(q.out_of_order, 20u);
  EXPECT_EQ(q.reordered, 18u);
  EXPECT_EQ(q.order_violations, 2u);
  EXPECT_TRUE(q.header_remapped);
  EXPECT_TRUE(q.over_budget);
  EXPECT_FALSE(q.stream_missing);
  EXPECT_DOUBLE_EQ(q.QuarantinedFraction(), 0.1);
  EXPECT_TRUE(q.Degraded());
}

TEST(DataQualityTest, CleanReportIsNotDegraded) {
  logs::IngestReport report;
  report.stats.total_lines = 10;
  report.stats.parsed = 10;
  const auto q = DataQuality::FromReport(report);
  EXPECT_FALSE(q.Degraded());
  EXPECT_TRUE(q.Caveats().empty());
}

TEST(DataQualityTest, MergeSumsCountersAndOrsFlags) {
  auto a = DataQuality::FromReport(DamagedReport());
  DataQuality b;
  b.lines_seen = 5;
  b.parsed = 5;
  b.stream_missing = true;
  a.Merge(b);
  EXPECT_EQ(a.lines_seen, 1005u);
  EXPECT_TRUE(a.stream_missing);
  EXPECT_TRUE(a.over_budget);
}

TEST(DataQualityTest, CaveatsCoverEachDamageClass) {
  auto q = DataQuality::FromReport(DamagedReport());
  q.stream_missing = true;
  const auto caveats = q.Caveats();
  // quarantined, duplicates, order violations, header remap, missing stream,
  // over budget — six distinct disclosures.
  EXPECT_EQ(caveats.size(), 6u);
}

TEST(DataQualityTest, ReorderedOnlyGetsTheMilderCaveat) {
  DataQuality q;
  q.lines_seen = q.parsed = 100;
  q.reordered = 5;
  const auto caveats = q.Caveats();
  ASSERT_EQ(caveats.size(), 1u);
  EXPECT_NE(caveats[0].find("re-sorted"), std::string::npos);
}

// --- Analysis-side graceful degradation --------------------------------------

logs::MemoryErrorRecord OneCe(int i) {
  logs::MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 4, 1).AddSeconds(i * 3600);
  r.node = static_cast<NodeId>(i % 4);
  r.slot = DimmSlot::B;
  r.socket = SocketOfSlot(r.slot);
  r.bank = static_cast<BankId>(i % kBanksPerRank);
  r.physical_address = static_cast<std::uint64_t>(i) * 0x40;
  return r;
}

TEST(GracefulDegradationTest, PositionalFlagsLowSample) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(OneCe(i));
  const auto coalesced = FaultCoalescer::Coalesce(records);
  ASSERT_LT(coalesced.faults.size(), kMinFaultsForUniformity);
  const auto analysis = AnalyzePositions(records, coalesced, 4);
  EXPECT_TRUE(analysis.low_sample);
  EXPECT_FALSE(analysis.caveats.empty());
}

TEST(GracefulDegradationTest, QualityCaveatsReachAnalyses) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(OneCe(i));
  const auto quality = DataQuality::FromReport(DamagedReport());
  const auto coalesced = FaultCoalescer::Coalesce(records, {}, &quality);
  EXPECT_FALSE(coalesced.caveats.empty());
  const auto analysis = AnalyzePositions(records, coalesced, 4, &quality);
  EXPECT_GT(analysis.caveats.size(), 1u);  // low-sample + quality caveats
}

TEST(GracefulDegradationTest, UncorrectableFlagsFewDueEvents) {
  std::vector<logs::HetRecord> records;
  logs::HetRecord due;
  due.timestamp = SimTime::FromCivil(2019, 9, 10);
  due.event = logs::HetEventType::kUncorrectableEcc;
  records.push_back(due);
  const TimeWindow window{SimTime::FromCivil(2019, 9, 1),
                          SimTime::FromCivil(2019, 9, 22)};
  const auto analysis = AnalyzeUncorrectable(records, window, 100);
  ASSERT_LT(analysis.memory_due_events, kMinDueEventsForRate);
  EXPECT_TRUE(analysis.low_confidence);
  EXPECT_FALSE(analysis.caveats.empty());
}

TEST(GracefulDegradationTest, UncorrectableLowConfidenceOnMissingStream) {
  std::vector<logs::HetRecord> records;
  for (int i = 0; i < 10; ++i) {
    logs::HetRecord due;
    due.timestamp = SimTime::FromCivil(2019, 9, 1).AddSeconds(i * 86400);
    due.event = logs::HetEventType::kUncorrectableEcc;
    records.push_back(due);
  }
  const TimeWindow window{SimTime::FromCivil(2019, 9, 1),
                          SimTime::FromCivil(2019, 9, 22)};
  DataQuality quality;
  quality.stream_missing = true;
  const auto analysis = AnalyzeUncorrectable(records, window, 100, &quality);
  EXPECT_TRUE(analysis.low_confidence);
}

TEST(GracefulDegradationTest, TemperatureFlagsLowSample) {
  const sensors::Environment env;
  TemperatureAnalysisConfig config;
  config.lookback_seconds = {SimTime::kSecondsPerHour};
  // Two nodes over one month: 2 x 6 sensors x 1 month = 12 observations,
  // well under the decile threshold.
  config.window = {SimTime::FromCivil(2019, 5, 1), SimTime::FromCivil(2019, 5, 10)};
  const TemperatureAnalyzer analyzer(config, &env);
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 3; ++i) {
    auto r = OneCe(i);
    r.timestamp = config.window.begin.AddSeconds(3600 + i * 60);
    records.push_back(r);
  }
  const auto analysis = analyzer.Analyze(records, /*node_span=*/2);
  ASSERT_LT(analysis.observations.size(), kMinObservationsForDeciles);
  EXPECT_TRUE(analysis.low_sample);
  EXPECT_FALSE(analysis.caveats.empty());
}

}  // namespace
}  // namespace astra::core
