#include "core/coalesce.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

using faultsim::GroundTruthMode;
using faultsim::ObservedMode;

// Build a CE record at an explicit DRAM coordinate.
logs::MemoryErrorRecord Record(NodeId node, DimmSlot slot, RankId rank, BankId bank,
                               RowId row, ColumnId column, int bit,
                               int minute_offset = 0) {
  logs::MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 3, 1).AddMinutes(minute_offset);
  r.node = node;
  r.slot = slot;
  r.socket = SocketOfSlot(slot);
  r.rank = rank;
  r.bank = bank;
  r.row = logs::kNoRowInfo;
  r.bit_position = bit;
  DramCoord coord;
  coord.node = node;
  coord.slot = slot;
  coord.socket = r.socket;
  coord.rank = rank;
  coord.bank = bank;
  coord.row = row;
  coord.column = column;
  r.physical_address = EncodePhysicalAddress(coord);
  r.syndrome = 1;
  return r;
}

TEST(CoalesceTest, SingleErrorIsSingleBitFault) {
  const std::vector<logs::MemoryErrorRecord> records = {
      Record(1, DimmSlot::B, 0, 2, 100, 7, 5)};
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleBit);
  EXPECT_EQ(result.faults[0].error_count, 1u);
  EXPECT_EQ(result.total_errors, 1u);
}

TEST(CoalesceTest, RepeatedSameCellIsSingleBit) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, 100, 7, 5, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleBit);
  EXPECT_EQ(result.faults[0].error_count, 50u);
  EXPECT_EQ(result.faults[0].distinct_addresses, 1u);
}

TEST(CoalesceTest, SameWordDifferentBitsIsSingleWord) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, 100, 7, i % 2 ? 5 : 41, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleWord);
  EXPECT_EQ(result.faults[0].distinct_bits, 2u);
}

TEST(CoalesceTest, SameColumnManyRowsIsSingleColumn) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, /*row=*/i * 31, /*col=*/7, 5, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleColumn);
  EXPECT_EQ(result.faults[0].distinct_columns, 1u);
  EXPECT_GT(result.faults[0].distinct_addresses, 1u);
}

TEST(CoalesceTest, ManyColumnsOneBitIsRowLike) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, /*row=*/55, /*col=*/i * 3, 5, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kUnattributedRowLike);
}

TEST(CoalesceTest, ScatteredBankPatternIsSingleBank) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 60; ++i) {
    records.push_back(
        Record(1, DimmSlot::B, 0, 2, /*row=*/i * 7, /*col=*/i * 5, /*bit=*/i % 72, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleBank);
}

TEST(CoalesceTest, TwoCellCollisionDecomposes) {
  // Two unrelated cell faults in the same bank: the naive classifier would
  // call this "single-bank"; the decomposition step must split them.
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, 100, 7, 5, i));
    records.push_back(Record(1, DimmSlot::B, 0, 2, 900, 80, 33, i));
  }
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 2u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kSingleBit);
  EXPECT_EQ(result.faults[1].mode, ObservedMode::kSingleBit);
  EXPECT_EQ(result.faults[0].error_count, 10u);
  EXPECT_EQ(result.faults[1].error_count, 10u);
}

TEST(CoalesceTest, DominantPatternAbsorbsSmallCollision) {
  // A prolific row-like fault plus a 2-error cell fault in the same bank:
  // dominance classification must still call the group row-like.
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(
        Record(1, DimmSlot::B, 0, 2, 55, static_cast<ColumnId>(i % 300), 5, i));
  }
  records.push_back(Record(1, DimmSlot::B, 0, 2, 999, 17, 44, 600));
  records.push_back(Record(1, DimmSlot::B, 0, 2, 999, 17, 44, 601));
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].mode, ObservedMode::kUnattributedRowLike);
  EXPECT_EQ(result.faults[0].error_count, 502u);
}

TEST(CoalesceTest, DifferentBanksAreDifferentFaults) {
  const std::vector<logs::MemoryErrorRecord> records = {
      Record(1, DimmSlot::B, 0, 2, 100, 7, 5),
      Record(1, DimmSlot::B, 0, 3, 100, 7, 5),
      Record(1, DimmSlot::B, 1, 2, 100, 7, 5),
      Record(1, DimmSlot::C, 0, 2, 100, 7, 5),
      Record(2, DimmSlot::B, 0, 2, 100, 7, 5),
  };
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  EXPECT_EQ(result.faults.size(), 5u);
}

TEST(CoalesceTest, DueRecordsSkippedByDefault) {
  std::vector<logs::MemoryErrorRecord> records = {Record(1, DimmSlot::B, 0, 2, 1, 1, 1)};
  records.push_back(records[0]);
  records[1].type = logs::FailureType::kUncorrectable;
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  EXPECT_EQ(result.total_errors, 1u);
  EXPECT_EQ(result.skipped_records, 1u);
}

TEST(CoalesceTest, MonthlySeriesTracked) {
  CoalesceOptions options;
  options.month_count = 3;
  options.series_origin = SimTime::FromCivil(2019, 3, 1);
  std::vector<logs::MemoryErrorRecord> records;
  records.push_back(Record(1, DimmSlot::B, 0, 2, 1, 1, 1, 0));             // month 0
  records.push_back(Record(1, DimmSlot::B, 0, 2, 1, 1, 1, 45 * 24 * 60));  // month 1
  records.push_back(Record(1, DimmSlot::B, 0, 2, 1, 1, 1, 70 * 24 * 60));  // month 2
  const CoalesceResult result = FaultCoalescer::Coalesce(records, options);
  ASSERT_EQ(result.faults.size(), 1u);
  ASSERT_EQ(result.faults[0].monthly_errors.size(), 3u);
  EXPECT_EQ(result.faults[0].monthly_errors[0], 1u);
  EXPECT_EQ(result.faults[0].monthly_errors[1], 1u);
  EXPECT_EQ(result.faults[0].monthly_errors[2], 1u);
}

TEST(CoalesceTest, ErrorsPerFaultAndModeTallies) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, 2, 1, 1, 1, i));
  }
  records.push_back(Record(1, DimmSlot::C, 0, 2, 1, 1, 1));
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  const auto counts = result.ErrorsPerFault();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 6u);
  EXPECT_EQ(result.FaultsOfMode(ObservedMode::kSingleBit), 2u);
  EXPECT_EQ(result.ErrorsOfMode(ObservedMode::kSingleBit), 6u);
  EXPECT_EQ(result.ErrorsOfMode(ObservedMode::kSingleBank), 0u);
}

TEST(CoalesceTest, IncrementalAddMatchesOneShot) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(Record(1, DimmSlot::B, 0, static_cast<BankId>(i % 4), i * 3,
                             static_cast<ColumnId>(i % 9), i % 72, i));
  }
  FaultCoalescer incremental;
  for (const auto& r : records) incremental.Add(r);
  const CoalesceResult a = incremental.Finalize();
  const CoalesceResult b = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].mode, b.faults[i].mode);
    EXPECT_EQ(a.faults[i].error_count, b.faults[i].error_count);
  }
}

// Ground-truth validation: classify a simulated campaign and compare against
// the injected fault modes where no bank collision interferes.
TEST(CoalesceGroundTruthTest, MatchesInjectedModes) {
  faultsim::CampaignConfig config;
  config.SeedFrom(99);
  config.node_count = 400;
  const faultsim::CampaignResult sim = faultsim::FleetSimulator(config).Run();
  const CoalesceResult observed = FaultCoalescer::Coalesce(sim.memory_errors);

  // Index ground-truth faults by bank group, keeping only groups hosting
  // exactly ONE injected fault (no collision).
  std::map<std::tuple<NodeId, int, int, int>, std::vector<const faultsim::Fault*>>
      truth_by_group;
  for (const auto& fault : sim.faults) {
    truth_by_group[{fault.anchor.node, static_cast<int>(fault.anchor.slot),
                    fault.anchor.rank, fault.anchor.bank}]
        .push_back(&fault);
  }

  std::size_t comparable = 0, matched = 0;
  for (const auto& fault : observed.faults) {
    const auto it = truth_by_group.find(
        {fault.node, static_cast<int>(fault.slot), fault.rank, fault.bank});
    if (it == truth_by_group.end() || it->second.size() != 1) continue;
    const faultsim::Fault& truth = *it->second.front();
    if (fault.error_count < 2) continue;  // single observation: mode unknowable
    ++comparable;
    const ObservedMode expected = faultsim::ExpectedObservation(
        truth.mode, /*multi_row_seen=*/fault.distinct_addresses > 1);
    // A large-footprint fault whose few errors happen to hit one address
    // degenerates legitimately; accept the degenerate observation too.
    const bool degenerate_ok = fault.distinct_addresses == 1 &&
                               (fault.mode == ObservedMode::kSingleBit ||
                                fault.mode == ObservedMode::kSingleWord);
    if (fault.mode == expected || degenerate_ok) ++matched;
  }
  ASSERT_GT(comparable, 100u);
  EXPECT_GT(static_cast<double>(matched) / static_cast<double>(comparable), 0.95);
}

TEST(CoalesceGroundTruthTest, ErrorConservation) {
  faultsim::CampaignConfig config;
  config.SeedFrom(5);
  config.node_count = 150;
  const faultsim::CampaignResult sim = faultsim::FleetSimulator(config).Run();
  const CoalesceResult observed = FaultCoalescer::Coalesce(sim.memory_errors);
  std::uint64_t total = 0;
  for (const auto& fault : observed.faults) total += fault.error_count;
  EXPECT_EQ(total, observed.total_errors);
  EXPECT_EQ(observed.total_errors + observed.skipped_records,
            sim.memory_errors.size());
}

}  // namespace
}  // namespace astra::core
