#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

TEST(MonthlySeriesTest, TotalsMatchRecords) {
  faultsim::CampaignConfig config;
  config.SeedFrom(11);
  config.node_count = 300;
  const auto sim = faultsim::FleetSimulator(config).Run();

  CoalesceOptions options;
  options.month_count = 9;
  options.series_origin = config.window.begin;
  const CoalesceResult co = FaultCoalescer::Coalesce(sim.memory_errors, options);
  const MonthlyErrorSeries series =
      BuildMonthlySeries(sim.memory_errors, co, config.window.begin, 9);

  std::uint64_t total = 0;
  for (const std::uint64_t m : series.all_errors) total += m;
  EXPECT_EQ(total, sim.total_ces);

  // Mode series sum to the coalesced totals.
  std::uint64_t by_mode_total = 0;
  for (const auto& mode_series : series.by_mode) {
    for (const std::uint64_t m : mode_series) by_mode_total += m;
  }
  EXPECT_EQ(by_mode_total, co.total_errors);
}

TEST(MonthlySeriesTest, ModeSeriesMatchPerModeTotals) {
  faultsim::CampaignConfig config;
  config.SeedFrom(12);
  config.node_count = 200;
  const auto sim = faultsim::FleetSimulator(config).Run();
  CoalesceOptions options;
  options.month_count = 9;
  options.series_origin = config.window.begin;
  const CoalesceResult co = FaultCoalescer::Coalesce(sim.memory_errors, options);
  const MonthlyErrorSeries series =
      BuildMonthlySeries(sim.memory_errors, co, config.window.begin, 9);
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : series.by_mode[static_cast<std::size_t>(m)]) sum += v;
    EXPECT_EQ(sum, co.ErrorsOfMode(static_cast<faultsim::ObservedMode>(m))) << m;
  }
}

TEST(MonthlySeriesTest, TrendSlopeSignMatchesData) {
  MonthlyErrorSeries series;
  series.all_errors = {100, 90, 80, 70, 60};
  EXPECT_LT(series.TrendSlopePerMonth(), 0.0);
  series.all_errors = {10, 20, 30, 40};
  EXPECT_GT(series.TrendSlopePerMonth(), 0.0);
}

TEST(DailyCountsTest, BucketsByDay) {
  const TimeWindow window{SimTime::FromCivil(2019, 2, 1), SimTime::FromCivil(2019, 2, 11)};
  std::vector<SimTime> timestamps;
  timestamps.push_back(window.begin);                        // day 0
  timestamps.push_back(window.begin.AddHours(25));           // day 1
  timestamps.push_back(window.begin.AddDays(9).AddHours(1)); // day 9
  timestamps.push_back(window.begin.AddDays(20));            // outside
  timestamps.push_back(window.begin.AddSeconds(-5));         // outside
  const auto daily = DailyCounts(timestamps, window);
  ASSERT_EQ(daily.size(), 10u);
  EXPECT_EQ(daily[0], 1u);
  EXPECT_EQ(daily[1], 1u);
  EXPECT_EQ(daily[9], 1u);
  std::uint64_t total = 0;
  for (const auto c : daily) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(DailyCountsTest, EmptyWindow) {
  const TimeWindow degenerate{SimTime::FromCivil(2019, 2, 1),
                              SimTime::FromCivil(2019, 2, 1)};
  EXPECT_EQ(DailyCounts({}, degenerate).size(), 1u);
}

}  // namespace
}  // namespace astra::core
