// Edge-case sweep across the analysis suite: empty inputs, single-node
// fleets, degenerate windows, and partially-missing datasets must degrade
// gracefully (sane zeros, no crashes) — field data pipelines meet all of
// these in practice.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/burstiness.hpp"
#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/lifetime.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temperature.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

TEST(EdgeCaseTest, EmptyRecordStreams) {
  const CoalesceResult coalesced = FaultCoalescer::Coalesce({});
  EXPECT_TRUE(coalesced.faults.empty());
  EXPECT_EQ(coalesced.total_errors, 0u);

  const PositionalAnalysis positions = AnalyzePositions({}, coalesced, 100);
  EXPECT_EQ(positions.nodes_with_errors, 0u);
  EXPECT_EQ(positions.errors.Total(), 0u);
  EXPECT_FALSE(positions.faults_per_node_fit.Valid());

  const MonthlyErrorSeries series = BuildMonthlySeries(
      {}, coalesced, SimTime::FromCivil(2019, 1, 20), 9);
  for (const auto m : series.all_errors) EXPECT_EQ(m, 0u);
  EXPECT_DOUBLE_EQ(series.TrendSlopePerMonth(), 0.0);

  const PredictionEvaluation prediction = EvaluatePredictor({}, PredictorConfig{});
  EXPECT_EQ(prediction.dimms_flagged, 0u);
  EXPECT_DOUBLE_EQ(prediction.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(prediction.Recall(), 0.0);
}

TEST(EdgeCaseTest, TemperatureAnalyzerWithNoCes) {
  sensors::Environment env;
  TemperatureAnalysisConfig config;
  config.lookback_seconds = {SimTime::kSecondsPerHour};
  config.mean_samples = 8;
  const TemperatureAnalyzer analyzer(config, &env);
  const TemperatureAnalysis analysis = analyzer.Analyze({}, /*node_span=*/4);
  ASSERT_EQ(analysis.lookback_fits.size(), 1u);
  EXPECT_TRUE(analysis.lookback_fits[0].temperature_bins.empty());
  EXPECT_FALSE(analysis.AnyStrongPositiveCorrelation());
  // Decile series still produced from environmental data alone.
  for (const auto& deciles : analysis.deciles) {
    EXPECT_FALSE(deciles.by_temperature.buckets.empty());
    for (const auto& bucket : deciles.by_temperature.buckets) {
      EXPECT_DOUBLE_EQ(bucket.y_mean, 0.0);
    }
  }
}

TEST(EdgeCaseTest, SingleNodeFleet) {
  faultsim::CampaignConfig config;
  config.SeedFrom(9);
  config.node_count = 1;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  const auto positions = AnalyzePositions(sim.memory_errors, coalesced, 1);
  EXPECT_LE(positions.nodes_with_errors, 1u);
  for (const auto& r : sim.memory_errors) EXPECT_EQ(r.node, 0);
}

TEST(EdgeCaseTest, UncorrectableAnalysisDegenerateWindows) {
  const TimeWindow reversed{SimTime::FromCivil(2019, 9, 1),
                            SimTime::FromCivil(2019, 8, 1)};
  const UncorrectableAnalysis analysis = AnalyzeUncorrectable({}, reversed, 100);
  EXPECT_DOUBLE_EQ(analysis.fit_per_dimm, 0.0);
  EXPECT_EQ(analysis.total_het_events, 0u);

  const UncorrectableAnalysis zero_dimms = AnalyzeUncorrectable(
      {}, {SimTime::FromCivil(2019, 8, 23), SimTime::FromCivil(2019, 9, 14)}, 0);
  EXPECT_DOUBLE_EQ(zero_dimms.fit_per_dimm, 0.0);
}

TEST(EdgeCaseTest, LifetimeAnalysisEmpty) {
  const TimeWindow window{SimTime::FromCivil(2019, 1, 20),
                          SimTime::FromCivil(2019, 9, 14)};
  const LifetimeAnalysis analysis =
      AnalyzeLifetimes({}, CoalesceResult{}, window, 64);
  EXPECT_EQ(analysis.time_to_first_ce.total_events, 0u);
  EXPECT_DOUBLE_EQ(analysis.first_ce_afr, 0.0);
  EXPECT_FALSE(analysis.first_ce_weibull.Valid());
}

TEST(EdgeCaseTest, BurstinessDegenerateBucket) {
  const TimeWindow window{SimTime::FromCivil(2019, 3, 1),
                          SimTime::FromCivil(2019, 3, 2)};
  EXPECT_EQ(AnalyzeBurstiness({}, window, 0).events, 0u);
  EXPECT_EQ(AnalyzeBurstiness({}, {window.begin, window.begin}, 3600).events, 0u);
}

TEST(EdgeCaseTest, DatasetMissingHetFileFailsCleanly) {
  const std::string dir = ::testing::TempDir() + "astra_edge_dataset";
  std::filesystem::create_directories(dir);
  const DatasetPaths paths = DatasetPaths::InDirectory(dir);
  // Write only the memory-error file; het file absent.
  {
    logs::LogFileWriter<logs::MemoryErrorRecord> writer(paths.memory_errors);
    ASSERT_TRUE(writer.Ok());
  }
  EXPECT_FALSE(ReadFailureData(paths).has_value());
  std::filesystem::remove_all(dir);
}

TEST(EdgeCaseTest, CoalesceRecordsAtWindowBoundaries) {
  // Identical timestamps and extreme field values survive coalescing.
  logs::MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 1, 20);
  r.node = kNumNodes - 1;
  r.slot = DimmSlot::P;
  r.socket = 1;
  r.rank = kRanksPerDimm - 1;
  r.bank = kBanksPerRank - 1;
  r.bit_position = logs::EncodeRecordedBit(kCodeBitsPerWord - 1, 3);
  DramCoord coord;
  coord.node = r.node;
  coord.slot = r.slot;
  coord.socket = r.socket;
  coord.rank = r.rank;
  coord.bank = r.bank;
  coord.row = kRowsPerBank - 1;
  coord.column = kColumnsPerRow - 1;
  r.physical_address = EncodePhysicalAddress(coord);
  const std::vector<logs::MemoryErrorRecord> records(5, r);
  const CoalesceResult result = FaultCoalescer::Coalesce(records);
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].error_count, 5u);
  EXPECT_EQ(result.faults[0].first_seen, result.faults[0].last_seen);
}

}  // namespace
}  // namespace astra::core
