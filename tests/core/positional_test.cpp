#include "core/positional.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

// Shared medium-scale campaign for the positional checks.
struct Fixture {
  Fixture() {
    config.SeedFrom(2024);
    config.node_count = 600;
    result = faultsim::FleetSimulator(config).Run();
    coalesced = FaultCoalescer::Coalesce(result.memory_errors);
    analysis = AnalyzePositions(result.memory_errors, coalesced, config.node_count);
  }
  faultsim::CampaignConfig config;
  faultsim::CampaignResult result;
  CoalesceResult coalesced;
  PositionalAnalysis analysis;
};

const Fixture& Shared() {
  static const Fixture fixture;
  return fixture;
}

TEST(PositionalTest, ErrorTotalsConsistent) {
  const auto& f = Shared();
  EXPECT_EQ(f.analysis.errors.Total(), f.result.total_ces);
  EXPECT_EQ(f.analysis.faults.Total(), f.coalesced.faults.size());
}

TEST(PositionalTest, PerNodeSumsMatch) {
  const auto& f = Shared();
  std::uint64_t node_sum = 0;
  for (const std::uint64_t c : f.analysis.errors.per_node) node_sum += c;
  EXPECT_EQ(node_sum, f.result.total_ces);
}

TEST(PositionalTest, AxesSumToTotal) {
  const auto& f = Shared();
  for (const auto* counts : {&f.analysis.errors, &f.analysis.faults}) {
    const std::uint64_t total = counts->Total();
    std::uint64_t rank_sum = 0, slot_sum = 0, bank_sum = 0, region_sum = 0,
                  column_sum = 0;
    for (const auto c : counts->per_rank) rank_sum += c;
    for (const auto c : counts->per_slot) slot_sum += c;
    for (const auto c : counts->per_bank) bank_sum += c;
    for (const auto c : counts->per_region) region_sum += c;
    for (const auto c : counts->per_column_bucket) column_sum += c;
    EXPECT_EQ(rank_sum, total);
    EXPECT_EQ(slot_sum, total);
    EXPECT_EQ(bank_sum, total);
    EXPECT_EQ(region_sum, total);
    EXPECT_EQ(column_sum, total);
  }
}

TEST(PositionalTest, RackRegionMatrixConsistent) {
  const auto& f = Shared();
  std::uint64_t matrix_sum = 0;
  for (int rack = 0; rack < kNumRacks; ++rack) {
    std::uint64_t rack_sum = 0;
    for (int region = 0; region < kRackRegionCount; ++region) {
      rack_sum += f.analysis.errors.per_rack_region[static_cast<std::size_t>(rack)]
                                                   [static_cast<std::size_t>(region)];
    }
    EXPECT_EQ(rack_sum, f.analysis.errors.per_rack[static_cast<std::size_t>(rack)]);
    matrix_sum += rack_sum;
  }
  EXPECT_EQ(matrix_sum, f.analysis.errors.Total());
}

TEST(PositionalTest, FaultsUniformAcrossSocketBankColumn) {
  // §3.2's headline: FAULTS are uniform across socket, bank, column.
  const auto& f = Shared();
  EXPECT_TRUE(f.analysis.fault_uniformity.socket.ConsistentWithUniform())
      << "V=" << f.analysis.fault_uniformity.socket.cramers_v;
  EXPECT_TRUE(f.analysis.fault_uniformity.bank.ConsistentWithUniform())
      << "V=" << f.analysis.fault_uniformity.bank.cramers_v;
  EXPECT_TRUE(f.analysis.fault_uniformity.column.ConsistentWithUniform())
      << "V=" << f.analysis.fault_uniformity.column.cramers_v;
}

TEST(PositionalTest, FaultsSkewedAcrossSlotAndRank) {
  // §3.2: slots and ranks are NOT uniform.
  const auto& f = Shared();
  EXPECT_FALSE(f.analysis.fault_uniformity.slot.ConsistentWithUniform());
  EXPECT_GT(f.analysis.faults.per_rank[0], f.analysis.faults.per_rank[1]);
}

TEST(PositionalTest, HotSlotsLeadColdSlots) {
  // Fig. 7d: J,E,I,P lead; A,K,L,M,N trail.
  const auto& f = Shared();
  const auto& slots = f.analysis.faults.per_slot;
  const auto slot_count = [&](DimmSlot s) {
    return slots[static_cast<std::size_t>(static_cast<int>(s))];
  };
  const std::uint64_t hot = slot_count(DimmSlot::J) + slot_count(DimmSlot::E) +
                            slot_count(DimmSlot::I) + slot_count(DimmSlot::P);
  const std::uint64_t cold = slot_count(DimmSlot::A) + slot_count(DimmSlot::K) +
                             slot_count(DimmSlot::L) + slot_count(DimmSlot::M) +
                             slot_count(DimmSlot::N);
  EXPECT_GT(hot, cold * 2);
}

TEST(PositionalTest, ConcentrationCurveMatchesPaperShape) {
  // Fig. 5b: a small set of nodes holds most CEs.
  const auto& f = Shared();
  const double top_2pct = f.analysis.ce_concentration.ShareOfTop(
      static_cast<std::size_t>(0.02 * f.config.node_count));
  EXPECT_GT(top_2pct, 0.5);
  EXPECT_LT(f.analysis.nodes_with_errors,
            static_cast<std::uint64_t>(f.config.node_count) / 2);
}

TEST(PositionalTest, FaultsPerNodePowerLawPlausible) {
  const auto& f = Shared();
  ASSERT_TRUE(f.analysis.faults_per_node_fit.Valid());
  EXPECT_GT(f.analysis.faults_per_node_fit.alpha, 1.2);
  EXPECT_LT(f.analysis.faults_per_node_fit.alpha, 5.0);
}

TEST(PositionalTest, BitPositionCountsHeavyTailed) {
  const auto& f = Shared();
  // Fig. 8a: most recorded bit positions see few errors, a few see many.
  std::uint64_t max_count = 0, total = 0;
  for (const auto& [bit, count] : f.analysis.errors.per_bit_position) {
    max_count = std::max(max_count, count);
    total += count;
  }
  EXPECT_GT(max_count, total / 50);  // one position dominates far above mean
}

TEST(PositionalTest, SyntheticSkewDetected) {
  // Hand-built records concentrated on one socket must fail uniformity.
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 500; ++i) {
    logs::MemoryErrorRecord r;
    r.timestamp = SimTime::FromCivil(2019, 4, 1).AddMinutes(i);
    r.node = i % 50;
    r.slot = static_cast<DimmSlot>(i % 8);  // socket 0 only
    r.socket = 0;
    r.rank = 0;
    r.bank = static_cast<BankId>(i % kBanksPerRank);
    r.bit_position = i % 72;
    DramCoord c;
    c.node = r.node;
    c.slot = r.slot;
    c.socket = 0;
    c.rank = 0;
    c.bank = r.bank;
    c.row = i;
    c.column = static_cast<ColumnId>(i % kColumnsPerRow);
    r.physical_address = EncodePhysicalAddress(c);
    records.push_back(r);
  }
  const CoalesceResult co = FaultCoalescer::Coalesce(records);
  const PositionalAnalysis analysis = AnalyzePositions(records, co, 50);
  EXPECT_EQ(analysis.errors.per_socket[1], 0u);
  EXPECT_FALSE(analysis.error_uniformity.socket.ConsistentWithUniform());
  EXPECT_TRUE(analysis.error_uniformity.bank.ConsistentWithUniform());
}

}  // namespace
}  // namespace astra::core
