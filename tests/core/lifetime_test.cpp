#include "core/lifetime.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

TEST(LifetimeAnalysisTest, FirstCeAccountingConsistent) {
  faultsim::CampaignConfig config;
  config.SeedFrom(55);
  config.node_count = 300;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  const int dimm_count = config.node_count * kDimmSlotsPerNode;
  const LifetimeAnalysis analysis =
      AnalyzeLifetimes(sim.memory_errors, coalesced, config.window, dimm_count);

  // Subjects = all DIMMs; events = DIMMs that ever logged a CE.
  EXPECT_EQ(analysis.time_to_first_ce.subjects, static_cast<std::size_t>(dimm_count));
  std::set<std::int64_t> dimms_with_ce;
  for (const auto& r : sim.memory_errors) {
    if (r.type == logs::FailureType::kCorrectable) {
      dimms_with_ce.insert(GlobalDimmIndex(r.node, r.slot));
    }
  }
  EXPECT_EQ(analysis.time_to_first_ce.total_events, dimms_with_ce.size());

  // Most DIMMs never log an error: survival stays high.
  EXPECT_GT(analysis.time_to_first_ce.SurvivalAt(config.window.DurationDays() - 1),
            0.7);
  EXPECT_GT(analysis.first_ce_afr, 0.0);
  EXPECT_TRUE(analysis.first_ce_exponential.Valid());
}

TEST(LifetimeAnalysisTest, FaultActivitySpans) {
  faultsim::CampaignConfig config;
  config.SeedFrom(56);
  config.node_count = 200;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  const LifetimeAnalysis analysis = AnalyzeLifetimes(
      sim.memory_errors, coalesced, config.window, config.node_count * 16);
  EXPECT_EQ(analysis.fault_activity_days.subjects, coalesced.faults.size());
  // Most faults are single-error (zero-span floored at 1h) -> tiny median.
  EXPECT_LT(analysis.median_fault_activity_days, 5.0);
}

TEST(ReplacementLifetimeTest, InfantMortalitySignatureRecovered) {
  // The §3.1 loop closed: fit a Weibull to DIMM replacement lifetimes from
  // the simulated inventory events and recover a decreasing hazard.  DIMMs
  // carry the strongest relative infant + early-wave structure.
  const auto config = replace::ReplacementSimConfig::AstraDefaults();
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  const ReplacementLifetimeAnalysis analysis = AnalyzeReplacementLifetimes(
      campaign.events, logs::ComponentKind::kDimm, config.tracking, kNumDimms);

  EXPECT_GT(analysis.replacements, 1000u);
  ASSERT_TRUE(analysis.lifetime_fit.Valid());
  EXPECT_TRUE(analysis.InfantMortalityDominated())
      << "shape=" << analysis.lifetime_fit.shape;
  EXPECT_GT(analysis.afr, 0.0);
  EXPECT_LT(analysis.afr, 1.0);  // well under one replacement per site-year
}

TEST(ReplacementLifetimeTest, EmptyEventsDegradeGracefully) {
  const auto tracking = replace::ReplacementSimConfig::AstraDefaults().tracking;
  const ReplacementLifetimeAnalysis analysis = AnalyzeReplacementLifetimes(
      {}, logs::ComponentKind::kProcessor, tracking, 100);
  EXPECT_EQ(analysis.replacements, 0u);
  EXPECT_FALSE(analysis.lifetime_fit.Valid());
  EXPECT_DOUBLE_EQ(analysis.afr, 0.0);
}

}  // namespace
}  // namespace astra::core
