#include "core/burstiness.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"
#include "util/rng.hpp"

namespace astra::core {
namespace {

const TimeWindow kWindow{SimTime::FromCivil(2019, 3, 1), SimTime::FromCivil(2019, 4, 1)};

TEST(BurstinessTest, PoissonStreamHasUnitDispersion) {
  Rng rng(1);
  std::vector<SimTime> timestamps;
  // Homogeneous Poisson, ~20 events/hour over a month.
  double t = 0.0;
  const double rate_per_second = 20.0 / 3600.0;
  while (true) {
    t += rng.Exponential(rate_per_second);
    const SimTime when = kWindow.begin.AddSeconds(static_cast<std::int64_t>(t));
    if (!kWindow.Contains(when)) break;
    timestamps.push_back(when);
  }
  const BurstinessAnalysis analysis = AnalyzeBurstiness(timestamps, kWindow);
  EXPECT_NEAR(analysis.fano_factor, 1.0, 0.25);
  EXPECT_NEAR(analysis.interarrival_cv2, 1.0, 0.15);
  EXPECT_TRUE(analysis.PoissonLike());
  EXPECT_FALSE(analysis.SuperPoisson());
}

TEST(BurstinessTest, ClusteredStreamIsSuperPoisson) {
  Rng rng(2);
  std::vector<SimTime> timestamps;
  // 20 bursts of 500 events packed into 10 minutes each.
  for (int burst = 0; burst < 20; ++burst) {
    const std::int64_t start = static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(kWindow.DurationSeconds() - 600)));
    for (int i = 0; i < 500; ++i) {
      timestamps.push_back(kWindow.begin.AddSeconds(
          start + static_cast<std::int64_t>(rng.UniformInt(std::uint64_t{600}))));
    }
  }
  const BurstinessAnalysis analysis = AnalyzeBurstiness(timestamps, kWindow);
  EXPECT_GT(analysis.fano_factor, 50.0);
  EXPECT_GT(analysis.interarrival_cv2, 5.0);
  EXPECT_TRUE(analysis.SuperPoisson());
}

TEST(BurstinessTest, EmptyAndDegenerate) {
  const BurstinessAnalysis empty = AnalyzeBurstiness({}, kWindow);
  EXPECT_EQ(empty.events, 0u);
  EXPECT_DOUBLE_EQ(empty.fano_factor, 0.0);
  const std::vector<SimTime> one = {kWindow.begin.AddDays(2)};
  const BurstinessAnalysis single = AnalyzeBurstiness(one, kWindow);
  EXPECT_EQ(single.events, 1u);
}

TEST(BurstinessTest, EventsOutsideWindowIgnored) {
  const std::vector<SimTime> timestamps = {
      kWindow.begin.AddDays(-1), kWindow.begin.AddDays(2), kWindow.end.AddDays(3)};
  EXPECT_EQ(AnalyzeBurstiness(timestamps, kWindow).events, 1u);
}

TEST(BurstinessTest, CampaignErrorsBurstyFaultOnsetsNot) {
  // The paper's errors-vs-faults theme, temporally: CE timestamps are
  // violently super-Poisson; fault START times are near-Poisson.
  faultsim::CampaignConfig config;
  config.SeedFrom(21);
  config.node_count = 500;
  const auto sim = faultsim::FleetSimulator(config).Run();

  std::vector<SimTime> ce_times;
  for (const auto& r : sim.memory_errors) {
    if (r.type == logs::FailureType::kCorrectable) ce_times.push_back(r.timestamp);
  }
  std::vector<SimTime> fault_onsets;
  for (const auto& fault : sim.faults) fault_onsets.push_back(fault.start);

  const BurstinessAnalysis errors =
      AnalyzeBurstiness(ce_times, config.window, SimTime::kSecondsPerHour);
  // Fault onsets are sparse (~1k over 8 months): use daily windows.
  const BurstinessAnalysis onsets =
      AnalyzeBurstiness(fault_onsets, config.window, SimTime::kSecondsPerDay);

  EXPECT_TRUE(errors.SuperPoisson()) << "fano=" << errors.fano_factor;
  EXPECT_GT(errors.fano_factor, 20.0);
  EXPECT_TRUE(onsets.PoissonLike()) << "fano=" << onsets.fano_factor;
  EXPECT_GT(errors.fano_factor, onsets.fano_factor * 5.0);
}

}  // namespace
}  // namespace astra::core
