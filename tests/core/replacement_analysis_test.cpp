#include "core/replacement_analysis.hpp"

#include <gtest/gtest.h>

namespace astra::core {
namespace {

TEST(ReplacementAnalysisTest, Table1Reproduction) {
  const auto config = replace::ReplacementSimConfig::AstraDefaults();
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  const ReplacementAnalysis analysis =
      AnalyzeReplacements(campaign.events, config.tracking, kNumNodes);

  const auto& proc = analysis.Of(logs::ComponentKind::kProcessor);
  const auto& mb = analysis.Of(logs::ComponentKind::kMotherboard);
  const auto& dimm = analysis.Of(logs::ComponentKind::kDimm);

  EXPECT_EQ(proc.population, 5184u);
  EXPECT_EQ(mb.population, 2592u);
  EXPECT_EQ(dimm.population, 41472u);

  // Table 1 percentages: 16.1%, 1.8%, 3.7% (band widened for sampling).
  EXPECT_NEAR(proc.percent_of_total, 16.1, 2.5);
  EXPECT_NEAR(mb.percent_of_total, 1.8, 1.0);
  EXPECT_NEAR(dimm.percent_of_total, 3.7, 0.5);

  // Daily series sum back to the totals.
  for (const auto& kind : analysis.kinds) {
    std::uint64_t daily_sum = 0;
    for (const auto c : kind.daily) daily_sum += c;
    EXPECT_EQ(daily_sum, kind.replaced);
  }
}

TEST(ReplacementAnalysisTest, ProcessorPeakAtUpgradeWave) {
  // Fig. 3a: the dominant replacement day sits in the mid-campaign
  // memory-controller speed-upgrade wave, not at bring-up.
  const auto config = replace::ReplacementSimConfig::AstraDefaults();
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  const ReplacementAnalysis analysis =
      AnalyzeReplacements(campaign.events, config.tracking, kNumNodes);
  const auto& proc = analysis.Of(logs::ComponentKind::kProcessor);
  EXPECT_GT(proc.peak_day, 100u);
  EXPECT_LT(proc.peak_day, 160u);
}

TEST(ReplacementAnalysisTest, DimmInfantMortalityVisible) {
  const auto config = replace::ReplacementSimConfig::AstraDefaults();
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  const ReplacementAnalysis analysis =
      AnalyzeReplacements(campaign.events, config.tracking, kNumNodes);
  const auto& dimm = analysis.Of(logs::ComponentKind::kDimm);
  // First three weeks out-replace a steady-state three weeks mid-campaign
  // (between the waves).
  std::uint64_t first_weeks = 0, steady_weeks = 0;
  for (int d = 0; d < 21; ++d) first_weeks += dimm.daily[static_cast<std::size_t>(d)];
  for (int d = 60; d < 81; ++d) steady_weeks += dimm.daily[static_cast<std::size_t>(d)];
  EXPECT_GT(first_weeks, steady_weeks);
}

TEST(ReplacementAnalysisTest, ScaledPopulations) {
  const ReplacementAnalysis analysis =
      AnalyzeReplacements({}, replace::ReplacementSimConfig::AstraDefaults().tracking,
                          kNumNodes / 2);
  EXPECT_EQ(analysis.Of(logs::ComponentKind::kProcessor).population, 2592u);
  EXPECT_EQ(analysis.Of(logs::ComponentKind::kDimm).population, 20736u);
}

TEST(ReplacementAnalysisTest, EmptyEvents) {
  const ReplacementAnalysis analysis = AnalyzeReplacements(
      {}, replace::ReplacementSimConfig::AstraDefaults().tracking, kNumNodes);
  for (const auto& kind : analysis.kinds) {
    EXPECT_EQ(kind.replaced, 0u);
    EXPECT_DOUBLE_EQ(kind.percent_of_total, 0.0);
  }
}

}  // namespace
}  // namespace astra::core
