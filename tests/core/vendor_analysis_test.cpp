#include "core/vendor_analysis.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

TEST(VendorAnalysisTest, RecoversInjectedVendorOrdering) {
  faultsim::CampaignConfig config;
  config.SeedFrom(13);
  config.node_count = 1200;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);

  VendorAnalysisOptions options;
  options.campaign_days = config.window.DurationDays();
  options.dimm_population = config.node_count * kDimmSlotsPerNode;
  const VendorAnalysis analysis = AnalyzeVendors(coalesced, options);

  // Injected multipliers: v0=0.85, v1=1.30, v2=0.70, v3=1.15.  The analysis
  // reads vendors back from the bit-position encoding; the recovered rate
  // ordering must match.
  const auto rate = [&](int v) {
    return analysis.vendors[static_cast<std::size_t>(v)].faults_per_dimm_year;
  };
  EXPECT_GT(rate(1), rate(0));
  EXPECT_GT(rate(1), rate(2));
  EXPECT_GT(rate(3), rate(2));
  EXPECT_GT(rate(1), rate(3) * 0.9);
  EXPECT_EQ(analysis.unattributed_faults, 0u);

  // Spread roughly matches 1.30/0.70 ~ 1.9 (susceptibility noise allowed).
  EXPECT_GT(analysis.MaxToMinRateRatio(), 1.3);
  EXPECT_LT(analysis.MaxToMinRateRatio(), 3.5);
}

TEST(VendorAnalysisTest, FaultAndErrorConservation) {
  faultsim::CampaignConfig config;
  config.SeedFrom(14);
  config.node_count = 300;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  const VendorAnalysis analysis = AnalyzeVendors(coalesced, VendorAnalysisOptions{});

  std::uint64_t faults = analysis.unattributed_faults, errors = 0;
  for (const auto& vendor : analysis.vendors) {
    faults += vendor.faults;
    errors += vendor.errors;
  }
  EXPECT_EQ(faults, coalesced.faults.size());
  EXPECT_EQ(errors, coalesced.total_errors);
}

TEST(VendorAnalysisTest, BootstrapCiBracketsPointEstimate) {
  faultsim::CampaignConfig config;
  config.SeedFrom(15);
  config.node_count = 600;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const auto coalesced = FaultCoalescer::Coalesce(sim.memory_errors);
  VendorAnalysisOptions options;
  options.campaign_days = config.window.DurationDays();
  options.dimm_population = config.node_count * kDimmSlotsPerNode;
  const VendorAnalysis analysis = AnalyzeVendors(coalesced, options);
  for (const auto& vendor : analysis.vendors) {
    if (vendor.faults < 10) continue;
    EXPECT_LE(vendor.rate_ci.lo, vendor.faults_per_dimm_year);
    EXPECT_GE(vendor.rate_ci.hi, vendor.faults_per_dimm_year);
    EXPECT_LT(vendor.rate_ci.lo, vendor.rate_ci.hi);
  }
}

TEST(VendorAnalysisTest, EmptyInput) {
  const VendorAnalysis analysis =
      AnalyzeVendors(CoalesceResult{}, VendorAnalysisOptions{});
  EXPECT_DOUBLE_EQ(analysis.MaxToMinRateRatio(), 0.0);
  for (const auto& vendor : analysis.vendors) EXPECT_EQ(vendor.faults, 0u);
}

}  // namespace
}  // namespace astra::core
