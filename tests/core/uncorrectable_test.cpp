#include "core/uncorrectable.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

TEST(FitArithmeticTest, PaperNumbersReproduced) {
  // §3.5: 0.00948 DUEs/DIMM/year -> FIT ~ 1081.
  EXPECT_NEAR(FitFromAnnualRate(0.00948), 1081.0, 1.0);
  EXPECT_DOUBLE_EQ(FitFromAnnualRate(0.0), 0.0);
}

logs::HetRecord Het(SimTime t, logs::HetEventType event,
                    logs::HetSeverity severity = logs::HetSeverity::kNonRecoverable) {
  logs::HetRecord r;
  r.timestamp = t;
  r.node = 1;
  r.event = event;
  r.severity = severity;
  return r;
}

TEST(UncorrectableAnalysisTest, CountsAndSeries) {
  const TimeWindow recording{SimTime::FromCivil(2019, 8, 23),
                             SimTime::FromCivil(2019, 9, 14)};
  std::vector<logs::HetRecord> records;
  records.push_back(Het(recording.begin, logs::HetEventType::kUncorrectableEcc));
  records.push_back(Het(recording.begin.AddDays(1),
                        logs::HetEventType::kUncorrectableMachineCheck));
  records.push_back(Het(recording.begin.AddDays(1),
                        logs::HetEventType::kPowerSupplyFailure,
                        logs::HetSeverity::kInformational));
  records.push_back(Het(recording.begin.AddDays(-5),
                        logs::HetEventType::kUncorrectableEcc));  // pre-recording
  const UncorrectableAnalysis analysis =
      AnalyzeUncorrectable(records, recording, kNumDimms);

  EXPECT_EQ(analysis.total_het_events, 3u);
  EXPECT_EQ(analysis.memory_due_events, 2u);
  EXPECT_EQ(analysis.events_before_recording, 1u);
  EXPECT_EQ(analysis.daily_by_type[static_cast<int>(
                logs::HetEventType::kUncorrectableEcc)][0],
            1u);
  EXPECT_EQ(analysis.daily_non_recoverable[1], 1u);

  const double years = recording.DurationDays() / 365.25;
  EXPECT_NEAR(analysis.dues_per_dimm_per_year, 2.0 / kNumDimms / years, 1e-12);
  EXPECT_NEAR(analysis.fit_per_dimm,
              FitFromAnnualRate(analysis.dues_per_dimm_per_year), 1e-9);
}

TEST(UncorrectableAnalysisTest, NonMemoryEventsNotDues) {
  const TimeWindow recording{SimTime::FromCivil(2019, 8, 23),
                             SimTime::FromCivil(2019, 9, 14)};
  std::vector<logs::HetRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Het(recording.begin.AddDays(i % 20),
                          logs::HetEventType::kRedundancyLost,
                          logs::HetSeverity::kDegraded));
  }
  const UncorrectableAnalysis analysis =
      AnalyzeUncorrectable(records, recording, kNumDimms);
  EXPECT_EQ(analysis.total_het_events, 10u);
  EXPECT_EQ(analysis.memory_due_events, 0u);
  EXPECT_DOUBLE_EQ(analysis.fit_per_dimm, 0.0);
}

TEST(UncorrectableAnalysisTest, SimulatedCampaignFitInPaperBand) {
  // Full-fleet campaign: the §3.5 reproduction (FIT ~ 1081 at full scale).
  faultsim::CampaignConfig config;
  config.SeedFrom(42);
  const auto sim = faultsim::FleetSimulator(config).Run();
  const TimeWindow recording{config.het_firmware_start, config.window.end};
  const UncorrectableAnalysis analysis =
      AnalyzeUncorrectable(sim.het_records, recording, kNumDimms);
  EXPECT_EQ(analysis.memory_due_events, sim.dues_recorded_by_het);
  EXPECT_EQ(analysis.events_before_recording, 0u);
  // Order-of-magnitude agreement with the paper's 1081 FIT.
  EXPECT_GT(analysis.fit_per_dimm, 200.0);
  EXPECT_LT(analysis.fit_per_dimm, 4000.0);
}

TEST(UncorrectableAnalysisTest, EmptyRecording) {
  const TimeWindow recording{SimTime::FromCivil(2019, 8, 23),
                             SimTime::FromCivil(2019, 8, 23)};
  const UncorrectableAnalysis analysis = AnalyzeUncorrectable({}, recording, 100);
  EXPECT_EQ(analysis.total_het_events, 0u);
  EXPECT_DOUBLE_EQ(analysis.fit_per_dimm, 0.0);
}

}  // namespace
}  // namespace astra::core
