#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

logs::MemoryErrorRecord Make(NodeId node, DimmSlot slot, std::uint64_t address,
                             int bit, int minute, bool due = false) {
  logs::MemoryErrorRecord r;
  r.timestamp = SimTime::FromCivil(2019, 4, 1).AddMinutes(minute);
  r.node = node;
  r.slot = slot;
  r.socket = SocketOfSlot(slot);
  r.rank = 0;
  r.bank = 0;
  r.bit_position = bit;
  r.physical_address = address;
  r.type = due ? logs::FailureType::kUncorrectable : logs::FailureType::kCorrectable;
  return r;
}

TEST(PredictorTest, MultibitSignatureFlagsBeforeDue) {
  std::vector<logs::MemoryErrorRecord> records;
  // Two distinct bits at one address, then a DUE a day later.
  records.push_back(Make(1, DimmSlot::A, 0x1000, 5, 0));
  records.push_back(Make(1, DimmSlot::A, 0x1000, 9, 10));
  records.push_back(Make(1, DimmSlot::A, 0x1000, 5, 24 * 60, /*due=*/true));
  PredictorConfig config;
  const PredictionEvaluation eval = EvaluatePredictor(records, config);
  EXPECT_EQ(eval.dimms_flagged, 1u);
  EXPECT_EQ(eval.dimms_with_due, 1u);
  EXPECT_EQ(eval.true_positives, 1u);
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_DOUBLE_EQ(eval.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.Recall(), 1.0);
  ASSERT_EQ(eval.flags.size(), 1u);
  EXPECT_EQ(eval.flags[0].reason, "multi-bit word signature");
  EXPECT_NEAR(eval.median_lead_time_days, 1.0, 0.02);
}

TEST(PredictorTest, LateFlagDoesNotCount) {
  std::vector<logs::MemoryErrorRecord> records;
  // DUE arrives FIRST; the signature appears only afterwards.
  records.push_back(Make(2, DimmSlot::B, 0x2000, 5, 0, /*due=*/true));
  records.push_back(Make(2, DimmSlot::B, 0x2000, 5, 10));
  records.push_back(Make(2, DimmSlot::B, 0x2000, 9, 20));
  const PredictionEvaluation eval = EvaluatePredictor(records, PredictorConfig{});
  EXPECT_EQ(eval.true_positives, 0u);
  EXPECT_EQ(eval.late_flags, 1u);
  EXPECT_EQ(eval.missed, 1u);
  EXPECT_DOUBLE_EQ(eval.Recall(), 0.0);
}

TEST(PredictorTest, LeadTimeRequirementEnforced) {
  std::vector<logs::MemoryErrorRecord> records;
  records.push_back(Make(3, DimmSlot::C, 0x3000, 1, 0));
  records.push_back(Make(3, DimmSlot::C, 0x3000, 2, 1));
  records.push_back(Make(3, DimmSlot::C, 0x3000, 1, 30, /*due=*/true));  // 29 min later
  PredictorConfig config;
  config.lead_time_seconds = 3600;  // need an hour of warning
  const PredictionEvaluation eval = EvaluatePredictor(records, config);
  EXPECT_EQ(eval.true_positives, 0u);
  EXPECT_EQ(eval.late_flags, 1u);
}

TEST(PredictorTest, CeVolumeRule) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(Make(4, DimmSlot::D, 0x4000, 7, i));
  }
  PredictorConfig config;
  config.flag_multibit_word_signature = false;
  config.ce_count_threshold = 40;
  const PredictionEvaluation eval = EvaluatePredictor(records, config);
  EXPECT_EQ(eval.dimms_flagged, 1u);
  EXPECT_EQ(eval.false_positives, 1u);  // no DUE ever arrived
  EXPECT_DOUBLE_EQ(eval.Precision(), 0.0);
}

TEST(PredictorTest, FootprintRule) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(Make(5, DimmSlot::E, 0x5000 + 8u * static_cast<unsigned>(i), 7, i));
  }
  PredictorConfig config;
  config.flag_multibit_word_signature = false;
  config.distinct_address_threshold = 10;
  const PredictionEvaluation eval = EvaluatePredictor(records, config);
  EXPECT_EQ(eval.dimms_flagged, 1u);
  ASSERT_EQ(eval.flags.size(), 1u);
  EXPECT_NE(eval.flags[0].reason.find("footprint"), std::string::npos);
}

TEST(PredictorTest, DisabledRulesFlagNothing) {
  std::vector<logs::MemoryErrorRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(Make(6, DimmSlot::F, 0x6000 + 8u * static_cast<unsigned>(i), i % 72, i));
  }
  PredictorConfig config;
  config.flag_multibit_word_signature = false;
  const PredictionEvaluation eval = EvaluatePredictor(records, config);
  EXPECT_EQ(eval.dimms_flagged, 0u);
}

TEST(PredictorTest, CampaignRecallOnSimulatedFleet) {
  // On simulator output, DUEs arise exclusively from multi-bit word faults,
  // whose CE streams show the signature — so the signature rule should
  // catch most DUE DIMMs with good precision.
  faultsim::CampaignConfig config;
  config.SeedFrom(77);
  config.node_count = 800;
  const auto sim = faultsim::FleetSimulator(config).Run();
  PredictorConfig predictor;
  predictor.lead_time_seconds = 0;
  const PredictionEvaluation eval = EvaluatePredictor(sim.memory_errors, predictor);
  if (eval.dimms_with_due >= 3) {
    EXPECT_GT(eval.Recall(), 0.5) << "flagged=" << eval.dimms_flagged
                                  << " with_due=" << eval.dimms_with_due;
  }
  // The signature rule should not spray flags across the fleet.
  EXPECT_LT(eval.dimms_flagged,
            static_cast<std::size_t>(config.node_count) * kDimmSlotsPerNode / 20);
}

}  // namespace
}  // namespace astra::core
