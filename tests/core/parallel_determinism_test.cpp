// Thread-count invariance of the parallel pipeline at the dataset level:
// ingest accounting, coalesced faults, positional tallies and the monthly
// series must be identical at --threads=1 and --threads=8, on clean data and
// on injector-damaged data alike.  These tests deliberately use a record set
// large enough to clear every parallel gate (>= 2^15 records, > 64 KiB).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/positional.hpp"
#include "core/temporal.hpp"
#include "faultsim/fleet.hpp"
#include "logs/corruption.hpp"
#include "logs/log_file.hpp"

namespace astra::core {
namespace {

const faultsim::CampaignResult& SmallCampaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.SeedFrom(11);
    config.node_count = 64;
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

// Replicate the campaign's error stream with a per-replica time offset so
// the result stays sorted and large enough to engage the sharded analyses.
const std::vector<logs::MemoryErrorRecord>& BigRecordSet() {
  static const std::vector<logs::MemoryErrorRecord> records = [] {
    const auto& base = SmallCampaign().memory_errors;
    SimTime lo = base.front().timestamp, hi = lo;
    for (const auto& r : base) {
      lo = std::min(lo, r.timestamp);
      hi = std::max(hi, r.timestamp);
    }
    const std::int64_t stride = SecondsBetween(lo, hi) + 1;
    std::vector<logs::MemoryErrorRecord> out;
    constexpr std::size_t kTargetRecords = 1 << 16;
    for (std::int64_t rep = 0; out.size() < kTargetRecords; ++rep) {
      for (auto r : base) {
        r.timestamp = r.timestamp.AddSeconds(rep * stride);
        out.push_back(r);
      }
    }
    return out;
  }();
  return records;
}

void ExpectReportsEqual(const logs::IngestReport& a, const logs::IngestReport& b) {
  EXPECT_EQ(a.stats.total_lines, b.stats.total_lines);
  EXPECT_EQ(a.stats.parsed, b.stats.parsed);
  EXPECT_EQ(a.stats.malformed, b.stats.malformed);
  EXPECT_EQ(a.malformed_by_reason, b.malformed_by_reason);
  EXPECT_EQ(a.duplicates_removed, b.duplicates_removed);
  EXPECT_EQ(a.out_of_order_seen, b.out_of_order_seen);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_EQ(a.order_violations, b.order_violations);
  EXPECT_EQ(a.header_remapped, b.header_remapped);
  EXPECT_EQ(a.budget_exceeded, b.budget_exceeded);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.repairs, b.repairs);
}

void ExpectIngestsEqual(const DatasetIngest& a, const DatasetIngest& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.memory_errors, b.memory_errors);
  EXPECT_EQ(a.het_events, b.het_events);
  EXPECT_EQ(a.het_missing, b.het_missing);
  ExpectReportsEqual(a.memory_report, b.memory_report);
  ExpectReportsEqual(a.het_report, b.het_report);
  EXPECT_EQ(a.quality.Caveats(), b.quality.Caveats());
  EXPECT_EQ(a.quality.Degraded(), b.quality.Degraded());
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_parallel_determinism_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    paths_ = DatasetPaths::InDirectory(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteDataset() {
    logs::LogFileWriter<logs::MemoryErrorRecord> errors(paths_.memory_errors);
    for (const auto& r : BigRecordSet()) errors.Append(r);
    ASSERT_TRUE(errors.Finish());
    logs::LogFileWriter<logs::HetRecord> het(paths_.het_events);
    for (const auto& r : SmallCampaign().het_records) het.Append(r);
    ASSERT_TRUE(het.Finish());
  }

  std::string dir_;
  DatasetPaths paths_;
};

TEST_F(ParallelDeterminismTest, CleanDatasetIngestIsThreadInvariant) {
  WriteDataset();
  const logs::IngestPolicy policy;
  const auto serial = IngestFailureData(paths_, policy, 1);
  const auto parallel = IngestFailureData(paths_, policy, 8);
  ASSERT_EQ(serial.status, DatasetStatus::kOk);
  ExpectIngestsEqual(serial, parallel);
  EXPECT_FALSE(parallel.memory_errors.empty());
}

TEST_F(ParallelDeterminismTest, CorruptedDatasetIngestIsThreadInvariant) {
  WriteDataset();
  logs::CorruptionConfig config;
  config.seed = 9;
  config.SetAll(0.35);
  const logs::CorruptionInjector injector(config);
  ASSERT_TRUE(injector.CorruptDirectory(dir_).has_value());

  const logs::IngestPolicy lenient;
  ExpectIngestsEqual(IngestFailureData(paths_, lenient, 1),
                     IngestFailureData(paths_, lenient, 8));

  logs::IngestPolicy strict;
  strict.mode = logs::IngestPolicy::Mode::kStrict;
  strict.max_malformed_fraction = 0.01;
  ExpectIngestsEqual(IngestFailureData(paths_, strict, 1),
                     IngestFailureData(paths_, strict, 8));
}

void ExpectCoalesceEqual(const CoalesceResult& a, const CoalesceResult& b) {
  EXPECT_EQ(a.total_errors, b.total_errors);
  EXPECT_EQ(a.skipped_records, b.skipped_records);
  EXPECT_EQ(a.caveats, b.caveats);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const auto& fa = a.faults[i];
    const auto& fb = b.faults[i];
    EXPECT_EQ(fa.node, fb.node) << "fault " << i;
    EXPECT_EQ(fa.socket, fb.socket) << "fault " << i;
    EXPECT_EQ(fa.slot, fb.slot) << "fault " << i;
    EXPECT_EQ(fa.rank, fb.rank) << "fault " << i;
    EXPECT_EQ(fa.bank, fb.bank) << "fault " << i;
    EXPECT_EQ(fa.mode, fb.mode) << "fault " << i;
    EXPECT_EQ(fa.error_count, fb.error_count) << "fault " << i;
    EXPECT_EQ(fa.distinct_addresses, fb.distinct_addresses) << "fault " << i;
    EXPECT_EQ(fa.distinct_columns, fb.distinct_columns) << "fault " << i;
    EXPECT_EQ(fa.distinct_bits, fb.distinct_bits) << "fault " << i;
    EXPECT_EQ(fa.distinct_rows, fb.distinct_rows) << "fault " << i;
    EXPECT_EQ(fa.first_seen, fb.first_seen) << "fault " << i;
    EXPECT_EQ(fa.last_seen, fb.last_seen) << "fault " << i;
    EXPECT_EQ(fa.anchor_address, fb.anchor_address) << "fault " << i;
    EXPECT_EQ(fa.anchor_bit, fb.anchor_bit) << "fault " << i;
    EXPECT_EQ(fa.monthly_errors, fb.monthly_errors) << "fault " << i;
  }
}

CoalesceOptions MonthTrackingOptions() {
  const auto& records = BigRecordSet();
  CoalesceOptions options;
  options.series_origin = records.front().timestamp;
  options.month_count =
      CalendarMonthIndex(options.series_origin, records.back().timestamp) + 1;
  return options;
}

TEST(ParallelAnalysisTest, CoalesceIsThreadInvariant) {
  const auto& records = BigRecordSet();
  const auto options = MonthTrackingOptions();
  const auto serial = FaultCoalescer::Coalesce(records, options, nullptr, 1);
  const auto parallel = FaultCoalescer::Coalesce(records, options, nullptr, 8);
  EXPECT_FALSE(serial.faults.empty());
  ExpectCoalesceEqual(serial, parallel);
}

TEST(ParallelAnalysisTest, PositionalTalliesAreThreadInvariant) {
  const auto& records = BigRecordSet();
  const auto coalesced =
      FaultCoalescer::Coalesce(records, MonthTrackingOptions(), nullptr, 1);
  const auto serial = AnalyzePositions(records, coalesced, 64, nullptr, 1);
  const auto parallel = AnalyzePositions(records, coalesced, 64, nullptr, 8);
  EXPECT_EQ(serial.errors.Total(), parallel.errors.Total());
  EXPECT_EQ(serial.errors.per_socket, parallel.errors.per_socket);
  EXPECT_EQ(serial.errors.per_bank, parallel.errors.per_bank);
  EXPECT_EQ(serial.errors.per_rank, parallel.errors.per_rank);
  EXPECT_EQ(serial.errors.per_slot, parallel.errors.per_slot);
  EXPECT_EQ(serial.errors.per_rack, parallel.errors.per_rack);
  EXPECT_EQ(serial.errors.per_region, parallel.errors.per_region);
  EXPECT_EQ(serial.errors.per_column_bucket, parallel.errors.per_column_bucket);
  EXPECT_EQ(serial.errors.per_rack_region, parallel.errors.per_rack_region);
  EXPECT_EQ(serial.errors.per_node, parallel.errors.per_node);
  EXPECT_EQ(serial.errors.per_bit_position, parallel.errors.per_bit_position);
  EXPECT_EQ(serial.errors.per_address, parallel.errors.per_address);
  EXPECT_EQ(serial.nodes_with_errors, parallel.nodes_with_errors);
}

TEST(ParallelAnalysisTest, MonthlySeriesIsThreadInvariant) {
  const auto& records = BigRecordSet();
  const auto options = MonthTrackingOptions();
  const auto coalesced = FaultCoalescer::Coalesce(records, options, nullptr, 1);
  const auto serial = BuildMonthlySeries(records, coalesced, options.series_origin,
                                         options.month_count, 1);
  const auto parallel = BuildMonthlySeries(records, coalesced, options.series_origin,
                                           options.month_count, 8);
  EXPECT_EQ(serial.all_errors, parallel.all_errors);
  for (std::size_t m = 0; m < serial.by_mode.size(); ++m) {
    EXPECT_EQ(serial.by_mode[m], parallel.by_mode[m]) << "mode " << m;
  }
  EXPECT_GT(std::count_if(serial.all_errors.begin(), serial.all_errors.end(),
                          [](std::uint64_t v) { return v > 0; }),
            0);
}

}  // namespace
}  // namespace astra::core
