#include "core/impact.hpp"

#include <gtest/gtest.h>

#include "faultsim/fleet.hpp"

namespace astra::core {
namespace {

const TimeWindow kWindow{SimTime::FromCivil(2019, 3, 1), SimTime::FromCivil(2019, 3, 11)};

logs::MemoryErrorRecord Make(NodeId node, std::uint64_t address, int bit, int minute,
                             bool due = false) {
  logs::MemoryErrorRecord r;
  r.timestamp = kWindow.begin.AddMinutes(minute);
  r.node = node;
  r.slot = DimmSlot::C;
  r.socket = 0;
  r.rank = 0;
  r.bank = 1;
  r.bit_position = bit;
  r.physical_address = address;
  r.type = due ? logs::FailureType::kUncorrectable : logs::FailureType::kCorrectable;
  return r;
}

TEST(ImpactTest, NoErrorsFullAvailability) {
  const ImpactAnalysis analysis = AnalyzeImpact({}, kWindow, 100);
  EXPECT_DOUBLE_EQ(analysis.availability, 1.0);
  EXPECT_DOUBLE_EQ(analysis.TotalLostNodeHours(), 0.0);
  EXPECT_NEAR(analysis.total_node_hours, 100 * 10 * 24.0, 1e-9);
}

TEST(ImpactTest, DueCostArithmetic) {
  std::vector<logs::MemoryErrorRecord> records;
  records.push_back(Make(0, 0x100, 3, 10, /*due=*/true));
  records.push_back(Make(1, 0x200, 4, 20, /*due=*/true));
  ImpactConfig config;
  config.due_outage_minutes = 30.0;
  config.due_lost_work_node_hours = 1.5;
  const ImpactAnalysis analysis = AnalyzeImpact(records, kWindow, 10, config);
  EXPECT_EQ(analysis.due_events, 2u);
  EXPECT_NEAR(analysis.node_hours_lost_to_dues, 2 * (0.5 + 1.5), 1e-9);
  EXPECT_LT(analysis.availability, 1.0);
  // No multi-bit signature preceded these DUEs: not chipkill-attributable.
  EXPECT_EQ(analysis.dues_avoidable_with_chipkill, 0u);
}

TEST(ImpactTest, ChipkillCounterfactualNeedsPriorSignature) {
  std::vector<logs::MemoryErrorRecord> records;
  // Two distinct bits at one word, THEN the DUE on the same DIMM.
  records.push_back(Make(3, 0x4000, 7, 0));
  records.push_back(Make(3, 0x4000, 9, 5));
  records.push_back(Make(3, 0x4000, 7, 60, /*due=*/true));
  const ImpactAnalysis analysis = AnalyzeImpact(records, kWindow, 10);
  EXPECT_EQ(analysis.due_events, 1u);
  EXPECT_EQ(analysis.dues_avoidable_with_chipkill, 1u);
  EXPECT_GT(analysis.node_hours_saved_by_chipkill, 0.0);
}

TEST(ImpactTest, StormHoursCounted) {
  std::vector<logs::MemoryErrorRecord> records;
  ImpactConfig config;
  config.storm_ces_per_hour = 100;
  config.storm_slowdown_fraction = 0.25;
  // 150 CEs within one hour on node 5 (storm), 50 CEs on node 6 (not).
  for (int i = 0; i < 150; ++i) records.push_back(Make(5, 0x10, 2, i % 59));
  for (int i = 0; i < 50; ++i) records.push_back(Make(6, 0x20, 2, i % 59));
  const ImpactAnalysis analysis = AnalyzeImpact(records, kWindow, 10, config);
  EXPECT_EQ(analysis.storm_node_hours, 1u);
  EXPECT_NEAR(analysis.node_hours_lost_to_storms, 0.25, 1e-9);
}

TEST(ImpactTest, RecordsOutsideWindowIgnored) {
  std::vector<logs::MemoryErrorRecord> records;
  auto r = Make(0, 0x1, 1, 0, /*due=*/true);
  r.timestamp = kWindow.end.AddDays(5);
  records.push_back(r);
  const ImpactAnalysis analysis = AnalyzeImpact(records, kWindow, 10);
  EXPECT_EQ(analysis.due_events, 0u);
}

TEST(ImpactTest, CampaignAvailabilityNearOne) {
  faultsim::CampaignConfig config;
  config.SeedFrom(61);
  config.node_count = 600;
  const auto sim = faultsim::FleetSimulator(config).Run();
  const ImpactAnalysis analysis =
      AnalyzeImpact(sim.memory_errors, config.window, config.node_count);
  // Memory failures cost real node-hours but the machine stays >99.9%
  // available — consistent with Astra running production workloads.
  EXPECT_GT(analysis.availability, 0.999);
  EXPECT_GT(analysis.TotalLostNodeHours(), 0.0);
  EXPECT_EQ(analysis.due_events, sim.total_dues);
  // Most DUEs are preceded by the multi-bit CE signature (capable word
  // faults log CEs first), so chipkill would have absorbed most crashes.
  if (analysis.due_events >= 5) {
    EXPECT_GT(static_cast<double>(analysis.dues_avoidable_with_chipkill) /
                  static_cast<double>(analysis.due_events),
              0.5);
  }
}

}  // namespace
}  // namespace astra::core
