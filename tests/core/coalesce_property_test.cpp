// Property tests for the fault coalescer: order invariance, conservation
// under arbitrary shuffles, and the non-Astra row-decodable path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/coalesce.hpp"
#include "faultsim/fleet.hpp"
#include "util/rng.hpp"

namespace astra::core {
namespace {

std::vector<logs::MemoryErrorRecord> CampaignRecords(std::uint64_t seed, int nodes) {
  faultsim::CampaignConfig config;
  config.SeedFrom(seed);
  config.node_count = nodes;
  return faultsim::FleetSimulator(config).Run().memory_errors;
}

bool SameFaults(const CoalesceResult& a, const CoalesceResult& b) {
  if (a.faults.size() != b.faults.size()) return false;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const auto& fa = a.faults[i];
    const auto& fb = b.faults[i];
    if (fa.node != fb.node || fa.slot != fb.slot || fa.rank != fb.rank ||
        fa.bank != fb.bank || fa.mode != fb.mode ||
        fa.error_count != fb.error_count ||
        fa.distinct_addresses != fb.distinct_addresses ||
        fa.distinct_bits != fb.distinct_bits ||
        fa.first_seen != fb.first_seen || fa.last_seen != fb.last_seen) {
      return false;
    }
  }
  return true;
}

class ShuffleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffleTest, RecordOrderDoesNotChangeFaults) {
  std::vector<logs::MemoryErrorRecord> records = CampaignRecords(31, 120);
  const CoalesceResult baseline = FaultCoalescer::Coalesce(records);

  Rng rng(GetParam());
  // Fisher-Yates with our own RNG for determinism.
  for (std::size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.UniformInt(i)]);
  }
  const CoalesceResult shuffled = FaultCoalescer::Coalesce(records);
  EXPECT_TRUE(SameFaults(baseline, shuffled));
  EXPECT_EQ(baseline.total_errors, shuffled.total_errors);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, ShuffleTest, ::testing::Values(1ULL, 2ULL, 3ULL));

TEST(CoalescePropertyTest, ConservationUnderSplitting) {
  // Coalescing a prefix and suffix separately can only split faults, never
  // lose errors.
  const auto records = CampaignRecords(32, 100);
  const CoalesceResult whole = FaultCoalescer::Coalesce(records);
  const std::size_t cut = records.size() / 2;
  const CoalesceResult first = FaultCoalescer::Coalesce(
      std::span<const logs::MemoryErrorRecord>(records).subspan(0, cut));
  const CoalesceResult second = FaultCoalescer::Coalesce(
      std::span<const logs::MemoryErrorRecord>(records).subspan(cut));
  EXPECT_EQ(first.total_errors + second.total_errors, whole.total_errors);
  EXPECT_GE(first.faults.size() + second.faults.size(), whole.faults.size());
}

TEST(CoalescePropertyTest, RowDecodablePlatformConfirmsRowFaults) {
  // Non-Astra condition: records carry row info and the classifier trusts
  // it.  Single-row ground-truth faults then coalesce into row-like groups
  // with distinct_rows == 1 (a CONFIRMED single-row fault).
  faultsim::CampaignConfig config;
  config.SeedFrom(33);
  config.node_count = 500;
  config.record_row_info = true;
  const auto sim = faultsim::FleetSimulator(config).Run();

  // Row info must actually be present in the records now.
  bool saw_row = false;
  for (const auto& r : sim.memory_errors) saw_row |= r.row != logs::kNoRowInfo;
  ASSERT_TRUE(saw_row);

  CoalesceOptions options;
  options.row_decodable = true;
  const CoalesceResult result = FaultCoalescer::Coalesce(sim.memory_errors, options);

  std::size_t confirmed_single_row = 0, row_like = 0;
  for (const auto& fault : result.faults) {
    if (fault.mode != faultsim::ObservedMode::kUnattributedRowLike) continue;
    ++row_like;
    confirmed_single_row += fault.distinct_rows == 1;
  }
  ASSERT_GT(row_like, 10u);
  // The overwhelming majority of row-like groups are genuine single-row
  // faults, now confirmable because rows are visible.
  EXPECT_GT(static_cast<double>(confirmed_single_row) / static_cast<double>(row_like),
            0.9);
}

TEST(CoalescePropertyTest, DuplicateRecordsFoldIntoSameFault) {
  const auto records = CampaignRecords(34, 60);
  std::vector<logs::MemoryErrorRecord> doubled = records;
  doubled.insert(doubled.end(), records.begin(), records.end());
  const CoalesceResult once = FaultCoalescer::Coalesce(records);
  const CoalesceResult twice = FaultCoalescer::Coalesce(doubled);
  EXPECT_EQ(once.faults.size(), twice.faults.size());
  EXPECT_EQ(twice.total_errors, 2 * once.total_errors);
}

}  // namespace
}  // namespace astra::core
