// Cross-cutting ECC properties, parameterized over flip multiplicity:
// for any k >= 1 distinct flipped bits, neither codec may ever report a
// clean word, and for k = 1 both must fully correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ecc/adjudicate.hpp"
#include "util/rng.hpp"

namespace astra::ecc {
namespace {

std::vector<int> DistinctBits(Rng& rng, int k, int universe) {
  std::vector<int> bits;
  while (static_cast<int>(bits.size()) < k) {
    const int bit = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(universe)));
    if (std::find(bits.begin(), bits.end(), bit) == bits.end()) bits.push_back(bit);
  }
  return bits;
}

class FlipCountTest : public ::testing::TestWithParam<int> {};

TEST_P(FlipCountTest, SecDedNeverReportsCleanForDistinctFlips) {
  const int k = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(k));
  for (int trial = 0; trial < 400; ++trial) {
    const std::vector<int> bits = DistinctBits(rng, k, kCodeBits);
    const ErrorOutcome outcome = AdjudicateSecDed(rng(), bits);
    EXPECT_NE(outcome, ErrorOutcome::kClean) << "k=" << k;
    if (k == 1) EXPECT_EQ(outcome, ErrorOutcome::kCorrected);
    if (k == 2) EXPECT_EQ(outcome, ErrorOutcome::kUncorrectable);
  }
}

TEST_P(FlipCountTest, ChipkillNeverReportsCleanForDistinctFlips) {
  const int k = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(k));
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<BeatBit> flips;
    // Distinct (beat, bit) pairs across the 144-bit word.
    std::vector<int> encoded = DistinctBits(rng, k, 144);
    for (const int e : encoded) flips.push_back({e / 72, e % 72});
    const ErrorOutcome outcome = AdjudicateChipkill(rng(), rng(), flips);
    EXPECT_NE(outcome, ErrorOutcome::kClean) << "k=" << k;
    if (k == 1) EXPECT_EQ(outcome, ErrorOutcome::kCorrected);
  }
}

INSTANTIATE_TEST_SUITE_P(FlipCounts, FlipCountTest, ::testing::Range(1, 9));

TEST(EccContrastTest, SameDevicePatternsSeparateTheCodes) {
  // Sweep every device and every 2-bit same-device pattern within beat 0:
  // SEC-DED must DUE, chipkill must correct.  Exhaustive, not sampled.
  for (int device = 0; device < 18; ++device) {
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        const std::vector<int> bits = {device * 4 + a, device * 4 + b};
        EXPECT_EQ(AdjudicateSecDed(0x123456789abcdef0ULL, bits),
                  ErrorOutcome::kUncorrectable);
        const std::vector<BeatBit> flips = {{0, bits[0]}, {0, bits[1]}};
        EXPECT_EQ(AdjudicateChipkill(0x123456789abcdef0ULL, 42, flips),
                  ErrorOutcome::kCorrected);
      }
    }
  }
}

TEST(EccContrastTest, CrossBeatSameDeviceStillCorrectable) {
  // A device failing in BOTH beats of the burst is still one symbol.
  for (int device = 0; device < 18; ++device) {
    const std::vector<BeatBit> flips = {{0, device * 4}, {1, device * 4 + 3}};
    EXPECT_EQ(AdjudicateChipkill(7, 9, flips), ErrorOutcome::kCorrected) << device;
  }
}

}  // namespace
}  // namespace astra::ecc
