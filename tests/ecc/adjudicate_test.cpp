#include "ecc/adjudicate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::ecc {
namespace {

TEST(AdjudicateSecDedTest, NoFlipsIsClean) {
  EXPECT_EQ(AdjudicateSecDed(123, {}), ErrorOutcome::kClean);
}

TEST(AdjudicateSecDedTest, SingleFlipCorrected) {
  for (int bit = 0; bit < kCodeBits; bit += 7) {
    const std::vector<int> flips = {bit};
    EXPECT_EQ(AdjudicateSecDed(0xdeadbeefULL, flips), ErrorOutcome::kCorrected);
  }
}

TEST(AdjudicateSecDedTest, DoubleFlipUncorrectable) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const int a = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    int b;
    do {
      b = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    } while (b == a);
    const std::vector<int> flips = {a, b};
    EXPECT_EQ(AdjudicateSecDed(rng(), flips), ErrorOutcome::kUncorrectable);
  }
}

TEST(AdjudicateSecDedTest, DuplicateFlipsCancel) {
  const std::vector<int> flips = {5, 5};
  EXPECT_EQ(AdjudicateSecDed(77, flips), ErrorOutcome::kClean);
  const std::vector<int> three = {5, 5, 9};
  EXPECT_EQ(AdjudicateSecDed(77, three), ErrorOutcome::kCorrected);
}

TEST(AdjudicateSecDedTest, OutOfRangeFlipsIgnored) {
  const std::vector<int> flips = {-1, 100};
  EXPECT_EQ(AdjudicateSecDed(1, flips), ErrorOutcome::kClean);
}

TEST(AdjudicateSecDedTest, TripleFlipNeverClean) {
  Rng rng(4);
  int silent = 0, corrected = 0, uncorrectable = 0;
  for (int trial = 0; trial < 500; ++trial) {
    int bits[3];
    bits[0] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    do {
      bits[1] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    const std::vector<int> flips = {bits[0], bits[1], bits[2]};
    switch (AdjudicateSecDed(rng(), flips)) {
      case ErrorOutcome::kClean: FAIL() << "triple flip reported clean";
      case ErrorOutcome::kSilent: ++silent; break;
      case ErrorOutcome::kCorrected: ++corrected; break;
      case ErrorOutcome::kUncorrectable: ++uncorrectable; break;
    }
  }
  // Triple errors mostly miscorrect under SEC-DED — the silent-corruption
  // exposure that §3.2's "would manifest as uncorrectable" understates.
  EXPECT_GT(silent, 0);
  // Restoring the true data requires all flips AND the correction to land
  // on check bits — possible but vanishingly rare.
  EXPECT_LE(corrected, 5);
}

TEST(AdjudicateChipkillTest, SingleDeviceAnyPatternCorrected) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int device = static_cast<int>(rng.UniformInt(std::uint64_t{18}));
    std::vector<BeatBit> flips;
    const int nflips = 1 + static_cast<int>(rng.UniformInt(std::uint64_t{8}));
    for (int f = 0; f < nflips; ++f) {
      flips.push_back(BeatBit{static_cast<int>(rng.UniformInt(std::uint64_t{2})),
                              device * 4 + static_cast<int>(rng.UniformInt(std::uint64_t{4}))});
    }
    const auto outcome = AdjudicateChipkill(rng(), rng(), flips);
    EXPECT_TRUE(outcome == ErrorOutcome::kCorrected || outcome == ErrorOutcome::kClean);
  }
}

TEST(AdjudicateChipkillTest, CorrectsWhatSecDedCannot) {
  // Two bits in one x4 device, same beat: DUE under SEC-DED, CE under
  // chipkill.  This is the ablation bench's core contrast.
  const std::vector<int> secded_flips = {8, 9};
  EXPECT_EQ(AdjudicateSecDed(0xabcdULL, secded_flips), ErrorOutcome::kUncorrectable);
  const std::vector<BeatBit> ck_flips = {{0, 8}, {0, 9}};
  EXPECT_EQ(AdjudicateChipkill(0xabcdULL, 0x1234ULL, ck_flips),
            ErrorOutcome::kCorrected);
}

TEST(AdjudicateChipkillTest, EmptyAndInvalidFlips) {
  EXPECT_EQ(AdjudicateChipkill(1, 2, {}), ErrorOutcome::kClean);
  const std::vector<BeatBit> bad = {{-1, 5}, {2, 5}, {0, 72}};
  EXPECT_EQ(AdjudicateChipkill(1, 2, bad), ErrorOutcome::kClean);
}

}  // namespace
}  // namespace astra::ecc
