#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::ecc {
namespace {

std::vector<std::uint64_t> TestWords() {
  std::vector<std::uint64_t> words = {0ULL, ~0ULL, 0x0123456789abcdefULL,
                                      0xAAAAAAAAAAAAAAAAULL, 1ULL};
  Rng rng(1234);
  for (int i = 0; i < 5; ++i) words.push_back(rng());
  return words;
}

TEST(SecDedTest, CleanRoundTrip) {
  for (const std::uint64_t data : TestWords()) {
    const CodeWord encoded = Encode(data);
    EXPECT_EQ(ExtractData(encoded), data);
    const DecodeResult result = Decode(encoded);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
    EXPECT_EQ(result.syndrome, 0);
  }
}

TEST(SecDedTest, DataBitPositionsAreDataPositions) {
  for (int d = 0; d < kDataBits; ++d) {
    const int pos = DataBitPosition(d);
    EXPECT_GE(pos, 3);
    EXPECT_LE(pos, 71);
    EXPECT_FALSE(IsCheckPosition(pos));
  }
  for (const int p : {1, 2, 4, 8, 16, 32, 64, 72}) {
    EXPECT_TRUE(IsCheckPosition(p));
  }
}

// Property: EVERY single-bit flip (all 72 positions) is corrected, and the
// corrected bit is reported at the right position.
class SingleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(SingleBitTest, CorrectedEverywhere) {
  const int bit = GetParam();  // external 0-based position
  for (const std::uint64_t data : TestWords()) {
    CodeWord received = Encode(data);
    received.FlipBit(bit);
    const DecodeResult result = Decode(received);
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedSingle) << "bit " << bit;
    EXPECT_EQ(result.data, data) << "bit " << bit;
    EXPECT_EQ(result.corrected_bit, bit);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SingleBitTest, ::testing::Range(0, kCodeBits));

// Property: EVERY double-bit flip is detected as uncorrectable and never
// silently miscorrected.  Exhaustive over all C(72,2) = 2556 pairs.
TEST(SecDedTest, AllDoubleFlipsDetected) {
  const std::uint64_t data = 0x0123456789abcdefULL;
  const CodeWord clean = Encode(data);
  for (int a = 0; a < kCodeBits; ++a) {
    for (int b = a + 1; b < kCodeBits; ++b) {
      CodeWord received = clean;
      received.FlipBit(a);
      received.FlipBit(b);
      const DecodeResult result = Decode(received);
      EXPECT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
          << "bits " << a << "," << b;
    }
  }
}

TEST(SecDedTest, TripleFlipsNeverReportClean) {
  // Odd error counts flip overall parity, so a triple error can masquerade
  // as a correctable single (possibly miscorrecting) but never as clean.
  const std::uint64_t data = 0xfeedfacecafebeefULL;
  const CodeWord clean = Encode(data);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    int bits[3];
    bits[0] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    do {
      bits[1] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    CodeWord received = clean;
    for (const int bit : bits) received.FlipBit(bit);
    const DecodeResult result = Decode(received);
    EXPECT_NE(result.status, DecodeStatus::kClean);
  }
}

TEST(SecDedTest, FlipOfFlipRestoresWord) {
  CodeWord word = Encode(42);
  word.FlipBit(17);
  word.FlipBit(17);
  EXPECT_EQ(word, Encode(42));
}

TEST(SecDedTest, PositionBitAccessors) {
  CodeWord word;
  for (int pos = 1; pos <= kCodeBits; ++pos) {
    EXPECT_FALSE(word.GetPosition(pos));
    word.SetPosition(pos, true);
    EXPECT_TRUE(word.GetPosition(pos));
    word.SetPosition(pos, false);
    EXPECT_FALSE(word.GetPosition(pos));
  }
}

TEST(SecDedTest, DistinctDataDistinctCodewords) {
  EXPECT_NE(Encode(1), Encode(2));
  EXPECT_NE(Encode(0), Encode(~0ULL));
}

}  // namespace
}  // namespace astra::ecc
