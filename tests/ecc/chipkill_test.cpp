#include "ecc/chipkill.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace astra::ecc {
namespace {

TEST(ChipkillTest, CleanRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t lo = rng(), hi = rng();
    const ChipkillWord word = ChipkillEncode(lo, hi);
    EXPECT_EQ(ChipkillExtractData(word), (std::array<std::uint64_t, 2>{lo, hi}));
    const ChipkillResult result = ChipkillDecode(word);
    EXPECT_EQ(result.status, ChipkillStatus::kClean);
    EXPECT_EQ(result.data[0], lo);
    EXPECT_EQ(result.data[1], hi);
  }
}

TEST(ChipkillTest, CheckSymbolsOnlyUseTopSlots) {
  const ChipkillWord word = ChipkillEncode(0, 0);
  // All-zero data must encode to the all-zero codeword (linearity).
  for (int j = 0; j < kChipkillDevices; ++j) EXPECT_EQ(word.symbols[j], 0);
}

// THE chipkill property: any error pattern confined to one device — up to
// all 8 of its bits across both beats — is corrected.  Exhaustive over all
// 18 devices x 255 nonzero patterns.
class DeviceFailureTest : public ::testing::TestWithParam<int> {};

TEST_P(DeviceFailureTest, WholeDeviceCorrectable) {
  const int device = GetParam();
  const std::uint64_t lo = 0x0123456789abcdefULL;
  const std::uint64_t hi = 0xfedcba9876543210ULL;
  const ChipkillWord clean = ChipkillEncode(lo, hi);
  for (int pattern = 1; pattern < 256; ++pattern) {
    ChipkillWord received = clean;
    received.symbols[device] =
        static_cast<std::uint8_t>(received.symbols[device] ^ pattern);
    const ChipkillResult result = ChipkillDecode(received);
    EXPECT_EQ(result.status, ChipkillStatus::kCorrectedSymbol)
        << "device " << device << " pattern " << pattern;
    EXPECT_EQ(result.corrected_device, device);
    EXPECT_EQ(result.data[0], lo);
    EXPECT_EQ(result.data[1], hi);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceFailureTest,
                         ::testing::Range(0, kChipkillDevices));

TEST(ChipkillTest, FlipBitMapsToRightDevice) {
  const ChipkillWord clean = ChipkillEncode(7, 9);
  for (int beat = 0; beat < kChipkillBeats; ++beat) {
    for (int bit = 0; bit < 72; ++bit) {
      ChipkillWord received = clean;
      received.FlipBit(beat, bit);
      const ChipkillResult result = ChipkillDecode(received);
      ASSERT_EQ(result.status, ChipkillStatus::kCorrectedSymbol);
      EXPECT_EQ(result.corrected_device, bit / 4);
    }
  }
}

TEST(ChipkillTest, TwoDeviceErrorsNeverSilentlyClean) {
  // Distance 3: two-device errors may be detected or miscorrected, but the
  // decoder must never return kClean with wrong data.
  Rng rng(2);
  const std::uint64_t lo = 0x1111222233334444ULL, hi = 0x5555666677778888ULL;
  const ChipkillWord clean = ChipkillEncode(lo, hi);
  int detected = 0, miscorrected = 0;
  const int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    const int d1 = static_cast<int>(rng.UniformInt(std::uint64_t{kChipkillDevices}));
    int d2;
    do {
      d2 = static_cast<int>(rng.UniformInt(std::uint64_t{kChipkillDevices}));
    } while (d2 == d1);
    ChipkillWord received = clean;
    received.symbols[d1] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(std::uint64_t{255}));
    received.symbols[d2] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(std::uint64_t{255}));
    const ChipkillResult result = ChipkillDecode(received);
    ASSERT_NE(result.status, ChipkillStatus::kClean);
    if (result.status == ChipkillStatus::kDetectedUncorrectable) {
      ++detected;
    } else {
      ++miscorrected;  // inherent distance-3 exposure, documented
    }
  }
  // The majority of double-device errors must be detected.
  EXPECT_GT(detected, kTrials / 2);
  // And the miscorrection exposure exists but is bounded (locator must land
  // on one of 16 remaining devices out of 255 field points: ~6%).
  EXPECT_LT(miscorrected, kTrials / 5);
}

TEST(ChipkillTest, SecDedKillerPatternIsChipkillCorrectable) {
  // The motivating comparison: a two-bit error within one device defeats
  // SEC-DED (it is a DUE there) but is transparently corrected by chipkill.
  const ChipkillWord clean = ChipkillEncode(42, 43);
  ChipkillWord received = clean;
  received.FlipBit(0, 8);  // device 2, lane 0
  received.FlipBit(0, 9);  // device 2, lane 1
  const ChipkillResult result = ChipkillDecode(received);
  EXPECT_EQ(result.status, ChipkillStatus::kCorrectedSymbol);
  EXPECT_EQ(result.corrected_device, 2);
  EXPECT_EQ(result.data[0], 42u);
}

}  // namespace
}  // namespace astra::ecc
