#include "ecc/scheme.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace astra::ecc {
namespace {

// Data words spanning the corner cases; every adjudication below must hold
// for ALL of them (the codecs are linear, so outcomes depend only on the
// flip pattern).
constexpr std::uint64_t kDatas[] = {0, 0xdeadbeefcafef00dULL, ~0ULL,
                                    0x0123456789abcdefULL};

TEST(EccSchemeTest, NameRoundTrip) {
  for (int s = 0; s < kEccSchemeCount; ++s) {
    const auto scheme = static_cast<EccScheme>(s);
    const auto parsed = EccSchemeFromName(EccSchemeName(scheme));
    ASSERT_TRUE(parsed.has_value()) << EccSchemeName(scheme);
    EXPECT_EQ(*parsed, scheme);
  }
  EXPECT_FALSE(EccSchemeFromName("").has_value());
  EXPECT_FALSE(EccSchemeFromName("SECDED").has_value());
  EXPECT_FALSE(EccSchemeFromName("raid").has_value());
}

TEST(EccSchemeTest, SecDedRouteIsTheBaselineCodecBitForBit) {
  // The seam's byte-identity guarantee: routing through kSecDed must equal a
  // direct AdjudicateSecDed call on arbitrary flip sets.
  Rng rng(0x5eed);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t data = rng();
    int flips[4];
    const int n = static_cast<int>(rng.UniformInt(std::uint64_t{5}));
    for (int i = 0; i < n; ++i) {
      flips[i] = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBits}));
    }
    const std::span<const int> set(flips, static_cast<std::size_t>(n));
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, set),
              AdjudicateSecDed(data, set));
  }
}

// The §3.5 counterfactual the campaign engine exists to quantify: the very
// flip set that is a DUE on Astra's SEC-DED is a CE under chipkill when both
// bits live in one x4 device.
TEST(EccSchemeTest, SameDeviceDoubleFlipDueUnderSecDedCorrectedUnderChipkill) {
  for (const std::uint64_t data : kDatas) {
    for (int device = 0; device < kChipkillDevices; ++device) {
      const int base = device * kBitsPerBeatPerDevice;
      const int flips[2] = {base, base + 1};
      EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, flips),
                ErrorOutcome::kUncorrectable);
      EXPECT_EQ(AdjudicateWordFault(EccScheme::kChipkill, data, flips),
                ErrorOutcome::kCorrected);
    }
  }
}

TEST(EccSchemeTest, CrossDeviceDoubleFlipDueUnderBothRankCodes) {
  // Two flips in two different devices defeat chipkill's single-symbol
  // correction too: no counterfactual win for this class.
  for (const std::uint64_t data : kDatas) {
    const int flips[2] = {0, kBitsPerBeatPerDevice};
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, flips),
              ErrorOutcome::kUncorrectable);
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kChipkill, data, flips),
              ErrorOutcome::kUncorrectable);
  }
}

TEST(EccSchemeTest, SingleFlipIsACeExceptOnDieSwallowsIt) {
  // On-die ECC corrects a lone in-device flip before the transfer: the host
  // codec never sees it, so the CE telemetry the paper's Fig. 4/5 analyses
  // feed on collapses under this scheme.
  for (const std::uint64_t data : kDatas) {
    const int flips[1] = {7};
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, flips),
              ErrorOutcome::kCorrected);
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kChipkill, data, flips),
              ErrorOutcome::kCorrected);
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kOnDieSecDed, data, flips),
              ErrorOutcome::kClean);
  }
}

TEST(EccSchemeTest, OnDieCorrectsScatteredFlipsInvisibly) {
  // One flip per device, three devices: each on-die code corrects its own,
  // nothing reaches the bus — while host-level SEC-DED alone MISCORRECTS the
  // same three-flip pattern into silent corruption.
  for (const std::uint64_t data : kDatas) {
    const int flips[3] = {2, 9, 17};
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, flips),
              ErrorOutcome::kSilent);
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kOnDieSecDed, data, flips),
              ErrorOutcome::kClean);
  }
}

TEST(EccSchemeTest, OnDieDoubleFlipForwardsOrMiscorrects) {
  for (const std::uint64_t data : kDatas) {
    // Lanes {0,1}: the miscorrection lane (0+1)%4 collides with lane 1, so
    // exactly the two real flips reach the host SEC-DED: a detected DUE.
    const int pass_through[2] = {0, 1};
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kOnDieSecDed, data, pass_through),
              ErrorOutcome::kUncorrectable);
    // Lanes {1,2}: the defeated on-die code "corrects" lane 3 as well; the
    // three-lane pattern miscorrects at the host — the on-die SDC hazard.
    const int miscorrect[2] = {1, 2};
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kOnDieSecDed, data, miscorrect),
              ErrorOutcome::kSilent);
  }
}

TEST(EccSchemeTest, EmptyAndCancellingFlipSetsAreClean) {
  for (const std::uint64_t data : kDatas) {
    EXPECT_EQ(AdjudicateWordFault(EccScheme::kSecDed, data, {}),
              ErrorOutcome::kClean);
    const int cancel[2] = {5, 5};
    for (int s = 0; s < kEccSchemeCount; ++s) {
      EXPECT_EQ(AdjudicateWordFault(static_cast<EccScheme>(s), data, cancel),
                ErrorOutcome::kClean);
    }
  }
}

}  // namespace
}  // namespace astra::ecc
