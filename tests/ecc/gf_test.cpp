// Field-axiom tests for GF(16) and GF(256).  GF(16) is exhaustive; GF(256)
// samples associativity/distributivity and is exhaustive for inverses.
#include <gtest/gtest.h>

#include "ecc/gf16.hpp"
#include "ecc/gf256.hpp"

namespace astra::ecc {
namespace {

TEST(Gf16Test, AdditionIsXor) {
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(Gf16::Add(static_cast<Gf16::Symbol>(a), static_cast<Gf16::Symbol>(b)),
                (a ^ b) & 0xF);
    }
  }
}

TEST(Gf16Test, MultiplicationCommutativeAssociative) {
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      const auto sa = static_cast<Gf16::Symbol>(a);
      const auto sb = static_cast<Gf16::Symbol>(b);
      EXPECT_EQ(Gf16::Mul(sa, sb), Gf16::Mul(sb, sa));
      for (int c = 0; c < 16; ++c) {
        const auto sc = static_cast<Gf16::Symbol>(c);
        EXPECT_EQ(Gf16::Mul(Gf16::Mul(sa, sb), sc), Gf16::Mul(sa, Gf16::Mul(sb, sc)));
        EXPECT_EQ(Gf16::Mul(sa, Gf16::Add(sb, sc)),
                  Gf16::Add(Gf16::Mul(sa, sb), Gf16::Mul(sa, sc)));
      }
    }
  }
}

TEST(Gf16Test, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 16; ++a) {
    const auto sa = static_cast<Gf16::Symbol>(a);
    EXPECT_EQ(Gf16::Mul(sa, 1), sa);
    EXPECT_EQ(Gf16::Mul(sa, 0), 0);
  }
}

TEST(Gf16Test, InversesExhaustive) {
  for (int a = 1; a < 16; ++a) {
    const auto sa = static_cast<Gf16::Symbol>(a);
    EXPECT_EQ(Gf16::Mul(sa, Gf16::Inverse(sa)), 1) << a;
    EXPECT_EQ(Gf16::Div(sa, sa), 1);
  }
}

TEST(Gf16Test, GeneratorHasFullOrder) {
  // alpha = x must generate all 15 nonzero elements.
  bool seen[16] = {};
  for (int e = 0; e < 15; ++e) seen[Gf16::Pow(e)] = true;
  for (int v = 1; v < 16; ++v) EXPECT_TRUE(seen[v]) << v;
  EXPECT_EQ(Gf16::Pow(15), 1);  // alpha^order == 1
  EXPECT_EQ(Gf16::Pow(-1), Gf16::Pow(14));
}

TEST(Gf16Test, LogExpInverse) {
  for (int a = 1; a < 16; ++a) {
    EXPECT_EQ(Gf16::Pow(Gf16::Log(static_cast<Gf16::Symbol>(a))), a);
  }
}

TEST(Gf256Test, InversesExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const auto sa = static_cast<Gf256::Symbol>(a);
    EXPECT_EQ(Gf256::Mul(sa, Gf256::Inverse(sa)), 1) << a;
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  bool seen[256] = {};
  for (int e = 0; e < 255; ++e) seen[Gf256::Pow(e)] = true;
  int covered = 0;
  for (int v = 1; v < 256; ++v) covered += seen[v];
  EXPECT_EQ(covered, 255);
  EXPECT_EQ(Gf256::Pow(255), 1);
}

TEST(Gf256Test, AxiomsSampled) {
  // Pseudo-random triples cover associativity and distributivity.
  std::uint32_t state = 12345;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<Gf256::Symbol>(state >> 24);
  };
  for (int i = 0; i < 20000; ++i) {
    const Gf256::Symbol a = next(), b = next(), c = next();
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, KnownProducts) {
  // In GF(256) with 0x11D: 0x02 * 0x80 = 0x1D (reduction kicks in), and
  // squaring the generator walks the exp table.
  EXPECT_EQ(Gf256::Mul(0x02, 0x80), 0x1D);
  EXPECT_EQ(Gf256::Mul(0x02, 0x02), 0x04);
  EXPECT_EQ(Gf256::Pow(8), 0x1D);  // alpha^8 = reduction polynomial tail
}

TEST(Gf256Test, DivisionConsistent) {
  std::uint32_t state = 999;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<Gf256::Symbol>(state >> 24);
  };
  for (int i = 0; i < 5000; ++i) {
    const Gf256::Symbol a = next();
    Gf256::Symbol b = next();
    if (b == 0) b = 1;
    EXPECT_EQ(Gf256::Mul(Gf256::Div(a, b), b), a);
  }
}

}  // namespace
}  // namespace astra::ecc
