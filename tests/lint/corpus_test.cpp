// Golden corpus: every file under tests/lint/corpus/ carries a first-line
// `astra-lint-test:` override naming the rule it must fire, and must produce
// EXACTLY that one diagnostic — no more, no less.  `expect=clean` marks a
// justified-suppression case: the file contains a would-be violation plus an
// allow() comment, and must produce NO diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/diagnostics.hpp"
#include "lint/engine.hpp"

#ifndef ASTRA_LINT_CORPUS_DIR
#error "ASTRA_LINT_CORPUS_DIR must point at tests/lint/corpus"
#endif

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

// `expect=<rule>` from the file's first line.
std::string ExpectedRule(const std::string& source) {
  const std::size_t eol = source.find('\n');
  const std::string first = source.substr(0, eol);
  const std::size_t at = first.find("expect=");
  if (at == std::string::npos) return {};
  std::size_t end = at + 7;
  while (end < first.size() && first[end] != ' ' && first[end] != '\r') ++end;
  return first.substr(at + 7, end - (at + 7));
}

TEST(CorpusTest, EveryFileFiresExactlyItsDeclaredDiagnostic) {
  const fs::path corpus(ASTRA_LINT_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;

  int files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    ++files;

    const std::string name = entry.path().filename().string();
    const std::string source = ReadFile(entry.path());
    const std::string expect = ExpectedRule(source);
    EXPECT_FALSE(expect.empty()) << name << ": missing expect= on line 1";

    const LintResult result =
        LintSource(entry.path().string(), source, LintOptions{});
    if (expect == "clean") {
      for (const Diagnostic& diagnostic : result.diagnostics) {
        ADD_FAILURE() << name << " expected clean but fired "
                      << RuleId(diagnostic.rule) << " at line "
                      << diagnostic.line;
      }
      continue;
    }
    ASSERT_EQ(result.diagnostics.size(), 1u) << name;
    EXPECT_EQ(RuleId(result.diagnostics[0].rule), expect) << name;
  }
  // The corpus must cover the catalogue; a wiped directory should not pass.
  EXPECT_GE(files, kRuleCount);
}

TEST(CorpusTest, OverridesCanBeDisabled) {
  // Without overrides, corpus files scope under tests/ where most rules do
  // not apply — a det-random file goes quiet because exit/random scoping
  // differs, but header hygiene still applies to .hpp files.  Just assert
  // the flag round-trips: the engine scans and does not honor path=.
  const fs::path corpus(ASTRA_LINT_CORPUS_DIR);
  const fs::path sample = corpus / "det_unordered_range_for.cpp";
  ASSERT_TRUE(fs::exists(sample));
  LintOptions options;
  options.honor_test_overrides = false;
  const LintResult result =
      LintSource(sample.string(), ReadFile(sample), options);
  EXPECT_TRUE(result.diagnostics.empty());
}

}  // namespace
}  // namespace astra::lint
