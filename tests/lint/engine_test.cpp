// v2 engine behaviour: deterministic parallel merge, the incremental cache,
// SARIF rendering, and the seeded-mutation acceptance tests that prove each
// new rule fires on REAL repo sources with a planted regression.
#include "lint/engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"

#ifndef ASTRA_LINT_SRC_DIR
#error "ASTRA_LINT_SRC_DIR must point at the repo's src/ directory"
#endif

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteFile(const fs::path& path, const std::string& text) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

// A scratch repo layout: <tmp>/src/... so NormalizeRepoPath scopes the
// copies exactly like the real tree.
class ScratchTree {
 public:
  ScratchTree() {
    root_ = fs::temp_directory_path() /
            fs::path("astra-lint-engine-" +
                     std::to_string(
                         ::testing::UnitTest::GetInstance()->random_seed()) +
                     "-" + std::string(
                         ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
  }
  ~ScratchTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  // Copy a real repo source into the scratch tree under the same
  // src-relative path.
  void CopyReal(const std::string& rel) {
    const fs::path from = fs::path(ASTRA_LINT_SRC_DIR) / rel;
    ASSERT_TRUE(fs::exists(from)) << from;
    WriteFile(SrcPath(rel), ReadFile(from));
  }

  [[nodiscard]] fs::path SrcPath(const std::string& rel) const {
    return root_ / "src" / rel;
  }
  [[nodiscard]] std::string SrcRoot() const {
    return (root_ / "src").string();
  }
  [[nodiscard]] fs::path Root() const { return root_; }

 private:
  fs::path root_;
};

std::string RenderedText(const LintResult& result) {
  std::ostringstream out;
  RenderText(out, result);
  return std::move(out).str();
}

int CountRule(const LintResult& result, Rule rule, const std::string& file) {
  int count = 0;
  for (const Diagnostic& diagnostic : result.diagnostics) {
    if (diagnostic.rule == rule && diagnostic.file == file) ++count;
  }
  return count;
}

// --- determinism --------------------------------------------------------------

TEST(EngineTest, OutputByteIdenticalAtAnyThreadCount) {
  ScratchTree tree;
  tree.CopyReal("util/thread_annotations.hpp");
  tree.CopyReal("util/retry.hpp");
  tree.CopyReal("serve/alert_hub.hpp");
  tree.CopyReal("serve/alert_hub.cpp");
  // Plant one violation so the runs have diagnostics to order.
  WriteFile(tree.SrcPath("core/extra.cpp"),
            "#include <cstdlib>\n"
            "namespace astra::core { int R() { return rand(); } }\n");

  std::vector<std::string> rendered;
  for (const unsigned threads : {1u, 2u, 8u}) {
    LintOptions options;
    options.threads = threads;
    const LintResult result = LintTree({tree.SrcRoot()}, options);
    EXPECT_EQ(result.files_scanned, 5u);
    rendered.push_back(RenderedText(result));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
  EXPECT_NE(rendered[0].find("det-random"), std::string::npos);
}

// --- incremental cache --------------------------------------------------------

TEST(EngineTest, CacheReplaysDiagnosticsWithoutRelexing) {
  ScratchTree tree;
  WriteFile(tree.SrcPath("core/wall.cpp"),
            "#include <ctime>\n"
            "namespace astra::core { long W() { return time(nullptr); } }\n");
  WriteFile(tree.SrcPath("core/fine.cpp"),
            "namespace astra::core { int F() { return 1; } }\n");

  LintOptions options;
  options.cache_path = (tree.Root() / "lint.db").string();

  const LintResult cold = LintTree({tree.SrcRoot()}, options);
  EXPECT_EQ(cold.stats.lexed, 2u);
  EXPECT_EQ(cold.stats.incremental_hits, 0u);
  ASSERT_EQ(cold.diagnostics.size(), 1u);

  const LintResult warm = LintTree({tree.SrcRoot()}, options);
  EXPECT_EQ(warm.stats.lexed, 0u);
  EXPECT_EQ(warm.stats.incremental_hits, 2u);
  EXPECT_EQ(RenderedText(cold), RenderedText(warm));

  // Touching one file re-lexes exactly that file and updates its verdict.
  WriteFile(tree.SrcPath("core/wall.cpp"),
            "namespace astra::core { long W() { return 0; } }\n");
  const LintResult touched = LintTree({tree.SrcRoot()}, options);
  EXPECT_EQ(touched.stats.lexed, 1u);
  EXPECT_EQ(touched.stats.incremental_hits, 1u);
  EXPECT_TRUE(touched.diagnostics.empty());
}

TEST(EngineTest, CacheInvalidatesWhenAnnotationEnvironmentChanges) {
  ScratchTree tree;
  // consumer.cpp is clean on its own; its paired header's annotations are
  // part of its analysis environment.
  WriteFile(tree.SrcPath("serve/consumer.hpp"),
            "#pragma once\n"
            "#include <mutex>\n"
            "namespace astra::serve {\n"
            "class C { std::mutex mu_; int n_ = 0; int Get() const; };\n"
            "}\n");
  WriteFile(tree.SrcPath("serve/consumer.cpp"),
            "#include \"serve/consumer.hpp\"\n"
            "namespace astra::serve {\n"
            "int C::Get() const { return n_; }\n"
            "}\n");

  LintOptions options;
  options.cache_path = (tree.Root() / "lint.db").string();
  const LintResult before = LintTree({tree.SrcRoot()}, options);
  EXPECT_TRUE(before.diagnostics.empty());

  // Annotate the field in the header only: the unchanged .cpp must NOT be
  // served from the cache — its environment hash moved.
  WriteFile(tree.SrcPath("serve/consumer.hpp"),
            "#pragma once\n"
            "#include <mutex>\n"
            "#include \"util/thread_annotations.hpp\"\n"
            "namespace astra::serve {\n"
            "class C { std::mutex mu_; int n_ ASTRA_GUARDED_BY(mu_) = 0;\n"
            "  int Get() const; };\n"
            "}\n");
  const LintResult after = LintTree({tree.SrcRoot()}, options);
  EXPECT_EQ(CountRule(after, Rule::kLockGuardedField, "serve/consumer.cpp"),
            1);
}

// --- SARIF --------------------------------------------------------------------

TEST(EngineTest, SarifCarriesSchemaRulesAndLocations) {
  ScratchTree tree;
  tree.CopyReal("util/thread_annotations.hpp");
  WriteFile(tree.SrcPath("serve/counter.cpp"),
            "#include <cstdint>\n"
            "#include <mutex>\n"
            "#include \"util/thread_annotations.hpp\"\n"
            "namespace astra::serve {\n"
            "class Counter {\n"
            " public:\n"
            "  std::uint64_t Peek() const { return hits_; }\n"
            " private:\n"
            "  mutable std::mutex mutex_;\n"
            "  std::uint64_t hits_ ASTRA_GUARDED_BY(mutex_) = 0;\n"
            "};\n"
            "}\n");
  const LintResult result = LintTree({tree.SrcRoot()}, LintOptions{});
  ASSERT_EQ(result.diagnostics.size(), 1u);

  std::ostringstream out;
  RenderSarif(out, result);
  const std::string sarif = std::move(out).str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"astra-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-guarded-field\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/serve/counter.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // Every catalogue rule is described in the driver block.
  for (const RuleInfo& info : kRules) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(info.id) + "\""),
              std::string::npos)
        << info.id;
  }
}

// --- seeded-mutation acceptance tests -----------------------------------------
// Each plants the regression the rule exists to catch into a copy of the
// REAL source and asserts the tree goes red.

TEST(EngineMutationTest, WebhookDeliveryMovedInsideLockGoesRed) {
  ScratchTree tree;
  tree.CopyReal("util/thread_annotations.hpp");
  tree.CopyReal("util/retry.hpp");
  tree.CopyReal("serve/alert_hub.hpp");
  tree.CopyReal("serve/alert_hub.cpp");

  // The copied tree is clean as-is.
  EXPECT_TRUE(LintTree({tree.SrcRoot()}, LintOptions{}).diagnostics.empty());

  // Mutation: hoist the webhook delivery INTO the ring-lock block — the
  // exact regression the ASTRA_EXCLUDES annotation exists to catch.
  std::string source = ReadFile(tree.SrcPath("serve/alert_hub.cpp"));
  const std::string original =
      "  }\n"
      "  DeliverWebhooks(entries);\n";
  const std::string mutated =
      "    DeliverWebhooks(entries);\n"
      "  }\n";
  const std::size_t at = source.find(original);
  ASSERT_NE(at, std::string::npos)
      << "Retain() no longer matches the seeded-mutation pattern — update "
         "this test alongside serve/alert_hub.cpp";
  source.replace(at, original.size(), mutated);
  WriteFile(tree.SrcPath("serve/alert_hub.cpp"), source);

  const LintResult result = LintTree({tree.SrcRoot()}, LintOptions{});
  EXPECT_GE(CountRule(result, Rule::kLockBlockingCall, "serve/alert_hub.cpp"),
            1);
}

TEST(EngineMutationTest, GuardedFieldTouchedUnlockedGoesRed) {
  ScratchTree tree;
  tree.CopyReal("util/thread_annotations.hpp");
  tree.CopyReal("util/retry.hpp");
  tree.CopyReal("serve/alert_hub.hpp");
  tree.CopyReal("serve/alert_hub.cpp");

  // Mutation: a lock-free accessor reading the guarded drop counter (the
  // annotation rides in from the paired header's facts).
  std::string source = ReadFile(tree.SrcPath("serve/alert_hub.cpp"));
  source +=
      "\nnamespace astra::serve {\n"
      "std::uint64_t AlertHub::DroppedUnsafe() const { return dropped_; }\n"
      "}\n";
  WriteFile(tree.SrcPath("serve/alert_hub.cpp"), source);

  const LintResult result = LintTree({tree.SrcRoot()}, LintOptions{});
  EXPECT_GE(CountRule(result, Rule::kLockGuardedField,
                      "serve/alert_hub.cpp"),
            1);
}

TEST(EngineMutationTest, ServeIncludeAddedToCoreGoesRed) {
  ScratchTree tree;
  tree.CopyReal("core/report.hpp");

  std::string source = ReadFile(tree.SrcPath("core/report.hpp"));
  const std::size_t pragma = source.find("#pragma once");
  ASSERT_NE(pragma, std::string::npos);
  source.insert(source.find('\n', pragma) + 1,
                "#include \"serve/daemon.hpp\"\n");
  WriteFile(tree.SrcPath("core/report.hpp"), source);

  const LintResult result = LintTree({tree.SrcRoot()}, LintOptions{});
  EXPECT_EQ(CountRule(result, Rule::kArchUpwardInclude, "core/report.hpp"),
            1);
}

}  // namespace
}  // namespace astra::lint
