#include "lint/suppressions.hpp"

#include <gtest/gtest.h>

#include <string>

#include "lint/lexer.hpp"

namespace astra::lint {
namespace {

SuppressionSet Parse(const std::string& source) {
  return ParseSuppressions(Lex(source), "core/test.cpp");
}

TEST(SuppressionsTest, ValidAllowCoversItsLineAndTheNext) {
  const SuppressionSet set =
      Parse("// astra-lint: allow(det-random): seeded via util/rng\n"
            "int x = 1;\n"
            "int y = 2;\n");
  EXPECT_TRUE(set.malformed.empty());
  EXPECT_TRUE(set.Allows(Rule::kDetRandom, 1));
  EXPECT_TRUE(set.Allows(Rule::kDetRandom, 2));
  EXPECT_FALSE(set.Allows(Rule::kDetRandom, 3));
  EXPECT_FALSE(set.Allows(Rule::kDetUnorderedIter, 2));
}

TEST(SuppressionsTest, BlockCommentSuppressionCoversTheLineAfterItsEnd) {
  const SuppressionSet set =
      Parse("/* astra-lint: allow(det-random): justification\n"
            "   spans lines */\n"
            "int x = 1;\n");
  EXPECT_TRUE(set.malformed.empty());
  EXPECT_TRUE(set.Allows(Rule::kDetRandom, 2));
  EXPECT_TRUE(set.Allows(Rule::kDetRandom, 3));
}

TEST(SuppressionsTest, MissingJustificationIsMalformed) {
  const SuppressionSet set = Parse("// astra-lint: allow(det-random)\n");
  ASSERT_EQ(set.malformed.size(), 1u);
  EXPECT_EQ(set.malformed[0].rule, Rule::kBadSuppression);
  EXPECT_NE(set.malformed[0].message.find("justification"), std::string::npos);
  EXPECT_FALSE(set.Allows(Rule::kDetRandom, 2));
}

TEST(SuppressionsTest, UnknownRuleIsMalformed) {
  const SuppressionSet set = Parse("// astra-lint: allow(no-such-rule): because\n");
  ASSERT_EQ(set.malformed.size(), 1u);
  EXPECT_NE(set.malformed[0].message.find("unknown rule"), std::string::npos);
}

TEST(SuppressionsTest, BadSuppressionItselfCannotBeAllowed) {
  const SuppressionSet set =
      Parse("// astra-lint: allow(bad-suppression): nice try\n");
  ASSERT_EQ(set.malformed.size(), 1u);
  EXPECT_NE(set.malformed[0].message.find("cannot be suppressed"),
            std::string::npos);
}

TEST(SuppressionsTest, ProseMentioningTheMarkerIsNotASuppression) {
  const SuppressionSet set = Parse("// see the astra-lint: docs for details\n");
  EXPECT_TRUE(set.malformed.empty());
  EXPECT_FALSE(set.Allows(Rule::kDetRandom, 1));
}

TEST(SuppressionsTest, TestOverrideIsNotASuppression) {
  const std::string source =
      "// astra-lint-test: path=src/core/x.cpp expect=det-random\n";
  const LexedFile lexed = Lex(source);
  EXPECT_TRUE(ParseSuppressions(lexed, "tests/whatever.cpp").malformed.empty());

  const std::optional<TestOverride> override = ParseTestOverride(lexed);
  ASSERT_TRUE(override.has_value());
  EXPECT_EQ(override->path, "src/core/x.cpp");
  EXPECT_EQ(override->expect, "det-random");
}

TEST(SuppressionsTest, NoTestOverrideInPlainSources) {
  const LexedFile lexed = Lex("// a perfectly ordinary comment\nint x;\n");
  EXPECT_FALSE(ParseTestOverride(lexed).has_value());
}

}  // namespace
}  // namespace astra::lint
