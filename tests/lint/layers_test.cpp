// Layer-matrix parsing, the Allows contract, and the drift guard pinning
// src/lint/layers.conf to the compiled-in DefaultLayerMatrix().
#include "lint/layers.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef ASTRA_LINT_SRC_DIR
#error "ASTRA_LINT_SRC_DIR must point at the repo's src/ directory"
#endif

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

TEST(LayersTest, DefaultMatrixAllowsDownwardForbidsUpward) {
  const LayerMatrix matrix = DefaultLayerMatrix();
  EXPECT_TRUE(matrix.Allows("serve", "util"));
  EXPECT_TRUE(matrix.Allows("serve", "core"));
  EXPECT_TRUE(matrix.Allows("core", "logs"));
  EXPECT_FALSE(matrix.Allows("core", "serve"));
  EXPECT_FALSE(matrix.Allows("util", "core"));
  EXPECT_FALSE(matrix.Allows("logs", "serve"));
  // Self-edges and unknown layers are always out of jurisdiction.
  EXPECT_TRUE(matrix.Allows("core", "core"));
  EXPECT_TRUE(matrix.Allows("scratch", "core"));
  EXPECT_TRUE(matrix.Allows("core", "scratch"));
}

TEST(LayersTest, ParseRoundTripsTheDefault) {
  const LayerMatrix matrix = DefaultLayerMatrix();
  std::string conf;
  for (const auto& [layer, deps] : matrix.allowed) {
    conf += layer + ":";
    for (const std::string& dep : deps) conf += " " + dep;
    conf += "\n";
  }
  std::string error;
  const auto parsed = ParseLayerMatrix(conf, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Serialize(), matrix.Serialize());
}

TEST(LayersTest, ParseRejectsMalformedRows) {
  std::string error;
  EXPECT_FALSE(ParseLayerMatrix("core util\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  // A dep must name a declared layer row.
  EXPECT_FALSE(ParseLayerMatrix("core: nosuch\n", &error).has_value());
  // Duplicate rows are ambiguous.
  EXPECT_FALSE(
      ParseLayerMatrix("core:\ncore: util\nutil:\n", &error).has_value());
}

TEST(LayersTest, LayerOfTakesTheFirstPathComponent) {
  EXPECT_EQ(LayerOf("serve/daemon.cpp"), "serve");
  EXPECT_EQ(LayerOf("util/parallel.hpp"), "util");
  EXPECT_EQ(LayerOf("lonefile.cpp"), "");
}

// The drift guard: the committed conf the CLI loads must be byte-for-byte
// equivalent (after parsing) to the compiled-in matrix, or tree runs and
// unit runs would enforce different architectures.
TEST(LayersTest, LayersConfMatchesDefault) {
  const fs::path conf_path = fs::path(ASTRA_LINT_SRC_DIR) / "lint/layers.conf";
  ASSERT_TRUE(fs::exists(conf_path)) << conf_path;
  std::string error;
  const auto parsed = ParseLayerMatrix(ReadFile(conf_path), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Serialize(), DefaultLayerMatrix().Serialize())
      << "src/lint/layers.conf drifted from DefaultLayerMatrix() — update "
         "both together";
}

}  // namespace
}  // namespace astra::lint
