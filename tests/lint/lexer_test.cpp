#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

namespace astra::lint {
namespace {

std::vector<Token> CodeTokens(const LexedFile& lexed) {
  std::vector<Token> code;
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokKind::kComment) code.push_back(token);
  }
  return code;
}

bool HasIdentifier(const LexedFile& lexed, std::string_view text) {
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokKind::kIdentifier && token.text == text) return true;
  }
  return false;
}

bool HasPunct(const LexedFile& lexed, std::string_view text) {
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokKind::kPunct && token.text == text) return true;
  }
  return false;
}

TEST(LexerTest, BannedTokensInLineCommentsAreNotCode) {
  const LexedFile lexed = Lex("int a = 0;  // rand() and time(nullptr) live here\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  ASSERT_EQ(lexed.tokens.back().kind, TokKind::kComment);
  EXPECT_NE(lexed.tokens.back().text.find("rand()"), std::string::npos);
}

TEST(LexerTest, BlockCommentSpansLinesAndTracksEndLine) {
  const LexedFile lexed = Lex("/* one\n two\n three */ int x;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  const Token& comment = lexed.tokens.front();
  EXPECT_EQ(comment.kind, TokKind::kComment);
  EXPECT_EQ(comment.line, 1);
  EXPECT_EQ(comment.end_line, 3);
  EXPECT_TRUE(HasIdentifier(lexed, "x"));
  EXPECT_FALSE(lexed.had_unterminated);
}

TEST(LexerTest, RawStringBodyIsOpaque) {
  const LexedFile lexed = Lex("const char* s = R\"(rand() \"quoted\" time(0))\";\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  int strings = 0;
  for (const Token& token : lexed.tokens) strings += token.kind == TokKind::kString;
  EXPECT_EQ(strings, 1);
}

TEST(LexerTest, RawStringCustomDelimiterEndsAtMatchingCloser) {
  // The `)"` inside the body is NOT the closer for the `ast` delimiter.
  const LexedFile lexed =
      Lex("auto s = R\"ast(body )\" still body)ast\"; int y = rand();\n");
  EXPECT_TRUE(HasIdentifier(lexed, "y"));
  EXPECT_TRUE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(lexed.had_unterminated);
}

TEST(LexerTest, EncodingPrefixedStringIsAStringNotAnIdentifier) {
  const LexedFile lexed = Lex("auto s = u8\"rand()\";\n");
  EXPECT_FALSE(HasIdentifier(lexed, "u8"));
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
}

TEST(LexerTest, LineContinuationKeepsOriginalLineNumbers) {
  const LexedFile lexed = Lex("int a = 1; \\\nint b = 2;\n");
  bool saw_b = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokKind::kIdentifier && token.text == "b") {
      saw_b = true;
      EXPECT_EQ(token.line, 2);
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(LexerTest, DigitSeparatorsStayOneNumberToken) {
  const LexedFile lexed = Lex("long n = 1'000'000;\n");
  bool found = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokKind::kNumber) {
      found = true;
      EXPECT_EQ(token.text, "1'000'000");
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, CharLiteralQuoteDoesNotOpenAString) {
  const LexedFile lexed = Lex("char c = '\"'; int after = 1;\n");
  EXPECT_TRUE(HasIdentifier(lexed, "after"));
  EXPECT_FALSE(lexed.had_unterminated);
}

TEST(LexerTest, DirectivesAreRecordedAndKeptOutOfTheCodeStream) {
  const LexedFile lexed =
      Lex("#include \"core/report.hpp\"\n#include <map>\n#pragma once\n");
  ASSERT_EQ(lexed.directives.size(), 3u);
  EXPECT_EQ(lexed.directives[0].name, "include");
  EXPECT_EQ(lexed.directives[0].argument, "core/report.hpp");
  EXPECT_TRUE(lexed.directives[0].quoted_include);
  EXPECT_EQ(lexed.directives[1].argument, "map");
  EXPECT_FALSE(lexed.directives[1].quoted_include);
  EXPECT_EQ(lexed.directives[2].name, "pragma");
  EXPECT_EQ(lexed.directives[2].argument, "once");
  EXPECT_TRUE(CodeTokens(lexed).empty());
}

TEST(LexerTest, CommentTrailingADirectiveIsStillAComment) {
  const LexedFile lexed = Lex("#include <ctime>  // wall-clock header\n");
  ASSERT_EQ(lexed.directives.size(), 1u);
  EXPECT_EQ(lexed.directives[0].argument, "ctime");
  bool saw_comment = false;
  for (const Token& token : lexed.tokens) {
    saw_comment |= token.kind == TokKind::kComment;
  }
  EXPECT_TRUE(saw_comment);
}

TEST(LexerTest, UnterminatedStringSetsTheFlagAndResyncs) {
  const LexedFile lexed = Lex("const char* s = \"abc\nint x = 1;\n");
  EXPECT_TRUE(lexed.had_unterminated);
  EXPECT_TRUE(HasIdentifier(lexed, "x"));
}

TEST(LexerTest, MultiCharPunctsLexAsOneToken) {
  const LexedFile lexed = Lex("a->b; c::d; f(...);\n");
  EXPECT_TRUE(HasPunct(lexed, "->"));
  EXPECT_TRUE(HasPunct(lexed, "::"));
  EXPECT_TRUE(HasPunct(lexed, "..."));
}

}  // namespace
}  // namespace astra::lint
