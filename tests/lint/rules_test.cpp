#include "lint/rules.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/engine.hpp"
#include "lint/lexer.hpp"
#include "lint/lock_regions.hpp"

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

// Convenience: lint one in-memory source under a given repo path.
LintResult LintAt(const std::string& path, const std::string& source) {
  return LintSource(path, source, LintOptions{});
}

TEST(RulesTest, StreamMayReadWallClocksForPolling) {
  const LintResult result = LintAt(
      "src/stream/poll.cpp",
      "#include <chrono>\n"
      "namespace astra::stream {\n"
      "long Now() { return std::chrono::system_clock::now().time_since_epoch()"
      ".count(); }\n"
      "}\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, SimTimeOwnsTheWallClockBoundary) {
  const LintResult result = LintAt(
      "src/util/sim_time.cpp",
      "#include <ctime>\n"
      "long Wall() { return static_cast<long>(time(nullptr)); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, RandomDeviceIsBannedEvenInStream) {
  const LintResult result = LintAt(
      "src/stream/entropy.cpp",
      "#include <random>\n"
      "unsigned Seed() { return std::random_device{}(); }\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, Rule::kDetRandom);
}

TEST(RulesTest, VoidCastIsAnExplicitDiscard) {
  const LintResult result = LintAt(
      "src/core/touch.cpp",
      "#include <string>\n"
      "void Touch(const std::string& path) { (void)ReadFileBytes(path); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, ConsumedStatusIsClean) {
  const LintResult result = LintAt(
      "src/core/touch.cpp",
      "#include <string>\n"
      "bool Touch(const std::string& path) {\n"
      "  const auto bytes = ReadFileBytes(path);\n"
      "  return bytes.has_value();\n"
      "}\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, MemberNamedExitIsNotAProcessKill) {
  const LintResult result = LintAt(
      "src/core/state.cpp",
      "struct Status { void exit(); };\n"
      "void Leave(Status& status) { status.exit(); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, ToolsOwnTheProcessExit) {
  const LintResult result = LintAt(
      "src/tools/cli.cpp",
      "#include <cstdlib>\n"
      "void Die() { std::exit(2); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, PointerKeyRequiresStdQualification) {
  const LintResult unqualified = LintAt(
      "src/core/index.cpp",
      "template <typename K, typename V> struct map {};\n"
      "struct Node;\n"
      "map<Node*, int> local;\n");
  EXPECT_TRUE(unqualified.diagnostics.empty());

  const LintResult qualified = LintAt(
      "src/core/index.cpp",
      "#include <map>\n"
      "struct Node;\n"
      "std::map<const Node*, int> by_ptr;\n");
  ASSERT_EQ(qualified.diagnostics.size(), 1u);
  EXPECT_EQ(qualified.diagnostics[0].rule, Rule::kDetPointerKey);
}

TEST(RulesTest, UnorderedIterationOutsideScopedDirsIsAllowed) {
  const LintResult result = LintAt(
      "src/faultsim/sweep.cpp",
      "#include <unordered_map>\n"
      "int Total(const std::unordered_map<int, int>& counts) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : counts) total += v;\n"
      "  return total;\n"
      "}\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, PairedHeaderMembersAreHarvested) {
  const LexedFile header = Lex(
      "#pragma once\n"
      "#include <unordered_map>\n"
      "namespace astra::core {\n"
      "struct Coalescer { std::unordered_map<int, int> groups_; };\n"
      "}\n");
  const LexedFile source = Lex(
      "namespace astra::core {\n"
      "void Emit(Coalescer& c) {\n"
      "  for (const auto& [k, v] : c.groups_) { (void)k; (void)v; }\n"
      "}\n"
      "}\n");

  FileContext with_header;
  with_header.path = "core/coalescer.cpp";
  with_header.lexed = &source;
  with_header.paired_unordered_names = UnorderedContainerNames(
      CodeTokens(header));
  const std::vector<Diagnostic> flagged = RunRules(with_header);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, Rule::kDetUnorderedIter);

  FileContext without_header = with_header;
  without_header.paired_unordered_names.clear();
  EXPECT_TRUE(RunRules(without_header).empty());
}

TEST(RulesTest, StringByValueFlaggedOnHotPaths) {
  const LintResult result = LintAt(
      "src/logs/labels.cpp",
      "#include <string>\n"
      "int Count(std::string label) { return static_cast<int>(label.size()); }\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, Rule::kPerfStringByValue);
}

TEST(RulesTest, StringByReferenceOrViewIsClean) {
  const LintResult result = LintAt(
      "src/core/labels.cpp",
      "#include <string>\n"
      "#include <string_view>\n"
      "int A(const std::string& s) { return static_cast<int>(s.size()); }\n"
      "int B(std::string_view s) { return static_cast<int>(s.size()); }\n"
      "int C(std::string&& s) { return static_cast<int>(s.size()); }\n"
      "std::string D() { return {}; }\n"
      "void E() { std::string local; (void)local; }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, StringByValueOutsideHotPathsIsAllowed) {
  const LintResult result = LintAt(
      "src/tools/cli.cpp",
      "#include <string>\n"
      "int Count(std::string label) { return static_cast<int>(label.size()); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, SuppressionSilencesTheDiagnosedLine) {
  const LintResult result = LintAt(
      "src/core/jitter.cpp",
      "#include <cstdlib>\n"
      "// astra-lint: allow(det-random): exercising the suppression path\n"
      "int Jitter() { return std::rand(); }\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(RulesTest, ReportLinkedFilesInheritDeterminismScope) {
  const fs::path root = fs::path(testing::TempDir()) / "astra_lint_rules_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  fs::create_directories(root / "src" / "logs");

  const auto write = [](const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  };
  write(root / "src" / "core" / "report.cpp",
        "#include \"logs/fmt.hpp\"\n"
        "namespace astra::core { void Render() {} }\n");
  // Reached from the report renderer: determinism scope applies.
  write(root / "src" / "logs" / "fmt.hpp",
        "#pragma once\n"
        "#include <unordered_map>\n"
        "namespace astra::logs {\n"
        "inline int Sum(const std::unordered_map<int, int>& m) {\n"
        "  int s = 0;\n"
        "  for (const auto& [k, v] : m) s += v;\n"
        "  return s;\n"
        "}\n"
        "}\n");
  // Same content, NOT included anywhere: out of scope.
  write(root / "src" / "logs" / "loose.hpp",
        "#pragma once\n"
        "#include <unordered_map>\n"
        "namespace astra::logs {\n"
        "inline int Sum(const std::unordered_map<int, int>& m) {\n"
        "  int s = 0;\n"
        "  for (const auto& [k, v] : m) s += v;\n"
        "  return s;\n"
        "}\n"
        "}\n");

  const LintResult result =
      LintTree({(root / "src").string()}, LintOptions{});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "logs/fmt.hpp");
  EXPECT_EQ(result.diagnostics[0].rule, Rule::kDetUnorderedIter);

  fs::remove_all(root);
}

TEST(EngineTest, NormalizeRepoPathStripsThroughLastSrcComponent) {
  EXPECT_EQ(NormalizeRepoPath("/root/repo/src/core/x.cpp"), "core/x.cpp");
  EXPECT_EQ(NormalizeRepoPath("./src/a/b.hpp"), "a/b.hpp");
  EXPECT_EQ(NormalizeRepoPath("core/x.cpp"), "core/x.cpp");
}

TEST(EngineTest, JsonOutputNamesTheRule) {
  const LintResult result = LintAt(
      "src/core/jitter.cpp",
      "#include <cstdlib>\n"
      "int Jitter() { return std::rand(); }\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  std::ostringstream out;
  RenderJson(out, result);
  EXPECT_NE(out.str().find("\"rule\": \"det-random\""), std::string::npos);
  EXPECT_NE(out.str().find("\"files_scanned\": 1"), std::string::npos);
}

}  // namespace
}  // namespace astra::lint
