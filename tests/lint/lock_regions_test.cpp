// Unit suite for the RAII lock-region scanner and annotation harvest that
// power lock-guarded-field / lock-blocking-call / lock-order.
#include "lint/lock_regions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace astra::lint {
namespace {

std::vector<const Token*> CodeOf(const std::string& source) {
  static std::vector<LexedFile> keep_alive;  // tokens are views into these
  keep_alive.push_back(Lex(source));
  return CodeTokens(keep_alive.back());
}

// Index of the first occurrence of identifier `name` in the code tokens.
std::size_t IndexOf(const std::vector<const Token*>& code,
                    const std::string& name) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i]->kind == TokKind::kIdentifier && code[i]->text == name) {
      return i;
    }
  }
  ADD_FAILURE() << "token not found: " << name;
  return code.size();
}

TEST(LockRegionsTest, GuardOpensRegionToEnclosingBraceClose) {
  const auto code = CodeOf(
      "void F() {\n"
      "  before();\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    inside();\n"
      "  }\n"
      "  after();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  ASSERT_EQ(scan.regions.size(), 1u);
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "before"), "mu_"));
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "inside"), "mu_"));
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "after"), "mu_"));
}

TEST(LockRegionsTest, NestedScopesNestRegions) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(mu_a);\n"
      "  {\n"
      "    std::lock_guard<std::mutex> b(mu_b);\n"
      "    both();\n"
      "  }\n"
      "  only_a();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  const auto at_both = OpenMutexesAt(scan, IndexOf(code, "both"));
  EXPECT_EQ(at_both, (std::vector<std::string>{"mu_a", "mu_b"}));
  const auto at_only_a = OpenMutexesAt(scan, IndexOf(code, "only_a"));
  EXPECT_EQ(at_only_a, (std::vector<std::string>{"mu_a"}));
  // The nesting records exactly one ordered edge: mu_a -> mu_b.
  ASSERT_EQ(scan.edges.size(), 1u);
  EXPECT_EQ(scan.edges[0].held, "mu_a");
  EXPECT_EQ(scan.edges[0].acquired, "mu_b");
}

TEST(LockRegionsTest, EarlyUnlockClosesAndRelockReopens) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  held();\n"
      "  lock.unlock();\n"
      "  released();\n"
      "  lock.lock();\n"
      "  reheld();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "held"), "mu_"));
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "released"), "mu_"));
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "reheld"), "mu_"));
}

TEST(LockRegionsTest, DeferLockDeclarationOpensNoRegion) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);\n"
      "  not_held();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "not_held"), "mu_"));
}

TEST(LockRegionsTest, ScopedLockMultiMutexCreatesNoSelfEdges) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::scoped_lock lock(mu_a, mu_b, mu_c);\n"
      "  body();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  // All three held at the body...
  const auto open = OpenMutexesAt(scan, IndexOf(code, "body"));
  EXPECT_EQ(open, (std::vector<std::string>{"mu_a", "mu_b", "mu_c"}));
  // ...but scoped_lock acquires them deadlock-free by contract, so no
  // ordering edges may be recorded among its own arguments.
  EXPECT_TRUE(scan.edges.empty());
}

TEST(LockRegionsTest, ScopedLockStillEdgesAgainstOuterHolds) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::lock_guard<std::mutex> outer(mu_outer);\n"
      "  std::scoped_lock lock(mu_a, mu_b);\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  ASSERT_EQ(scan.edges.size(), 2u);
  for (const LockEdge& edge : scan.edges) EXPECT_EQ(edge.held, "mu_outer");
}

TEST(LockRegionsTest, IfScopedGuardCoversOnlyTheBody) {
  const auto code = CodeOf(
      "void F() {\n"
      "  if (std::lock_guard<std::mutex> lock(mu_); ready_) {\n"
      "    inside();\n"
      "  }\n"
      "  outside();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "inside"), "mu_"));
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "outside"), "mu_"));
}

TEST(LockRegionsTest, LambdaBodiesDoNotInheritEnclosingRegions) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  direct();\n"
      "  auto deferred = [&] { later(); };\n"
      "  use(deferred);\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "direct"), "mu_"));
  // The lambda may run long after the guard is gone.
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "later"), "mu_"));
}

TEST(LockRegionsTest, CvWaitPredicateLambdaInheritsTheRegion) {
  const auto code = CodeOf(
      "void F() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  cv_.wait(lock, [this] { return stop_; });\n"
      "  after_wait();\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  // wait() runs the predicate WITH the lock held: the read of stop_ is a
  // correctly-guarded access, not a violation.
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "stop_"), "mu_"));
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "after_wait"), "mu_"));
}

TEST(LockRegionsTest, RequiresAnnotationOpensRegionForFunctionBody) {
  const auto code = CodeOf(
      "void Flush() ASTRA_REQUIRES(mu_) {\n"
      "  flushed();\n"
      "}\n"
      "void Other() { unguarded(); }\n");
  const LockScan scan = ScanLockRegions(code);
  EXPECT_TRUE(InRegionOf(scan, IndexOf(code, "flushed"), "mu_"));
  EXPECT_FALSE(InRegionOf(scan, IndexOf(code, "unguarded"), "mu_"));
}

TEST(LockRegionsTest, QualifiedEdgeKeysCarryTheNamespace) {
  const auto code = CodeOf(
      "namespace astra::demo {\n"
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(mu_a);\n"
      "  std::lock_guard<std::mutex> b(state.mu_b);\n"
      "}\n"
      "}\n");
  const LockScan scan = ScanLockRegions(code);
  ASSERT_EQ(scan.edges.size(), 1u);
  EXPECT_EQ(scan.edges[0].held, "astra::demo::mu_a");
  EXPECT_EQ(scan.edges[0].acquired, "astra::demo::mu_b");
}

TEST(LockAnnotationsTest, HarvestGuardedExcludesAndBlocking) {
  const auto code = CodeOf(
      "class Hub {\n"
      "  void Deliver() ASTRA_EXCLUDES(mutex_);\n"
      "  bool Fetch(const std::string& path, int timeout) ASTRA_BLOCKING;\n"
      "  std::mutex mutex_;\n"
      "  int hits_ ASTRA_GUARDED_BY(mutex_) = 0;\n"
      "  std::deque<int> ring_ ASTRA_GUARDED_BY(mutex_);\n"
      "};\n");
  const LockAnnotations annotations = HarvestLockAnnotations(code);
  ASSERT_EQ(annotations.guarded.size(), 2u);
  EXPECT_EQ(annotations.guarded.at("hits_"), "mutex_");
  EXPECT_EQ(annotations.guarded.at("ring_"), "mutex_");
  ASSERT_EQ(annotations.excludes.count("Deliver"), 1u);
  EXPECT_EQ(annotations.excludes.at("Deliver").count("mutex_"), 1u);
  // The blocking walk-back crosses the parameter list to the function name.
  EXPECT_EQ(annotations.blocking.count("Fetch"), 1u);
  EXPECT_FALSE(annotations.Empty());
}

TEST(LockAnnotationsTest, MacroDefinitionItselfIsNotHarvested) {
  // util/thread_annotations.hpp defines the macros as directives, so the
  // header must never contribute annotations about itself.
  const auto code = CodeOf(
      "#define ASTRA_GUARDED_BY(mu)\n"
      "#define ASTRA_BLOCKING\n");
  const LockAnnotations annotations = HarvestLockAnnotations(code);
  EXPECT_TRUE(annotations.Empty());
}

}  // namespace
}  // namespace astra::lint
