// astra-lint-test: path=src/logs/tags.cpp expect=perf-string-by-value
#include <string>
#include <utility>

namespace astra::logs {

struct Tag {
  std::string value;
};

// `const std::string` by value still copies the buffer on every call.
Tag MakeTag(int id, const std::string tag) { return Tag{tag + std::to_string(id)}; }

// Sinks that move from their parameter belong outside logs/ hot paths; a
// by-reference setter keeps this file to exactly one diagnostic.
void SetTag(Tag& out, const std::string& tag) { out.value = tag; }

}  // namespace astra::logs
