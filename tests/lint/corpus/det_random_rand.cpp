// astra-lint-test: path=src/core/jitter.cpp expect=det-random
#include <cstdlib>

namespace astra::core {

int Jitter() {
  return std::rand() % 7;
}

}  // namespace astra::core
