// astra-lint-test: path=src/core/notes.cpp expect=bad-suppression
namespace astra::core {

// astra-lint: allow(det-random)
int Answer() { return 42; }

}  // namespace astra::core
