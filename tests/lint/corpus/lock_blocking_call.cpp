// astra-lint-test: path=src/serve/pacer.cpp expect=lock-blocking-call
#include <chrono>
#include <mutex>
#include <thread>

namespace astra::serve {

class Pacer {
 public:
  void Tick() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ticks_;
    // BUG: sleeping while holding the lock stalls every other Tick caller.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

 private:
  std::mutex mutex_;
  int ticks_ = 0;
};

}  // namespace astra::serve
