// astra-lint-test: path=src/core/reduce.cpp expect=err-ignored-status
namespace astra::core {

void Reduce(FaultCoalescer& into, const FaultCoalescer& from) {
  into.MergeFrom(from);
}

}  // namespace astra::core
