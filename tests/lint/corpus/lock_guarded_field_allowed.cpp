// astra-lint-test: path=src/serve/counter_init.cpp expect=clean
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace astra::serve {

class Counter {
 public:
  explicit Counter(std::uint64_t seed) {
    // astra-lint: allow(lock-guarded-field): constructor body — no other thread can reference this object before construction completes
    hits_ = seed;
  }
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t hits_ ASTRA_GUARDED_BY(mutex_) = 0;
};

}  // namespace astra::serve
