// astra-lint-test: path=src/core/shortcuts.hpp expect=hdr-using-namespace
#pragma once

#include <string>

namespace astra::core {

using namespace std;

}  // namespace astra::core
