// astra-lint-test: path=src/core/touch.cpp expect=err-ignored-status
#include <string>

namespace astra::core {

void Touch(const std::string& path) {
  ReadFileBytes(path);
}

}  // namespace astra::core
