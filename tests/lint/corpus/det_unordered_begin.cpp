// astra-lint-test: path=src/stream/window.cpp expect=det-unordered-iter
#include <unordered_set>

namespace astra::stream {

int First(const std::unordered_set<int>& live) {
  return live.empty() ? 0 : *live.begin();
}

}  // namespace astra::stream
