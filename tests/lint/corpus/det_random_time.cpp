// astra-lint-test: path=src/core/seed.cpp expect=det-random
#include <ctime>

namespace astra::core {

long WallSeed() {
  return static_cast<long>(time(nullptr));
}

}  // namespace astra::core
