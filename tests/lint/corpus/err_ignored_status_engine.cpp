// astra-lint-test: path=src/core/resume.cpp expect=err-ignored-status
namespace astra::core {

void Resume(AnalysisEngineSet& set, binio::Reader& reader) {
  set.Restore(reader);
}

}  // namespace astra::core
