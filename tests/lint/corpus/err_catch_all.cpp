// astra-lint-test: path=src/logs/guard.cpp expect=err-catch-all
namespace astra::logs {

bool Swallow(void (*callback)()) {
  try {
    callback();
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace astra::logs
