// astra-lint-test: path=src/serve/swapper.cpp expect=lock-order
#include <mutex>

namespace astra::serve {

struct Pair {
  std::mutex left;
  std::mutex right;
  int a = 0;
  int b = 0;
};

// Acquires left, then right...
inline void Forward(Pair& p) {
  std::lock_guard<std::mutex> hold_left(p.left);
  std::lock_guard<std::mutex> hold_right(p.right);
  p.a = p.b;
}

// BUG: ...while this path nests them the other way around — a classic
// AB/BA deadlock once two threads interleave.
inline void Backward(Pair& p) {
  std::lock_guard<std::mutex> hold_right(p.right);
  std::lock_guard<std::mutex> hold_left(p.left);
  p.b = p.a;
}

}  // namespace astra::serve
