// astra-lint-test: path=src/util/retry_probe.cpp expect=err-ignored-status
#include <functional>

namespace astra {

// RetryWithBackoff's return value says whether the operation EVER succeeded;
// dropping it retries diligently and then ignores total failure.
void Persist(const std::function<bool()>& op) {
  RetryWithBackoff(RetryPolicy{}, op);
}

}  // namespace astra
