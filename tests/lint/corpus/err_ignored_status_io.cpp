// astra-lint-test: path=src/stream/io_probe.cpp expect=err-ignored-status
#include <string>

namespace astra::stream {

// A dropped SyncFile status is the classic silent-durability bug: the data
// made it to the page cache, the fsync failed, and nobody heard.  The seam's
// statuses must be consumed (or explicitly (void)-discarded).
void Persist(const std::string& path) {
  io::Current().SyncFile(path);
  (void)io::Current().SyncDir(".");  // explicit discard is the sanctioned form
}

}  // namespace astra::stream
