// astra-lint-test: path=src/core/labels.cpp expect=perf-string-by-value
#include <string>

namespace astra::core {

// By-value std::string on an analysis hot path copies per call.
int CountLabel(std::string label) { return static_cast<int>(label.size()); }

// Reference and view parameters are the sanctioned forms.
int CountRef(const std::string& label) { return static_cast<int>(label.size()); }

}  // namespace astra::core
