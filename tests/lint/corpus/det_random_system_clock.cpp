// astra-lint-test: path=src/core/stamp.cpp expect=det-random
#include <chrono>

namespace astra::core {

long NowSeconds() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch())
      .count();
}

}  // namespace astra::core
