// astra-lint-test: path=src/serve/flusher.cpp expect=clean
#include <chrono>
#include <mutex>
#include <thread>

namespace astra::serve {

class Flusher {
 public:
  void FlushSlowly() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++flushes_;
    // astra-lint: allow(lock-blocking-call): single-threaded shutdown path — nothing else contends for mutex_ once the workers have joined
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  std::mutex mutex_;
  int flushes_ = 0;
};

}  // namespace astra::serve
