// astra-lint-test: path=src/core/tally.cpp expect=det-unordered-iter
#include <unordered_map>

namespace astra::core {

int Total(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}

}  // namespace astra::core
