// astra-lint-test: path=src/serve/counter.cpp expect=lock-guarded-field
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace astra::serve {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
  }
  // BUG: reads the guarded field without taking mutex_.
  std::uint64_t Peek() const { return hits_; }

 private:
  mutable std::mutex mutex_;
  std::uint64_t hits_ ASTRA_GUARDED_BY(mutex_) = 0;
};

}  // namespace astra::serve
