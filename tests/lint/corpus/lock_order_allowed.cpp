// astra-lint-test: path=src/serve/handover.cpp expect=clean
#include <mutex>

namespace astra::serve {

struct Pair {
  std::mutex front;
  std::mutex rear;
  int a = 0;
  int b = 0;
};

inline void Forward(Pair& p) {
  std::lock_guard<std::mutex> hold_left(p.front);
  std::lock_guard<std::mutex> hold_right(p.rear);
  p.a = p.b;
}

inline void Backward(Pair& p) {
  std::lock_guard<std::mutex> hold_right(p.rear);
  // astra-lint: allow(lock-order): callers of Backward hold the global handover token, so Forward and Backward can never interleave
  std::lock_guard<std::mutex> hold_left(p.front);
  p.b = p.a;
}

}  // namespace astra::serve
