// astra-lint-test: path=src/stream/frame.cpp expect=ser-raw-bytes
#include <cstring>

namespace astra::stream {

void CopyHeader(char* dst, const char* src) {
  std::memcpy(dst, src, 16);
}

}  // namespace astra::stream
