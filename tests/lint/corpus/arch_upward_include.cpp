// astra-lint-test: path=src/core/report_push.cpp expect=arch-upward-include
// BUG: core is below serve in the layer matrix; reaching up couples the
// analysis engine to the daemon and makes the dependency graph cyclic.
#include "serve/daemon.hpp"

namespace astra::core {

inline int ReportNodeCount(const serve::ServeOptions& options) {
  return options.topology.NodeCount();
}

}  // namespace astra::core
