// astra-lint-test: path=src/core/registry.hpp expect=det-pointer-key
#pragma once

#include <map>

namespace astra::core {

struct Node;

std::map<const Node*, int> MakeIndex();

}  // namespace astra::core
