// astra-lint-test: path=src/core/serve_bridge.cpp expect=clean
// astra-lint: allow(arch-upward-include): transitional bridge slated for removal — the one sanctioned upward edge while the report push-path migrates into serve/
#include "serve/daemon.hpp"

namespace astra::core {

inline int ReportNodeCount(const serve::ServeOptions& options) {
  return options.topology.NodeCount();
}

}  // namespace astra::core
