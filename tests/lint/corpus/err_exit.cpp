// astra-lint-test: path=src/core/shutdown.cpp expect=err-exit
#include <cstdlib>

namespace astra::core {

void Fatal() {
  std::exit(2);
}

}  // namespace astra::core
