// astra-lint-test: path=src/stream/peek.cpp expect=ser-raw-bytes
#include <cstdint>

namespace astra::stream {

double PunDouble(const std::uint64_t* bits) {
  return *reinterpret_cast<const double*>(bits);
}

}  // namespace astra::stream
