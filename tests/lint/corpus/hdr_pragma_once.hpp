// astra-lint-test: path=src/core/widget.hpp expect=hdr-pragma-once
namespace astra::core {

struct Widget {
  int id = 0;
};

}  // namespace astra::core
