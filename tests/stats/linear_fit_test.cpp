#include "stats/linear_fit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::stats {
namespace {

TEST(FitLineTest, ExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_LT(fit.p_value, 1e-6);
  EXPECT_TRUE(fit.IsStrongCorrelation());
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.Uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(1.0 - 0.7 * xi + rng.Normal(0.0, 0.5));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, -0.7, 0.05);
  EXPECT_LT(fit.p_value, 1e-10);
}

TEST(FitLineTest, UncorrelatedDataNotStrong) {
  Rng rng(6);
  std::vector<double> x, y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.Uniform(0.0, 10.0));
    y.push_back(rng.Normal(5.0, 1.0));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_LT(fit.r_squared, 0.05);
  EXPECT_FALSE(fit.IsStrongCorrelation());
}

TEST(FitLineTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).count, 0u);
  const std::vector<double> two_x = {1.0, 2.0}, two_y = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(FitLine(two_x, two_y).p_value, 1.0);
  // All x equal: slope undefined, fit degenerates gracefully.
  const std::vector<double> const_x(10, 3.0);
  std::vector<double> vary_y;
  for (int i = 0; i < 10; ++i) vary_y.push_back(static_cast<double>(i));
  const LinearFit fit = FitLine(const_x, vary_y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.p_value, 1.0);
}

TEST(PearsonTest, PerfectAndInverse) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y_up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_down), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(SpearmanTest, MonotonicNonlinearIsOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(static_cast<double>(i) * i * i);  // nonlinear but monotone
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Pearson is below 1 for the same data.
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(SpearmanTest, TiesUseMidRanks) {
  const std::vector<double> x = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> y = {10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace astra::stats
