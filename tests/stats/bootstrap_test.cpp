#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"

namespace astra::stats {
namespace {

TEST(BootstrapTest, MeanIntervalCoversTruth) {
  Rng data_rng(1);
  std::vector<double> samples(400);
  for (auto& s : samples) s = data_rng.Normal(10.0, 2.0);

  Rng rng(2);
  const BootstrapInterval ci = BootstrapCi(
      samples, [](std::span<const double> xs) { return Mean(xs); }, rng, 500);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_FALSE(ci.Excludes(10.0));
  EXPECT_TRUE(ci.Excludes(0.0));
  // Interval width ~ 4 * sigma/sqrt(n) ~ 0.4.
  EXPECT_LT(ci.hi - ci.lo, 1.0);
}

TEST(BootstrapTest, Deterministic) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  Rng a(9), b(9);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  const BootstrapInterval ca = BootstrapCi(samples, stat, a, 200);
  const BootstrapInterval cb = BootstrapCi(samples, stat, b, 200);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapTest, EmptyInput) {
  Rng rng(3);
  const BootstrapInterval ci = BootstrapCi(
      {}, [](std::span<const double>) { return 0.0; }, rng, 100);
  EXPECT_EQ(ci.replicates, 0u);
}

TEST(BootstrapTest, MedianStatistic) {
  std::vector<double> samples;
  for (int i = 1; i <= 101; ++i) samples.push_back(static_cast<double>(i));
  Rng rng(4);
  const BootstrapInterval ci = BootstrapCi(
      samples, [](std::span<const double> xs) { return Median(xs); }, rng, 300);
  EXPECT_NEAR(ci.point, 51.0, 1e-9);
  EXPECT_FALSE(ci.Excludes(51.0));
}

}  // namespace
}  // namespace astra::stats
