#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"

namespace astra::stats {
namespace {

TEST(BootstrapTest, MeanIntervalCoversTruth) {
  Rng data_rng(1);
  std::vector<double> samples(400);
  for (auto& s : samples) s = data_rng.Normal(10.0, 2.0);

  Rng rng(2);
  const BootstrapInterval ci = BootstrapCi(
      samples, [](std::span<const double> xs) { return Mean(xs); }, rng, 500);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_FALSE(ci.Excludes(10.0));
  EXPECT_TRUE(ci.Excludes(0.0));
  // Interval width ~ 4 * sigma/sqrt(n) ~ 0.4.
  EXPECT_LT(ci.hi - ci.lo, 1.0);
}

TEST(BootstrapTest, Deterministic) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  Rng a(9), b(9);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  const BootstrapInterval ca = BootstrapCi(samples, stat, a, 200);
  const BootstrapInterval cb = BootstrapCi(samples, stat, b, 200);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapTest, EmptyInput) {
  Rng rng(3);
  const BootstrapInterval ci = BootstrapCi(
      {}, [](std::span<const double>) { return 0.0; }, rng, 100);
  EXPECT_EQ(ci.replicates, 0u);
}

TEST(BootstrapTest, MedianStatistic) {
  std::vector<double> samples;
  for (int i = 1; i <= 101; ++i) samples.push_back(static_cast<double>(i));
  Rng rng(4);
  const BootstrapInterval ci = BootstrapCi(
      samples, [](std::span<const double> xs) { return Median(xs); }, rng, 300);
  EXPECT_NEAR(ci.point, 51.0, 1e-9);
  EXPECT_FALSE(ci.Excludes(51.0));
}

TEST(BootstrapDeltaTest, SeparatedSamplesExcludeZero) {
  Rng data_rng(11);
  std::vector<double> a(300), b(300);
  for (auto& s : a) s = data_rng.Normal(12.0, 2.0);
  for (auto& s : b) s = data_rng.Normal(10.0, 2.0);

  Rng rng(12);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  const BootstrapInterval ci = BootstrapDeltaCi(a, b, stat, rng, 500);
  EXPECT_NEAR(ci.point, 2.0, 0.5);
  EXPECT_TRUE(ci.Excludes(0.0));
  EXPECT_FALSE(ci.Excludes(2.0));
}

TEST(BootstrapDeltaTest, IdenticalSamplesStraddleZero) {
  Rng data_rng(13);
  std::vector<double> a(200);
  for (auto& s : a) s = data_rng.Normal(5.0, 1.0);
  // Same distribution, fresh draw: the difference interval must cover zero.
  std::vector<double> b(200);
  for (auto& s : b) s = data_rng.Normal(5.0, 1.0);

  Rng rng(14);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  const BootstrapInterval ci = BootstrapDeltaCi(a, b, stat, rng, 500);
  EXPECT_FALSE(ci.Excludes(0.0));
}

TEST(BootstrapDeltaTest, DeterministicAndSideSensitive) {
  const std::vector<double> a = {4.0, 5.0, 6.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  Rng r1(7), r2(7), r3(7);
  const BootstrapInterval ab = BootstrapDeltaCi(a, b, stat, r1, 200);
  const BootstrapInterval ab2 = BootstrapDeltaCi(a, b, stat, r2, 200);
  EXPECT_DOUBLE_EQ(ab.lo, ab2.lo);
  EXPECT_DOUBLE_EQ(ab.hi, ab2.hi);
  // Swapping the sides negates the point estimate.
  const BootstrapInterval ba = BootstrapDeltaCi(b, a, stat, r3, 200);
  EXPECT_DOUBLE_EQ(ab.point, 3.0);
  EXPECT_DOUBLE_EQ(ba.point, -3.0);
}

TEST(BootstrapDeltaTest, EmptySideYieldsNoReplicates) {
  Rng rng(15);
  const std::vector<double> a = {1.0, 2.0};
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  EXPECT_EQ(BootstrapDeltaCi(a, {}, stat, rng, 100).replicates, 0u);
  EXPECT_EQ(BootstrapDeltaCi({}, a, stat, rng, 100).replicates, 0u);
}

}  // namespace
}  // namespace astra::stats
