#include "stats/chi_square.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::stats {
namespace {

TEST(ChiSquareUniformTest, PerfectlyUniform) {
  const std::vector<std::uint64_t> counts(8, 1000);
  const ChiSquareResult r = ChiSquareUniform(counts);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.cramers_v, 0.0);
  EXPECT_TRUE(r.ConsistentWithUniform());
}

TEST(ChiSquareUniformTest, PoissonNoiseIsConsistent) {
  Rng rng(77);
  std::vector<std::uint64_t> counts(16);
  for (auto& c : counts) c = rng.Poisson(500.0);
  const ChiSquareResult r = ChiSquareUniform(counts);
  EXPECT_TRUE(r.ConsistentWithUniform()) << "p=" << r.p_value << " V=" << r.cramers_v;
}

TEST(ChiSquareUniformTest, SkewedRejected) {
  // The Fig. 7d slot pattern: a few slots with 2-4x the faults of others.
  const std::vector<std::uint64_t> counts = {100, 200, 210, 190, 380, 200, 220, 180,
                                             360, 400, 110, 100, 110, 100, 200, 350};
  const ChiSquareResult r = ChiSquareUniform(counts);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.cramers_v, 0.1);
  EXPECT_FALSE(r.ConsistentWithUniform());
}

TEST(ChiSquareUniformTest, LargeSampleSmallDeviation) {
  // With a huge N, a 1% deviation is statistically significant but
  // practically negligible: Cramér's V keeps the verdict sane.
  std::vector<std::uint64_t> counts(10, 1'000'000);
  counts[0] = 1'010'000;
  const ChiSquareResult r = ChiSquareUniform(counts);
  EXPECT_LT(r.p_value, 0.01);           // "significant"
  EXPECT_LT(r.cramers_v, 0.01);         // but tiny effect
  EXPECT_TRUE(r.ConsistentWithUniform());
}

TEST(ChiSquareUniformTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ChiSquareUniform({}).p_value, 1.0);
  const std::vector<std::uint64_t> one = {5};
  EXPECT_DOUBLE_EQ(ChiSquareUniform(one).p_value, 1.0);
  const std::vector<std::uint64_t> zeros(4, 0);
  EXPECT_DOUBLE_EQ(ChiSquareUniform(zeros).p_value, 1.0);
}

TEST(ChiSquareExpectedTest, MatchesUniformWhenFlat) {
  const std::vector<std::uint64_t> observed = {90, 110, 95, 105};
  const std::vector<double> flat(4, 1.0);
  const ChiSquareResult uniform = ChiSquareUniform(observed);
  const ChiSquareResult expected = ChiSquareExpected(observed, flat);
  EXPECT_NEAR(uniform.statistic, expected.statistic, 1e-9);
  EXPECT_NEAR(uniform.p_value, expected.p_value, 1e-9);
}

TEST(ChiSquareExpectedTest, ScalesExpectedToObservedTotal) {
  const std::vector<std::uint64_t> observed = {10, 20, 30};
  // Expected proportions 1:2:3 exactly match.
  const std::vector<double> expected = {100.0, 200.0, 300.0};
  const ChiSquareResult r = ChiSquareExpected(observed, expected);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
}

TEST(ChiSquareExpectedTest, MismatchedSizesRejected) {
  const std::vector<std::uint64_t> observed = {10, 20};
  const std::vector<double> expected = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ChiSquareExpected(observed, expected).p_value, 1.0);
}

}  // namespace
}  // namespace astra::stats
