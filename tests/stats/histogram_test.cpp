#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace astra::stats {
namespace {

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.0);
  h.Add(0.999);
  h.Add(5.0);
  h.Add(9.999);
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(5), 1u);
  EXPECT_EQ(h.Count(9), 1u);
  EXPECT_EQ(h.TotalInRange(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);  // hi edge is exclusive
  h.Add(100.0);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.TotalInRange(), 0u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 12.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(1), 13.75);
  EXPECT_DOUBLE_EQ(h.BinHigh(3), 20.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 7);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i % 97) / 100.0);
  double total = 0.0;
  for (std::size_t b = 0; b < h.BinCount(); ++b) total += h.Fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(h.CumulativeFraction(h.BinCount() - 1), 1.0, 1e-12);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 10.0, 10);
  h.AddN(5.0, 42);
  EXPECT_EQ(h.Count(5), 42u);
  EXPECT_EQ(h.TotalInRange(), 42u);
}

TEST(FrequencyTableTest, CountsValues) {
  FrequencyTable table;
  table.Add(1);
  table.Add(1);
  table.Add(3);
  table.Add(60, 2);
  EXPECT_EQ(table.Total(), 5u);
  EXPECT_EQ(table.Distinct(), 3u);
  EXPECT_EQ(table.Counts().at(1), 2u);
  EXPECT_EQ(table.Counts().at(60), 2u);
}

TEST(ConcentrationTest, UniformCounts) {
  const std::vector<std::uint64_t> counts(10, 5);
  const ConcentrationCurve curve = ComputeConcentration(counts);
  EXPECT_EQ(curve.grand_total, 50u);
  EXPECT_NEAR(curve.ShareOfTop(1), 0.1, 1e-12);
  EXPECT_NEAR(curve.ShareOfTop(5), 0.5, 1e-12);
  EXPECT_NEAR(curve.ShareOfTop(10), 1.0, 1e-12);
}

TEST(ConcentrationTest, SkewedCounts) {
  // One dominant entity: the Fig. 5b situation in miniature.
  std::vector<std::uint64_t> counts(99, 1);
  counts.push_back(901);
  const ConcentrationCurve curve = ComputeConcentration(counts);
  EXPECT_EQ(curve.grand_total, 1000u);
  EXPECT_NEAR(curve.ShareOfTop(1), 0.901, 1e-9);
  EXPECT_EQ(curve.EntitiesForShare(0.9), 1u);
  EXPECT_EQ(curve.EntitiesForShare(0.95), 50u);
}

TEST(ConcentrationTest, MonotoneNondecreasing) {
  const std::vector<std::uint64_t> counts = {7, 0, 3, 11, 2, 2, 0, 5};
  const ConcentrationCurve curve = ComputeConcentration(counts);
  for (std::size_t k = 1; k < curve.cumulative_share.size(); ++k) {
    EXPECT_GE(curve.cumulative_share[k], curve.cumulative_share[k - 1]);
  }
  EXPECT_NEAR(curve.cumulative_share.back(), 1.0, 1e-12);
}

TEST(ConcentrationTest, EmptyAndZeroTotals) {
  const ConcentrationCurve empty = ComputeConcentration({});
  EXPECT_EQ(empty.grand_total, 0u);
  EXPECT_DOUBLE_EQ(empty.ShareOfTop(3), 0.0);
  const std::vector<std::uint64_t> zeros(4, 0);
  const ConcentrationCurve z = ComputeConcentration(zeros);
  EXPECT_EQ(z.grand_total, 0u);
  EXPECT_DOUBLE_EQ(z.ShareOfTop(2), 0.0);
}

}  // namespace
}  // namespace astra::stats
