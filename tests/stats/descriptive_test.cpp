#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace astra::stats {
namespace {

TEST(SummarizeTest, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(SummarizeTest, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const std::vector<double> one = {3.5};
  const Summary s = Summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(QuantileTest, LinearInterpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);
}

TEST(QuantileTest, UnsortedInputHandled) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(QuantileTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(Quantile(one, 0.99), 7.0);
}

TEST(QuantileSortedTest, ClampsQ) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 1.5), 3.0);
}

TEST(ViolinTest, QuantilesOrdered) {
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) xs.push_back(static_cast<double>(i));
  const ViolinSummary v = Violin(xs);
  EXPECT_EQ(v.count, 1000u);
  EXPECT_DOUBLE_EQ(v.min, 1.0);
  EXPECT_DOUBLE_EQ(v.max, 1000.0);
  EXPECT_LE(v.min, v.p5);
  EXPECT_LE(v.p5, v.q1);
  EXPECT_LE(v.q1, v.median);
  EXPECT_LE(v.median, v.q3);
  EXPECT_LE(v.q3, v.p95);
  EXPECT_LE(v.p95, v.max);
  EXPECT_NEAR(v.median, 500.5, 0.01);
}

TEST(ViolinTest, MedianOneForMostlyOnes) {
  // The paper's Fig. 4b shape: median errors-per-fault is 1.
  std::vector<double> xs(1000, 1.0);
  xs.push_back(91000.0);
  const ViolinSummary v = Violin(xs);
  EXPECT_DOUBLE_EQ(v.median, 1.0);
  EXPECT_DOUBLE_EQ(v.max, 91000.0);
}

TEST(RunningStatsTest, MatchesBatch) {
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 8.0, -1.0};
  RunningStats acc;
  for (const double x : xs) acc.Add(x);
  const Summary s = Summarize(xs);
  EXPECT_EQ(acc.Count(), s.count);
  EXPECT_NEAR(acc.Mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.Variance(), s.variance, 1e-12);
  EXPECT_DOUBLE_EQ(acc.Min(), s.min);
  EXPECT_DOUBLE_EQ(acc.Max(), s.max);
}

TEST(RunningStatsTest, MergeEquivalentToSequential) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i * 0.37 - 5.0);
  RunningStats whole;
  for (const double x : xs) whole.Add(x);
  RunningStats left, right;
  for (int i = 0; i < 40; ++i) left.Add(xs[static_cast<std::size_t>(i)]);
  for (int i = 40; i < 100; ++i) right.Add(xs[static_cast<std::size_t>(i)]);
  left.Merge(right);
  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-10);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(left.Max(), whole.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

}  // namespace
}  // namespace astra::stats
