#include "stats/deciles.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::stats {
namespace {

TEST(DecileSeriesTest, EqualPopulationBuckets) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(static_cast<double>(i % 5));
  }
  const DecileSeries series = ComputeDecileSeries(x, y, 10);
  ASSERT_EQ(series.buckets.size(), 10u);
  for (const DecileBucket& bucket : series.buckets) {
    EXPECT_EQ(bucket.count, 10u);
  }
  // x_max ascending across buckets.
  for (std::size_t i = 1; i < series.buckets.size(); ++i) {
    EXPECT_GT(series.buckets[i].x_max, series.buckets[i - 1].x_max);
  }
  EXPECT_DOUBLE_EQ(series.buckets.back().x_max, 99.0);
}

TEST(DecileSeriesTest, RemainderSpread) {
  std::vector<double> x, y;
  for (int i = 0; i < 23; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(1.0);
  }
  const DecileSeries series = ComputeDecileSeries(x, y, 10);
  ASSERT_EQ(series.buckets.size(), 10u);
  std::size_t total = 0;
  for (const auto& b : series.buckets) {
    EXPECT_GE(b.count, 2u);
    EXPECT_LE(b.count, 3u);
    total += b.count;
  }
  EXPECT_EQ(total, 23u);
}

TEST(DecileSeriesTest, IncreasingTrendDetected) {
  // Schroeder-style: CE rate doubles with temperature.
  std::vector<double> temp, ces;
  for (int i = 0; i < 200; ++i) {
    temp.push_back(20.0 + i * 0.1);
    ces.push_back(10.0 + i * 0.5);
  }
  const DecileSeries series = ComputeDecileSeries(temp, ces);
  EXPECT_TRUE(series.MonotonicallyIncreasing());
  EXPECT_GT(series.TrendSlope(), 0.0);
  EXPECT_NEAR(series.XSpan(), 18.0, 2.5);
}

TEST(DecileSeriesTest, FlatTrendNotIncreasing) {
  Rng rng(3);
  std::vector<double> temp, ces;
  for (int i = 0; i < 500; ++i) {
    temp.push_back(rng.Uniform(30.0, 50.0));
    ces.push_back(rng.Uniform(90.0, 110.0));
  }
  const DecileSeries series = ComputeDecileSeries(temp, ces);
  EXPECT_FALSE(series.MonotonicallyIncreasing());
  EXPECT_NEAR(series.TrendSlope(), 0.0, 0.5);
}

TEST(DecileSeriesTest, FewerSamplesThanBuckets) {
  const std::vector<double> x = {3.0, 1.0, 2.0};
  const std::vector<double> y = {30.0, 10.0, 20.0};
  const DecileSeries series = ComputeDecileSeries(x, y, 10);
  ASSERT_EQ(series.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(series.buckets[0].x_max, 1.0);
  EXPECT_DOUBLE_EQ(series.buckets[0].y_mean, 10.0);
}

TEST(DecileSeriesTest, EmptyInput) {
  EXPECT_TRUE(ComputeDecileSeries({}, {}).buckets.empty());
}

TEST(MedianSplitTest, HalvesByKey) {
  std::vector<double> key, x, y;
  for (int i = 0; i < 100; ++i) {
    key.push_back(static_cast<double>(i));
    x.push_back(static_cast<double>(i * 2));
    y.push_back(static_cast<double>(i * 3));
  }
  const MedianSplit split = SplitByMedian(key, x, y);
  EXPECT_NEAR(split.median_key, 49.5, 0.01);
  EXPECT_EQ(split.low_x.size(), 50u);
  EXPECT_EQ(split.high_x.size(), 50u);
  // Every low key is below every high key by construction here.
  for (const double lx : split.low_x) EXPECT_LE(lx, 2 * split.median_key);
}

TEST(MedianSplitTest, PairsStayAligned) {
  const std::vector<double> key = {5.0, 1.0, 9.0};
  const std::vector<double> x = {50.0, 10.0, 90.0};
  const std::vector<double> y = {500.0, 100.0, 900.0};
  const MedianSplit split = SplitByMedian(key, x, y);
  ASSERT_EQ(split.low_x.size(), split.low_y.size());
  ASSERT_EQ(split.high_x.size(), split.high_y.size());
  for (std::size_t i = 0; i < split.low_x.size(); ++i) {
    EXPECT_DOUBLE_EQ(split.low_y[i], split.low_x[i] * 10.0);
  }
  for (std::size_t i = 0; i < split.high_x.size(); ++i) {
    EXPECT_DOUBLE_EQ(split.high_y[i], split.high_x[i] * 10.0);
  }
}

}  // namespace
}  // namespace astra::stats
