#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace astra::stats {
namespace {

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(RegularizedGammaTest, ComplementarityHolds) {
  for (const double a : {0.5, 1.0, 2.5, 10.0}) {
    for (const double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-10);
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (const double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, InvalidArgsGiveNan) {
  EXPECT_TRUE(std::isnan(RegularizedGammaP(-1.0, 1.0)));
  EXPECT_TRUE(std::isnan(RegularizedGammaP(1.0, -1.0)));
}

TEST(ChiSquareSurvivalTest, KnownCriticalValues) {
  // Classic table values: chi2(0.05, k=1) = 3.841; chi2(0.05, k=10) = 18.307.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10), 0.05, 0.001);
  EXPECT_NEAR(ChiSquareSurvival(6.635, 1), 0.01, 0.001);
  // Statistic equal to dof is unremarkable.
  EXPECT_GT(ChiSquareSurvival(10.0, 10), 0.35);
}

TEST(ChiSquareSurvivalTest, Monotonicity) {
  double prev = 1.1;
  for (double x = 0.0; x < 40.0; x += 2.0) {
    const double p = ChiSquareSurvival(x, 5);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(RegularizedBetaTest, BoundariesAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(2.0, 3.0, 1.0), 1.0);
  for (const double x : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedBeta(2.0, 5.0, x) + RegularizedBeta(5.0, 2.0, 1.0 - x),
                1.0, 1e-10);
  }
}

TEST(RegularizedBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(StudentTTest, KnownTwoSidedValues) {
  // t = 2.571 with 5 dof -> p = 0.05 (classic table).
  EXPECT_NEAR(StudentTTwoSidedP(2.571, 5), 0.05, 0.001);
  // t = 1.96 with huge dof approaches the normal 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(1.96, 100000), 0.05, 0.001);
  // Symmetry in sign.
  EXPECT_DOUBLE_EQ(StudentTTwoSidedP(2.0, 10), StudentTTwoSidedP(-2.0, 10));
  // t = 0 -> p = 1.
  EXPECT_NEAR(StudentTTwoSidedP(0.0, 10), 1.0, 1e-12);
}

TEST(ChiSquareQuantileTest, InvertsSurvival) {
  for (const double dof : {1.0, 5.0, 20.0}) {
    for (const double p : {0.025, 0.5, 0.975}) {
      const double x = ChiSquareQuantile(p, dof);
      EXPECT_NEAR(1.0 - ChiSquareSurvival(x, dof), p, 1e-6) << dof << " " << p;
    }
  }
  // Table value: chi2 quantile(0.95, 10) = 18.307.
  EXPECT_NEAR(ChiSquareQuantile(0.95, 10), 18.307, 0.01);
  EXPECT_DOUBLE_EQ(ChiSquareQuantile(0.0, 5), 0.0);
  EXPECT_TRUE(std::isnan(ChiSquareQuantile(1.0, 5)));
}

TEST(PoissonRateCiTest, KnownGarwoodValues) {
  // Classic exact limits for k = 10 events, unit exposure: [4.795, 18.39].
  const PoissonRateInterval ci = PoissonRateCi(10, 1.0);
  EXPECT_NEAR(ci.lo, 4.795, 0.01);
  EXPECT_NEAR(ci.hi, 18.39, 0.01);
}

TEST(PoissonRateCiTest, ZeroEventsUpperBound) {
  // k = 0: lo = 0, hi = chi2(0.975, 2)/2 = -ln(0.025) ~ 3.689.
  const PoissonRateInterval ci = PoissonRateCi(0, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_NEAR(ci.hi, 3.689, 0.01);
}

TEST(PoissonRateCiTest, ScalesWithExposure) {
  const PoissonRateInterval unit = PoissonRateCi(5, 1.0);
  const PoissonRateInterval scaled = PoissonRateCi(5, 100.0);
  EXPECT_NEAR(scaled.lo, unit.lo / 100.0, 1e-9);
  EXPECT_NEAR(scaled.hi, unit.hi / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(PoissonRateCi(5, 0.0).hi, 0.0);
}

TEST(HurwitzZetaTest, RiemannValues) {
  // zeta(2) = pi^2/6; zeta(4) = pi^4/90.
  EXPECT_NEAR(HurwitzZeta(2.0, 1.0), 1.6449340668482264, 1e-9);
  EXPECT_NEAR(HurwitzZeta(4.0, 1.0), 1.0823232337111382, 1e-9);
}

TEST(HurwitzZetaTest, ShiftIdentity) {
  // zeta(s, q) = q^-s + zeta(s, q+1).
  for (const double s : {1.5, 2.0, 3.0}) {
    for (const double q : {1.0, 2.5, 10.0}) {
      EXPECT_NEAR(HurwitzZeta(s, q), std::pow(q, -s) + HurwitzZeta(s, q + 1.0), 1e-9);
    }
  }
}

TEST(HurwitzZetaTest, InvalidArgs) {
  EXPECT_TRUE(std::isnan(HurwitzZeta(1.0, 1.0)));
  EXPECT_TRUE(std::isnan(HurwitzZeta(2.0, 0.0)));
}

}  // namespace
}  // namespace astra::stats
