#include "stats/power_law.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace astra::stats {
namespace {

std::vector<std::uint64_t> SyntheticPowerLaw(double alpha, std::size_t n,
                                             std::uint64_t kmax, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> samples(n);
  for (auto& s : samples) s = rng.DiscretePowerLaw(alpha, kmax);
  return samples;
}

class PowerLawRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecoveryTest, RecoversAlpha) {
  const double alpha = GetParam();
  const auto samples = SyntheticPowerLaw(alpha, 20000, 1'000'000, 99);
  const PowerLawFit fit = FitPowerLawAt(samples, 1);
  ASSERT_TRUE(fit.Valid());
  EXPECT_NEAR(fit.alpha, alpha, 0.1) << "alpha=" << alpha;
  EXPECT_LT(fit.ks_distance, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawRecoveryTest,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

TEST(PowerLawFitTest, XminScanFindsTail) {
  // Mixture: uniform noise below 10, power law above.
  Rng rng(123);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(1 + rng.UniformInt(std::uint64_t{9}));
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(10 * rng.DiscretePowerLaw(2.2, 100'000));
  }
  const PowerLawFit fit = FitPowerLaw(samples);
  ASSERT_TRUE(fit.Valid());
  EXPECT_GE(fit.xmin, 5u);  // scan must move past the noisy head
}

TEST(PowerLawFitTest, StderrShrinksWithN) {
  const auto small = SyntheticPowerLaw(2.0, 500, 100'000, 7);
  const auto large = SyntheticPowerLaw(2.0, 50'000, 100'000, 7);
  const PowerLawFit fit_small = FitPowerLawAt(small, 1);
  const PowerLawFit fit_large = FitPowerLawAt(large, 1);
  EXPECT_GT(fit_small.alpha_stderr, fit_large.alpha_stderr);
}

TEST(PowerLawFitTest, IgnoresZeros) {
  std::vector<std::uint64_t> samples = {0, 0, 0, 1, 2, 4, 8, 16, 1, 1, 1, 2};
  const PowerLawFit fit = FitPowerLawAt(samples, 1);
  EXPECT_EQ(fit.total_count, 9u);
  EXPECT_EQ(fit.tail_count, 9u);
}

TEST(PowerLawFitTest, DegenerateInputs) {
  EXPECT_FALSE(FitPowerLawAt({}, 1).Valid());
  const std::vector<std::uint64_t> one = {5};
  EXPECT_FALSE(FitPowerLawAt(one, 1).Valid());
  const std::vector<std::uint64_t> constant(100, 3);
  // All-equal data drives the MLE to the search boundary: no interior
  // optimum exists, so the fit is reported invalid.
  EXPECT_FALSE(FitPowerLawAt(constant, 3).Valid());
}

TEST(PowerLawCdfTest, MonotoneAndNormalized) {
  PowerLawFit fit;
  fit.alpha = 2.5;
  fit.xmin = 1;
  fit.tail_count = 100;
  double prev = -1.0;
  for (std::uint64_t k = 1; k <= 1000; k *= 2) {
    const double cdf = PowerLawCdf(fit, k);
    EXPECT_GE(cdf, prev);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_GT(PowerLawCdf(fit, 100000), 0.999);
  EXPECT_DOUBLE_EQ(PowerLawCdf(fit, 0), 0.0);
}

TEST(PowerLawCdfTest, MassAtXmin) {
  PowerLawFit fit;
  fit.alpha = 2.0;
  fit.xmin = 1;
  // P(X = 1) for zeta(2) law = 1/zeta(2) ~ 0.6079.
  EXPECT_NEAR(PowerLawCdf(fit, 1), 0.6079, 0.001);
}

TEST(PowerLawFitTest, GeometricDataFitsWorseThanPowerLaw) {
  // Exponentially-distributed counts should yield a clearly larger KS
  // distance than genuine power-law data of the same size.
  Rng rng(31);
  std::vector<std::uint64_t> geometric;
  for (int i = 0; i < 10000; ++i) {
    geometric.push_back(1 + static_cast<std::uint64_t>(rng.Exponential(0.2)));
  }
  const PowerLawFit geo_fit = FitPowerLawAt(geometric, 1);
  const auto pl = SyntheticPowerLaw(2.0, 10000, 100'000, 32);
  const PowerLawFit pl_fit = FitPowerLawAt(pl, 1);
  EXPECT_GT(geo_fit.ks_distance, 2.0 * pl_fit.ks_distance);
}

}  // namespace
}  // namespace astra::stats
