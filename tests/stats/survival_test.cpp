#include "stats/survival.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace astra::stats {
namespace {

TEST(KaplanMeierTest, NoCensoringMatchesEmpirical) {
  // All events observed: S(t) is the plain empirical survivor function.
  std::vector<SurvivalObservation> data;
  for (int t = 1; t <= 10; ++t) {
    data.push_back({static_cast<double>(t), true});
  }
  const KaplanMeierCurve curve = KaplanMeier(data);
  EXPECT_EQ(curve.total_events, 10u);
  EXPECT_NEAR(curve.SurvivalAt(0.5), 1.0, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(1.0), 0.9, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(5.0), 0.5, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(10.0), 0.0, 1e-12);
  EXPECT_NEAR(curve.MedianSurvival(), 5.0, 1e-12);
}

TEST(KaplanMeierTest, TextbookCensoredExample) {
  // Events at 2 and 5, censorings at 3 and 7, n=4:
  //   S(2) = 3/4; at t=5 at-risk=2 -> S(5) = 3/4 * 1/2 = 3/8.
  const std::vector<SurvivalObservation> data = {
      {2.0, true}, {3.0, false}, {5.0, true}, {7.0, false}};
  const KaplanMeierCurve curve = KaplanMeier(data);
  EXPECT_NEAR(curve.SurvivalAt(2.0), 0.75, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(5.0), 0.375, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(10.0), 0.375, 1e-12);  // flat past last event
  EXPECT_EQ(curve.total_events, 2u);
}

TEST(KaplanMeierTest, HeavyCensoringKeepsSurvivalHigh) {
  std::vector<SurvivalObservation> data;
  for (int i = 0; i < 95; ++i) data.push_back({100.0, false});
  for (int i = 0; i < 5; ++i) data.push_back({static_cast<double>(10 + i), true});
  const KaplanMeierCurve curve = KaplanMeier(data);
  EXPECT_GT(curve.SurvivalAt(99.0), 0.94);
  EXPECT_EQ(curve.MedianSurvival(), std::numeric_limits<double>::max());
}

TEST(KaplanMeierTest, TiedEventTimes) {
  const std::vector<SurvivalObservation> data = {
      {5.0, true}, {5.0, true}, {5.0, false}, {8.0, true}};
  const KaplanMeierCurve curve = KaplanMeier(data);
  // At t=5: 4 at risk, 2 events -> S=0.5; at t=8: 1 at risk, 1 event -> 0.
  EXPECT_NEAR(curve.SurvivalAt(5.0), 0.5, 1e-12);
  EXPECT_NEAR(curve.SurvivalAt(8.0), 0.0, 1e-12);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_EQ(curve.points[0].at_risk, 4u);
}

TEST(KaplanMeierTest, EmptyInput) {
  const KaplanMeierCurve curve = KaplanMeier({});
  EXPECT_TRUE(curve.points.empty());
  EXPECT_DOUBLE_EQ(curve.SurvivalAt(5.0), 1.0);
}

TEST(ExponentialFitTest, RecoversRateWithCensoring) {
  Rng rng(1);
  const double true_rate = 0.05;
  const double horizon = 30.0;
  std::vector<SurvivalObservation> data;
  for (int i = 0; i < 20000; ++i) {
    const double t = rng.Exponential(true_rate);
    data.push_back(t < horizon ? SurvivalObservation{t, true}
                               : SurvivalObservation{horizon, false});
  }
  const ExponentialFit fit = FitExponential(data);
  ASSERT_TRUE(fit.Valid());
  EXPECT_NEAR(fit.rate, true_rate, 0.003);
  EXPECT_NEAR(fit.mean_lifetime, 1.0 / true_rate, 1.5);
}

TEST(ExponentialFitTest, NoEventsInvalid) {
  const std::vector<SurvivalObservation> data = {{10.0, false}, {10.0, false}};
  EXPECT_FALSE(FitExponential(data).Valid());
}

class WeibullRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(WeibullRecoveryTest, RecoversShapeWithCensoring) {
  const double true_shape = GetParam();
  const double true_scale = 40.0;
  const double horizon = 60.0;
  Rng rng(7);
  std::vector<SurvivalObservation> data;
  for (int i = 0; i < 20000; ++i) {
    const double t = rng.Weibull(true_shape, true_scale);
    data.push_back(t < horizon ? SurvivalObservation{t, true}
                               : SurvivalObservation{horizon, false});
  }
  const WeibullFit fit = FitWeibull(data);
  ASSERT_TRUE(fit.Valid()) << "shape " << true_shape;
  EXPECT_NEAR(fit.shape, true_shape, 0.05 * true_shape + 0.02);
  EXPECT_NEAR(fit.scale, true_scale, 0.08 * true_scale);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullRecoveryTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 3.0));

TEST(WeibullFitTest, ClassifiesHazardDirection) {
  Rng rng(9);
  std::vector<SurvivalObservation> infant, wearout;
  for (int i = 0; i < 5000; ++i) {
    infant.push_back({rng.Weibull(0.6, 30.0), true});
    wearout.push_back({rng.Weibull(2.5, 30.0), true});
  }
  const WeibullFit infant_fit = FitWeibull(infant);
  const WeibullFit wearout_fit = FitWeibull(wearout);
  EXPECT_TRUE(infant_fit.InfantMortality());
  EXPECT_FALSE(infant_fit.WearOut());
  EXPECT_TRUE(wearout_fit.WearOut());
  EXPECT_FALSE(wearout_fit.InfantMortality());
}

TEST(WeibullFitTest, TooFewEventsInvalid) {
  const std::vector<SurvivalObservation> data = {{5.0, true}, {9.0, false}};
  EXPECT_FALSE(FitWeibull(data).Valid());
}

TEST(AnnualizedFailureRateTest, Arithmetic) {
  // 10 events over 1000 device-days -> 3.6525 per device-year.
  EXPECT_NEAR(AnnualizedFailureRate(10, 1000.0, 365.25), 3.6525, 1e-9);
  EXPECT_DOUBLE_EQ(AnnualizedFailureRate(5, 0.0, 365.25), 0.0);
}

}  // namespace
}  // namespace astra::stats
