// End-to-end integration: simulate a campaign, write the dataset to disk in
// the §2.4 release format, read it back, run the full analysis suite, and
// check every headline qualitative claim of the paper against the pipeline
// output — the whole toolkit exercised through its public API only.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/positional.hpp"
#include "core/temperature.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "stats/descriptive.hpp"

namespace astra {
namespace {

class CampaignIntegrationTest : public ::testing::Test {
 protected:
  struct Pipeline {
    faultsim::CampaignConfig config;
    faultsim::CampaignResult sim;
    core::LoadedFailureData loaded;
    core::CoalesceResult coalesced;
    core::PositionalAnalysis positions;
    std::string dir;
  };

  static const Pipeline& Run() {
    static const Pipeline pipeline = [] {
      Pipeline p;
      // Per-process directory: ctest runs each test of this suite as its own
      // process, and a shared path lets one process rewrite the dataset
      // while another still has it mmapped (SIGBUS under ctest -jN).
      p.dir = ::testing::TempDir() + "astra_integration_" +
              std::to_string(::getpid());
      std::filesystem::create_directories(p.dir);
      p.config.SeedFrom(20190120);
      p.config.node_count = 800;
      p.sim = faultsim::FleetSimulator(p.config).Run();

      const auto paths = core::DatasetPaths::InDirectory(p.dir);
      if (!core::WriteFailureData(paths, p.sim)) ADD_FAILURE() << "write failed";
      const auto loaded = core::ReadFailureData(paths);
      if (!loaded) {
        ADD_FAILURE() << "read failed";
      } else {
        p.loaded = *loaded;
      }

      core::CoalesceOptions options;
      options.month_count = 9;
      options.series_origin = p.config.window.begin;
      p.coalesced = core::FaultCoalescer::Coalesce(p.loaded.memory_errors, options);
      p.positions = core::AnalyzePositions(p.loaded.memory_errors, p.coalesced,
                                           p.config.node_count);
      return p;
    }();
    return pipeline;
  }
};

TEST_F(CampaignIntegrationTest, DiskRoundTripIsLossless) {
  const auto& p = Run();
  ASSERT_EQ(p.loaded.memory_errors.size(), p.sim.memory_errors.size());
  EXPECT_EQ(p.loaded.memory_stats.malformed, 0u);
  for (std::size_t i = 0; i < p.sim.memory_errors.size(); i += 499) {
    EXPECT_EQ(p.loaded.memory_errors[i], p.sim.memory_errors[i]);
  }
}

TEST_F(CampaignIntegrationTest, HeadlineVolumes) {
  const auto& p = Run();
  // Scaled to 800/2592 nodes, expect roughly 800/2592 of ~7k faults and a
  // nontrivial CE volume.
  EXPECT_GT(p.coalesced.faults.size(), 800u);
  EXPECT_LT(p.coalesced.faults.size(), 6000u);
  EXPECT_GT(p.coalesced.total_errors, 100'000u);
}

TEST_F(CampaignIntegrationTest, MajorityOfNodesErrorFree) {
  const auto& p = Run();
  // Paper: "more than 60% of nodes experienced no CEs".
  const double error_free =
      1.0 - static_cast<double>(p.positions.nodes_with_errors) /
                static_cast<double>(p.config.node_count);
  EXPECT_GT(error_free, 0.45);
  EXPECT_LT(error_free, 0.80);
}

TEST_F(CampaignIntegrationTest, ErrorsConcentratedFaultsDispersed) {
  const auto& p = Run();
  const double top_2pct_errors = p.positions.ce_concentration.ShareOfTop(
      static_cast<std::size_t>(0.02 * p.config.node_count));
  EXPECT_GT(top_2pct_errors, 0.5);

  // Fault concentration is far milder than error concentration.
  const auto fault_curve = stats::ComputeConcentration(p.positions.faults.per_node);
  const double top_2pct_faults =
      fault_curve.ShareOfTop(static_cast<std::size_t>(0.02 * p.config.node_count));
  EXPECT_LT(top_2pct_faults, top_2pct_errors);
}

TEST_F(CampaignIntegrationTest, MedianErrorsPerFaultIsOne) {
  const auto& p = Run();
  const auto counts = p.coalesced.ErrorsPerFault();
  std::vector<double> as_double(counts.begin(), counts.end());
  EXPECT_DOUBLE_EQ(stats::Median(as_double), 1.0);
  const auto violin = stats::Violin(as_double);
  EXPECT_GT(violin.max, 1000.0);  // heavy tail exists even at this scale
}

TEST_F(CampaignIntegrationTest, FaultUniformityVerdictsMatchPaper) {
  const auto& p = Run();
  EXPECT_TRUE(p.positions.fault_uniformity.socket.ConsistentWithUniform());
  EXPECT_TRUE(p.positions.fault_uniformity.bank.ConsistentWithUniform());
  EXPECT_TRUE(p.positions.fault_uniformity.column.ConsistentWithUniform());
  EXPECT_FALSE(p.positions.fault_uniformity.slot.ConsistentWithUniform());
  EXPECT_GT(p.positions.faults.per_rank[0], p.positions.faults.per_rank[1]);
}

TEST_F(CampaignIntegrationTest, RegionFaultSpreadIsSmall) {
  const auto& p = Run();
  const auto& regions = p.positions.faults.per_region;
  const double max_region = static_cast<double>(
      std::max({regions[0], regions[1], regions[2]}));
  const double min_region = static_cast<double>(
      std::min({regions[0], regions[1], regions[2]}));
  // Fig. 10b: per-region fault differences are modest.  Heavy-tailed
  // susceptibility inflates the variance at this scaled-down fleet size, so
  // the bound is generous; the full-scale bench reports the exact split.
  EXPECT_LT((max_region - min_region) / max_region, 0.45);
}

TEST_F(CampaignIntegrationTest, MonthlySeriesCoversAllErrors) {
  const auto& p = Run();
  const auto series = core::BuildMonthlySeries(p.loaded.memory_errors, p.coalesced,
                                               p.config.window.begin, 9);
  std::uint64_t total = 0;
  for (const auto m : series.all_errors) total += m;
  EXPECT_EQ(total, p.sim.total_ces);
}

TEST_F(CampaignIntegrationTest, HetAnalysisConsistentWithSim) {
  const auto& p = Run();
  const TimeWindow recording{p.config.het_firmware_start, p.config.window.end};
  const auto analysis = core::AnalyzeUncorrectable(
      p.loaded.het_events, recording,
      p.config.node_count * kDimmSlotsPerNode);
  EXPECT_EQ(analysis.memory_due_events, p.sim.dues_recorded_by_het);
  EXPECT_EQ(analysis.events_before_recording, 0u);
}

TEST_F(CampaignIntegrationTest, TemperatureBlindnessSurvivesPipeline) {
  const auto& p = Run();
  sensors::Environment env;
  core::TemperatureAnalysisConfig tconfig;
  tconfig.max_lookback_samples = 2000;
  tconfig.mean_samples = 32;
  tconfig.lookback_seconds = {SimTime::kSecondsPerDay};
  const core::TemperatureAnalyzer analyzer(tconfig, &env);
  const auto analysis = analyzer.Analyze(p.loaded.memory_errors, p.config.node_count);
  EXPECT_FALSE(analysis.AnyStrongPositiveCorrelation());
}

}  // namespace
}  // namespace astra
