// MappedFile + chunker contract tests: the invariants the parallel sharded
// ingest depends on (concatenation equals input, no line spans two shards,
// long lines collapse boundaries) plus getline-parity line iteration.
#include "util/mapped_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace astra {
namespace {

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "astra_mapped_file_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void WriteBytes(std::string_view bytes) {
    std::ofstream out(path_, std::ios::binary);
    out << bytes;
  }

  std::string path_;
};

TEST_F(MappedFileTest, MissingFileIsNullopt) {
  EXPECT_FALSE(MappedFile::Open(path_ + ".does-not-exist").has_value());
}

TEST_F(MappedFileTest, EmptyFileMapsToEmptyView) {
  WriteBytes("");
  const auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.has_value());
  EXPECT_TRUE(file->Bytes().empty());
}

TEST_F(MappedFileTest, RoundTripsExactBytes) {
  const std::string payload = "line one\nline two\nno terminator";
  WriteBytes(payload);
  const auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->Bytes(), payload);
}

TEST_F(MappedFileTest, MoveKeepsViewValid) {
  WriteBytes("abc\ndef\n");
  auto file = MappedFile::Open(path_);
  ASSERT_TRUE(file.has_value());
  const MappedFile moved = std::move(*file);
  EXPECT_EQ(moved.Bytes(), "abc\ndef\n");
}

// --- chunker invariants ------------------------------------------------------

void ExpectShardInvariants(std::string_view bytes,
                           const std::vector<std::string_view>& shards,
                           std::size_t max_shards) {
  EXPECT_LE(shards.size(), max_shards);
  std::string concatenated;
  for (const auto shard : shards) concatenated += shard;
  EXPECT_EQ(concatenated, bytes);
  // Every shard except possibly the last ends at a line boundary, so no line
  // spans two shards.
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    ASSERT_FALSE(shards[i].empty());
    EXPECT_EQ(shards[i].back(), '\n') << "shard " << i << " tore a line";
  }
}

TEST(SplitAtLineBoundariesTest, EmptyInputYieldsNoShards) {
  EXPECT_TRUE(SplitAtLineBoundaries("", 8).empty());
}

TEST(SplitAtLineBoundariesTest, SingleShardIsWholeInput) {
  const std::string_view bytes = "a\nb\nc\n";
  const auto shards = SplitAtLineBoundaries(bytes, 1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], bytes);
}

TEST(SplitAtLineBoundariesTest, ManyLinesSplitCleanly) {
  std::string bytes;
  for (int i = 0; i < 1000; ++i) {
    bytes += "record line number " + std::to_string(i) + "\n";
  }
  for (const std::size_t max_shards : {2u, 3u, 4u, 8u, 16u}) {
    const auto shards = SplitAtLineBoundaries(bytes, max_shards);
    ExpectShardInvariants(bytes, shards, max_shards);
    EXPECT_EQ(shards.size(), max_shards);  // plenty of boundaries to use
  }
}

TEST(SplitAtLineBoundariesTest, MissingTrailingNewlineKeepsLastLineIntact) {
  std::string bytes;
  for (int i = 0; i < 100; ++i) bytes += "line " + std::to_string(i) + "\n";
  bytes += "unterminated final line";
  const auto shards = SplitAtLineBoundaries(bytes, 4);
  ExpectShardInvariants(bytes, shards, 4);
  ASSERT_FALSE(shards.empty());
  EXPECT_TRUE(shards.back().ends_with("unterminated final line"));
}

TEST(SplitAtLineBoundariesTest, LineLongerThanChunkCollapsesBoundaries) {
  // One line dwarfing the nominal chunk size must stay whole: the chunker
  // yields fewer shards rather than a torn line.
  const std::string giant(4096, 'x');
  const std::string bytes = "short\n" + giant + "\nshort tail\n";
  const auto shards = SplitAtLineBoundaries(bytes, 8);
  ExpectShardInvariants(bytes, shards, 8);
  bool giant_intact = false;
  for (const auto shard : shards) {
    if (shard.find(giant) != std::string_view::npos) giant_intact = true;
  }
  EXPECT_TRUE(giant_intact) << "giant line was split across shards";
}

TEST(SplitAtLineBoundariesTest, SingleLineWithoutNewlineIsOneShard) {
  const std::string_view bytes = "just one header-sized line, no terminator";
  const auto shards = SplitAtLineBoundaries(bytes, 8);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], bytes);
}

TEST(SplitAtLineBoundariesTest, MoreShardsThanBytes) {
  const std::string_view bytes = "a\nb\n";
  const auto shards = SplitAtLineBoundaries(bytes, 64);
  ExpectShardInvariants(bytes, shards, 64);
}

// --- line iteration ----------------------------------------------------------

std::vector<std::string> CollectLines(std::string_view bytes) {
  std::vector<std::string> lines;
  ForEachLineInView(bytes, [&](std::string_view line) {
    lines.emplace_back(line);
    return true;
  });
  return lines;
}

TEST(ForEachLineInViewTest, GetlineSemantics) {
  using V = std::vector<std::string>;
  EXPECT_EQ(CollectLines(""), V{});
  EXPECT_EQ(CollectLines("\n"), V{""});
  EXPECT_EQ(CollectLines("a\nb\nc\n"), (V{"a", "b", "c"}));
  // A final unterminated line is still visited.
  EXPECT_EQ(CollectLines("a\nb\nc"), (V{"a", "b", "c"}));
  // A trailing newline does not produce an empty extra line.
  EXPECT_EQ(CollectLines("a\n\nb\n"), (V{"a", "", "b"}));
}

TEST(ForEachLineInViewTest, StripsTrailingCarriageReturn) {
  using V = std::vector<std::string>;
  EXPECT_EQ(CollectLines("a\r\nb\r\n"), (V{"a", "b"}));
  EXPECT_EQ(CollectLines("\r\n"), V{""});
  EXPECT_EQ(CollectLines("tail\r"), V{"tail"});
}

TEST(ForEachLineInViewTest, EarlyStopCountsStoppingLine) {
  int visited = 0;
  const std::size_t count =
      ForEachLineInView("a\nb\nc\nd\n", [&](std::string_view) {
        ++visited;
        return visited < 2;
      });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(visited, 2);
}

TEST(FirstLineOfTest, SplitsHeaderFromRest) {
  std::string_view rest;
  const auto first = FirstLineOf("header\nbody1\nbody2\n", &rest);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "header");
  EXPECT_EQ(rest, "body1\nbody2\n");
}

TEST(FirstLineOfTest, UnterminatedSingleLine) {
  std::string_view rest;
  const auto first = FirstLineOf("only line", &rest);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "only line");
  EXPECT_TRUE(rest.empty());
}

TEST(FirstLineOfTest, EmptyInputIsNullopt) {
  EXPECT_FALSE(FirstLineOf("").has_value());
}

}  // namespace
}  // namespace astra
