#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace astra {
namespace {

TEST(SplitMix64Test, KnownSequence) {
  // Reference values from the canonical splitmix64 with seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64(state), 0x06c45d188009454fULL);
}

TEST(MixSeedTest, DistinctKeysGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    seeds.insert(MixSeed(42, key));
    seeds.insert(MixSeed(42, key, 7));
  }
  EXPECT_EQ(seeds.size(), 2000u);
}

TEST(MixSeedTest, OrderSensitive) {
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(1, 3, 2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng(), 0u);  // state must not be stuck at zero
}

TEST(RngTest, ForkIndependentOfDrawCount) {
  Rng parent(99);
  const Rng child_early = parent.Fork(5);
  Rng parent2(99);
  const Rng child_same = parent2.Fork(5);
  Rng a = child_early, b = child_same;
  EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntZeroBound) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(std::uint64_t{0}), 0u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(std::uint64_t{8}));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, SignedUniformIntInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
  // Tolerance ~ 5 standard errors.
  const double tol = 5.0 * std::sqrt(mean / n) + 0.01;
  EXPECT_NEAR(sum / n, mean, std::max(tol, mean * 0.02));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.01, 0.5, 1.0, 4.0, 20.0, 100.0, 500.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
  EXPECT_EQ(rng.Poisson(-1.0), 0u);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(37);
  std::vector<double> xs(40001);
  for (auto& x : xs) x = rng.LogNormal(1.0, 0.7);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  Rng rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Weibull(1.0, 2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.BoundedPareto(1.5, 1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

class DiscretePowerLawTest : public ::testing::TestWithParam<double> {};

TEST_P(DiscretePowerLawTest, BoundsAndHeavyHead) {
  const double alpha = GetParam();
  Rng rng(47);
  const std::uint64_t kmax = 10000;
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = rng.DiscretePowerLaw(alpha, kmax);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, kmax);
    ones += k == 1;
  }
  // The head must dominate: P(k=1) is the largest single mass.
  EXPECT_GT(static_cast<double>(ones) / n, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DiscretePowerLawTest,
                         ::testing::Values(1.2, 1.5, 2.0, 2.5, 3.0));

TEST(RngTest, DiscretePowerLawDegenerateKmax) {
  Rng rng(53);
  EXPECT_EQ(rng.DiscretePowerLaw(2.0, 1), 1u);
  EXPECT_EQ(rng.DiscretePowerLaw(2.0, 0), 1u);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(59);
  const double weights[3] = {1.0, 2.0, 7.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights, 3)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.015);
}

TEST(RngTest, WeightedIndexDegenerate) {
  Rng rng(61);
  const double zero[2] = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(zero, 2), 0u);
  const double one[1] = {5.0};
  EXPECT_EQ(rng.WeightedIndex(one, 1), 0u);
}

}  // namespace
}  // namespace astra
