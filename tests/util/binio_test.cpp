// Bounded binary (de)serialization: exact round trips, sticky failure on
// exhausted or hostile input, and the CRC-32 reference vector.
#include "util/binio.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace astra::binio {
namespace {

TEST(BinioTest, RoundTripsEveryType) {
  std::string buffer;
  Writer writer(buffer);
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(std::numeric_limits<std::uint64_t>::max());
  writer.PutI32(-123456);
  writer.PutI64(std::numeric_limits<std::int64_t>::min());
  writer.PutBool(true);
  writer.PutBool(false);
  writer.PutDouble(3.141592653589793);
  writer.PutString("tab\tnewline\nnul");
  writer.PutString("");

  Reader reader(buffer);
  EXPECT_EQ(reader.GetU8(), 0xAB);
  EXPECT_EQ(reader.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.GetU64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(reader.GetI32(), -123456);
  EXPECT_EQ(reader.GetI64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(reader.GetBool());
  EXPECT_FALSE(reader.GetBool());
  EXPECT_EQ(reader.GetDouble(), 3.141592653589793);
  std::string s;
  EXPECT_TRUE(reader.GetString(s));
  EXPECT_EQ(s, "tab\tnewline\nnul");
  EXPECT_TRUE(reader.GetString(s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinioTest, LittleEndianFixedWidthEncoding) {
  std::string buffer;
  Writer writer(buffer);
  writer.PutU32(0x01020304);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buffer[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buffer[3]), 0x01);
}

TEST(BinioTest, ExhaustionIsStickyAndReturnsZeros) {
  std::string buffer;
  Writer writer(buffer);
  writer.PutU32(7);

  Reader reader(buffer);
  EXPECT_EQ(reader.GetU32(), 7u);
  EXPECT_EQ(reader.GetU64(), 0u);  // past the end
  EXPECT_FALSE(reader.Ok());
  EXPECT_EQ(reader.GetU32(), 0u);  // still failed, still zero
  EXPECT_FALSE(reader.AtEnd());    // failure is never "cleanly consumed"
}

TEST(BinioTest, StringLengthBeyondBufferRejected) {
  std::string buffer;
  Writer writer(buffer);
  writer.PutU64(1'000'000);  // claims a megabyte that is not there
  buffer += "abc";

  Reader reader(buffer);
  std::string out = "sentinel";
  EXPECT_FALSE(reader.GetString(out));
  EXPECT_FALSE(reader.Ok());
}

TEST(BinioTest, CanReadItemsGuardsHostileCounts) {
  std::string buffer(64, '\0');
  Reader reader(buffer);
  EXPECT_TRUE(reader.CanReadItems(8, 8));
  EXPECT_TRUE(reader.Ok());

  Reader hostile(buffer);
  // A forged count whose count*size would overflow 64 bits must still fail.
  EXPECT_FALSE(hostile.CanReadItems(std::numeric_limits<std::uint64_t>::max(), 8));
  EXPECT_FALSE(hostile.Ok());

  Reader slightly(buffer);
  EXPECT_FALSE(slightly.CanReadItems(9, 8));  // one item too many
  EXPECT_FALSE(slightly.Ok());
}

TEST(BinioTest, Crc32MatchesReferenceVector) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(BinioTest, Crc32DetectsSingleBitFlip) {
  std::string payload(256, 'x');
  const std::uint32_t clean = Crc32(payload);
  for (std::size_t i = 0; i < payload.size(); i += 37) {
    std::string flipped = payload;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    EXPECT_NE(Crc32(flipped), clean) << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace astra::binio
