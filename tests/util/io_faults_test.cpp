// The Io seam and the FaultyIo decorator: the passthrough base must behave
// like the filesystem, ScopedIo must install/restore overrides, and injected
// faults must be deterministic, transience-bounded, and path-scoped.
#include "util/io_faults.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace astra::io {
namespace {

class IoFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "astra_io_faults_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(IoFaultsTest, PassthroughRoundTrip) {
  Io& io = DefaultIo();
  const std::string path = Path("data.bin");
  // Embedded NUL: byte-level APIs must not treat the payload as a C string.
  const std::string payload =
      std::string("line one\nline two\n") + '\0' + "binary tail";

  ASSERT_TRUE(io.WriteFile(path, payload));
  EXPECT_TRUE(io.SyncFile(path));
  EXPECT_TRUE(io.SyncDir(dir_));

  const auto bytes = io.ReadFile(path);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, payload);

  const auto mapped = io.MapFile(path);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->Bytes(), payload);

  const auto size = io.FileSize(path);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, payload.size());

  const std::string moved = Path("moved.bin");
  ASSERT_TRUE(io.Rename(path, moved));
  EXPECT_FALSE(io.FileSize(path).has_value());
  EXPECT_TRUE(io.FileSize(moved).has_value());

  EXPECT_TRUE(io.Remove(moved));
  EXPECT_FALSE(io.FileSize(moved).has_value());
  // Removing an absent file is "already gone", not a failure.
  EXPECT_TRUE(io.Remove(moved));
}

TEST_F(IoFaultsTest, PassthroughFailsOnMissingFiles) {
  Io& io = DefaultIo();
  const std::string nope = Path("nope");
  EXPECT_FALSE(io.ReadFile(nope).has_value());
  EXPECT_FALSE(io.MapFile(nope).has_value());
  EXPECT_FALSE(io.FileSize(nope).has_value());
  EXPECT_FALSE(io.Rename(nope, Path("still_nope")));
  EXPECT_FALSE(io.SyncFile(nope));
}

TEST_F(IoFaultsTest, ScopedIoInstallsAndRestoresNested) {
  ASSERT_EQ(&Current(), &DefaultIo());
  FaultConfig outer_config;
  FaultyIo outer(outer_config);
  {
    ScopedIo outer_scope(outer);
    EXPECT_EQ(&Current(), &outer);
    FaultyIo inner(outer_config);
    {
      ScopedIo inner_scope(inner);
      EXPECT_EQ(&Current(), &inner);
    }
    EXPECT_EQ(&Current(), &outer);
  }
  EXPECT_EQ(&Current(), &DefaultIo());
}

TEST_F(IoFaultsTest, MaxConsecutiveBoundsEveryFailureStreak) {
  // p = 1.0 wants to fail every call; the transience bound forces a success
  // after each streak of two, so the observed pattern is fail,fail,ok,...
  FaultConfig config;
  config.open_fail = 1.0;
  config.max_consecutive = 2;
  FaultyIo faulty(config);

  const std::string path = Path("data.txt");
  ASSERT_TRUE(DefaultIo().WriteFile(path, "payload"));
  int streak = 0;
  for (int i = 0; i < 30; ++i) {
    if (faulty.ReadFile(path).has_value()) {
      EXPECT_EQ(streak, 2) << "success arrived off-schedule at call " << i;
      streak = 0;
    } else {
      ++streak;
      ASSERT_LE(streak, 2) << "streak exceeded the transience bound";
    }
  }
  EXPECT_EQ(faulty.Stats().Count(Fault::kOpenFail), 20u);
}

TEST_F(IoFaultsTest, PersistentConfigurationNeverRecovers) {
  FaultConfig config;
  config.open_fail = 1.0;
  config.max_consecutive = 0;  // persistent: the fatal-path configuration
  FaultyIo faulty(config);
  const std::string path = Path("data.txt");
  ASSERT_TRUE(DefaultIo().WriteFile(path, "payload"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(faulty.ReadFile(path).has_value());
  }
}

TEST_F(IoFaultsTest, ShortReadDeliversStrictPrefix) {
  FaultConfig config;
  config.read_short = 1.0;
  config.max_consecutive = 0;
  FaultyIo faulty(config);
  const std::string path = Path("data.txt");
  const std::string payload = "0123456789abcdef";
  ASSERT_TRUE(DefaultIo().WriteFile(path, payload));

  const auto bytes = faulty.ReadFile(path);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_LT(bytes->size(), payload.size());
  EXPECT_EQ(*bytes, payload.substr(0, bytes->size()));
  EXPECT_GE(faulty.Stats().Count(Fault::kShortRead), 1u);
}

TEST_F(IoFaultsTest, TornWriteLeavesStrictPrefixOnDiskAndFails) {
  FaultConfig config;
  config.write_torn = 1.0;
  config.max_consecutive = 0;
  FaultyIo faulty(config);
  const std::string path = Path("data.txt");
  const std::string payload = "0123456789abcdef0123456789abcdef";

  EXPECT_FALSE(faulty.WriteFile(path, payload));
  const auto on_disk = DefaultIo().ReadFile(path);
  ASSERT_TRUE(on_disk.has_value());  // the torn prefix IS left behind
  EXPECT_LT(on_disk->size(), payload.size());
  EXPECT_EQ(*on_disk, payload.substr(0, on_disk->size()));
}

TEST_F(IoFaultsTest, PathFilterScopesFaultsToMatchingPaths) {
  FaultConfig config;
  config.open_fail = 1.0;
  config.max_consecutive = 0;
  config.path_filter = "het_events";
  FaultyIo faulty(config);

  const std::string healthy = Path("memory_errors.tsv");
  const std::string sick = Path("het_events.tsv");
  ASSERT_TRUE(DefaultIo().WriteFile(healthy, "a"));
  ASSERT_TRUE(DefaultIo().WriteFile(sick, "b"));

  EXPECT_TRUE(faulty.ReadFile(healthy).has_value());
  EXPECT_FALSE(faulty.ReadFile(sick).has_value());
  EXPECT_TRUE(faulty.MapFile(healthy).has_value());
  EXPECT_FALSE(faulty.MapFile(sick).has_value());
}

TEST_F(IoFaultsTest, SameSeedSameDecisionSequence) {
  const std::string path = Path("data.txt");
  ASSERT_TRUE(DefaultIo().WriteFile(path, "payload"));

  const auto run = [&](std::uint64_t seed) {
    FaultConfig config;
    config.seed = seed;
    config.open_fail = 0.4;
    config.max_consecutive = 3;
    FaultyIo faulty(config);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += faulty.ReadFile(path).has_value() ? 'o' : 'x';
    }
    return pattern;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(IoFaultsTest, FaultNamesAreDistinct) {
  for (int a = 0; a < kFaultKindCount; ++a) {
    EXPECT_FALSE(FaultName(static_cast<Fault>(a)).empty());
    for (int b = a + 1; b < kFaultKindCount; ++b) {
      EXPECT_NE(FaultName(static_cast<Fault>(a)),
                FaultName(static_cast<Fault>(b)));
    }
  }
}

}  // namespace
}  // namespace astra::io
