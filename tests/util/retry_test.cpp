// The retry contract: exponential growth saturating at the cap, jitter that
// is bounded and a pure function of (seed, attempt), and a loop that runs
// exactly max_attempts times with the published delay schedule in between.
#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace astra {
namespace {

RetryPolicy NoJitter(int attempts, std::int64_t base, std::int64_t cap) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_delay_ms = base;
  policy.max_delay_ms = cap;
  policy.jitter = 0.0;
  return policy;
}

TEST(BackoffDelayMsTest, DoublesPerAttemptAndSaturatesAtCap) {
  const auto policy = NoJitter(10, 100, 800);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 100);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 200);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 400);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 800);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 800);
  EXPECT_EQ(BackoffDelayMs(policy, 60), 800);  // no overflow at high attempts
}

TEST(BackoffDelayMsTest, OutOfRangeInputsAreClamped) {
  const auto policy = NoJitter(10, 100, 800);
  EXPECT_EQ(BackoffDelayMs(policy, 0), 100);   // treated as the first attempt
  EXPECT_EQ(BackoffDelayMs(policy, -3), 100);
  EXPECT_EQ(BackoffDelayMs(NoJitter(10, -50, 800), 1), 0);  // negative base
  EXPECT_EQ(BackoffDelayMs(NoJitter(10, 100, -1), 3), 0);   // negative cap
}

TEST(BackoffDelayMsTest, JitterIsBoundedAroundTheNominalDelay) {
  RetryPolicy policy;
  policy.base_delay_ms = 1000;
  policy.max_delay_ms = 1000;
  policy.jitter = 0.5;
  for (int attempt = 1; attempt <= 32; ++attempt) {
    const auto delay = BackoffDelayMs(policy, attempt);
    EXPECT_GE(delay, 500) << "attempt " << attempt;
    EXPECT_LE(delay, 1500) << "attempt " << attempt;
  }
}

TEST(BackoffDelayMsTest, JitterIsDeterministicPerSeedAndAttempt) {
  RetryPolicy policy;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(BackoffDelayMs(policy, attempt), BackoffDelayMs(policy, attempt));
  }
  // A different seed produces a different schedule somewhere — two processes
  // must not retry in lockstep against the same sick disk.
  RetryPolicy other = policy;
  other.seed = 43;
  bool differs = false;
  for (int attempt = 1; attempt <= 8 && !differs; ++attempt) {
    differs = BackoffDelayMs(policy, attempt) != BackoffDelayMs(other, attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryWithBackoffTest, StopsAtFirstSuccess) {
  int calls = 0;
  EXPECT_TRUE(RetryWithBackoff(NoJitter(5, 10, 100), [&] {
    ++calls;
    return calls == 3;
  }));
  EXPECT_EQ(calls, 3);
}

TEST(RetryWithBackoffTest, ExhaustionRunsExactlyMaxAttempts) {
  int calls = 0;
  EXPECT_FALSE(RetryWithBackoff(NoJitter(4, 10, 100), [&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 4);
}

TEST(RetryWithBackoffTest, SleepsThePublishedScheduleBetweenAttempts) {
  const auto policy = NoJitter(4, 10, 1000);
  std::vector<std::int64_t> slept;
  EXPECT_FALSE(RetryWithBackoff(
      policy, [] { return false; },
      [&slept](std::int64_t ms) { slept.push_back(ms); }));
  // max_attempts - 1 sleeps: none after the final failure.
  EXPECT_EQ(slept, (std::vector<std::int64_t>{10, 20, 40}));
}

TEST(RetryWithBackoffTest, NonePolicyIsSingleAttemptNoSleep) {
  int calls = 0;
  int sleeps = 0;
  EXPECT_FALSE(RetryWithBackoff(
      RetryPolicy::None(), [&] {
        ++calls;
        return false;
      },
      [&sleeps](std::int64_t) { ++sleeps; }));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
}

TEST(RetryWithBackoffTest, NonPositiveAttemptBudgetStillTriesOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  int calls = 0;
  EXPECT_TRUE(RetryWithBackoff(policy, [&] {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace astra
