#include "util/file_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace astra {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "astra_file_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileIoTest, WriteThenReadRoundTrip) {
  const std::vector<std::string> lines = {"first", "second", "", "fourth"};
  ASSERT_TRUE(WriteLines(path_, lines));
  const auto back = ReadLines(path_);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, lines);
}

TEST_F(FileIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadLines("/nonexistent/definitely/missing.txt").has_value());
  EXPECT_FALSE(ForEachLine("/nonexistent/definitely/missing.txt",
                           [](std::string_view) { return true; })
                   .has_value());
}

TEST_F(FileIoTest, ForEachLineVisitsAll) {
  ASSERT_TRUE(WriteLines(path_, {"a", "b", "c"}));
  std::vector<std::string> seen;
  const auto count = ForEachLine(path_, [&](std::string_view line) {
    seen.emplace_back(line);
    return true;
  });
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(FileIoTest, ForEachLineEarlyStop) {
  ASSERT_TRUE(WriteLines(path_, {"a", "b", "c"}));
  int visited = 0;
  const auto count = ForEachLine(path_, [&](std::string_view) {
    ++visited;
    return visited < 2;
  });
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(visited, 2);
}

TEST_F(FileIoTest, StripsCarriageReturns) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "dos line\r\nunix line\n";
  }
  const auto lines = ReadLines(path_);
  ASSERT_TRUE(lines.has_value());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0], "dos line");
  EXPECT_EQ((*lines)[1], "unix line");
}

TEST_F(FileIoTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteLines("/nonexistent/dir/file.txt", {"x"}));
}

}  // namespace
}  // namespace astra
