#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace astra {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  ParallelFor(kCount, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallCountRunsInline) {
  std::vector<int> order;
  ParallelFor(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  // Below the serial threshold, execution is in-order on the calling thread.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ResultIndependentOfThreadCount) {
  constexpr std::size_t kCount = 5000;
  std::vector<double> serial(kCount), parallel_out(kCount);
  auto work = [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; };
  ParallelFor(kCount, [&](std::size_t i) { serial[i] = work(i); }, 1);
  ParallelFor(kCount, [&](std::size_t i) { parallel_out[i] = work(i); });
  EXPECT_EQ(serial, parallel_out);
}

TEST(ParallelForRangesTest, RangesPartitionExactly) {
  constexpr std::size_t kCount = 1237;
  std::vector<std::atomic<int>> visits(kCount);
  ParallelForRanges(kCount, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().ThreadCount(), 1u);
}

}  // namespace
}  // namespace astra
