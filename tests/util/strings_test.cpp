#include "util/strings.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace astra {
namespace {

// ScanFields with a generous capacity, returned as a vector so expectations
// read like the SplitView ones.
std::vector<std::string_view> Scan(std::string_view text, char delim) {
  std::string_view fields[32];
  const std::size_t count = ScanFields(text, delim, fields, 32);
  EXPECT_LE(count, 32u);
  return {fields, fields + count};
}

TEST(SplitViewTest, BasicSplit) {
  const auto fields = SplitView("a\tb\tc", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitViewTest, PreservesEmptyFields) {
  const auto fields = SplitView("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitViewTest, EmptyInput) {
  const auto fields = SplitView("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(ScanFieldsTest, MatchesSplitViewOnBasics) {
  const auto fields = Scan("a\tb\tc", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(ScanFieldsTest, PreservesEmptyFields) {
  const auto fields = Scan("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(ScanFieldsTest, EmptyInputIsOneEmptyField) {
  const auto fields = Scan("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(ScanFieldsTest, AllDelimiters) {
  // Every byte of the SWAR word is a hit: 9 empty fields from 8 tabs.
  const auto fields = Scan("\t\t\t\t\t\t\t\t", '\t');
  ASSERT_EQ(fields.size(), 9u);
  for (const auto field : fields) EXPECT_EQ(field, "");
}

TEST(ScanFieldsTest, EightByteBoundaryLines) {
  // Lengths straddling the 8-byte word: the tail loop (size % 8 bytes) and
  // the delimiter landing exactly on a word edge are the classic SWAR
  // off-by-one sites.
  for (std::size_t length = 1; length <= 40; ++length) {
    for (std::size_t at = 0; at < length; ++at) {
      std::string text(length, 'x');
      text[at] = '\t';
      const auto fields = Scan(text, '\t');
      ASSERT_EQ(fields.size(), 2u) << "length=" << length << " at=" << at;
      EXPECT_EQ(fields[0], text.substr(0, at));
      EXPECT_EQ(fields[1], text.substr(at + 1));
    }
  }
}

TEST(ScanFieldsTest, EmbeddedCarriageReturnIsPayload) {
  // '\r' is an ordinary byte to the scanner; CRLF handling belongs to the
  // line splitter above it.
  const auto fields = Scan("a\rb\tc\r", '\t');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a\rb");
  EXPECT_EQ(fields[1], "c\r");
}

TEST(ScanFieldsTest, LargeOffsetViewsScanIdentically) {
  // Views deep into a large buffer start at arbitrary alignment; the scan
  // must neither read before the view nor depend on word alignment.
  const std::string payload = "alpha\tbeta\t\tdelta";
  std::string buffer(4096, '\t');
  for (const std::size_t offset :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{1021}, std::size_t{4000}}) {
    buffer.replace(offset, payload.size(), payload);
    const std::string_view view(buffer.data() + offset, payload.size());
    const auto fields = Scan(view, '\t');
    ASSERT_EQ(fields.size(), 4u) << "offset=" << offset;
    EXPECT_EQ(fields[0], "alpha");
    EXPECT_EQ(fields[1], "beta");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "delta");
    buffer.replace(offset, payload.size(), payload.size(), '\t');
  }
}

TEST(ScanFieldsTest, OverflowReportsMaxPlusOneWithoutScanningOn) {
  std::string_view fields[3];
  EXPECT_EQ(ScanFields("a,b,c", ',', fields, 3), 3u);
  EXPECT_EQ(ScanFields("a,b,c,d", ',', fields, 3), 4u);  // max + 1
  EXPECT_EQ(ScanFields("a,b,c,d,e,f,g,h", ',', fields, 3), 4u);
  // The fields delimited before the overflow are still valid.
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
}

TEST(ScanFieldsTest, FuzzParityWithSplitView) {
  // Random strings over a delimiter-dense alphabet: the SWAR scanner and the
  // scalar splitter must agree on every field.
  Rng rng(0x5ca7f1e1d5ULL);
  const char alphabet[] = {'\t', '\t', 'a', 'b', '0', '\r', ',', ' '};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const std::size_t length = rng.UniformInt(std::uint64_t{64});
    for (std::size_t i = 0; i < length; ++i) {
      text += alphabet[rng.UniformInt(std::uint64_t{sizeof alphabet})];
    }
    const auto expected = SplitView(text, '\t');
    std::string_view fields[80];
    const std::size_t count = ScanFields(text, '\t', fields, 80);
    ASSERT_EQ(count, expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(fields[i], expected[i]) << "trial " << trial << " field " << i;
    }
  }
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  const auto fields = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(TrimViewTest, TrimsBothEnds) {
  EXPECT_EQ(TrimView("  hi  "), "hi");
  EXPECT_EQ(TrimView("hi"), "hi");
  EXPECT_EQ(TrimView("   "), "");
  EXPECT_EQ(TrimView(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("timestamp\tnode", "timestamp"));
  EXPECT_FALSE(StartsWith("time", "timestamp"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("x42").has_value());
  EXPECT_FALSE(ParseInt64("4 2").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(ParseUint64Test, HexSupport) {
  EXPECT_EQ(ParseUint64("ff", 16), 255u);
  EXPECT_EQ(ParseUint64("0xff", 16), 255u);
  EXPECT_EQ(ParseUint64("0x0000000010", 16), 16u);
  EXPECT_FALSE(ParseUint64("0x", 16).has_value());
  EXPECT_FALSE(ParseUint64("-1").has_value());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("3.25C").has_value());
  EXPECT_FALSE(ParseDouble("NA").has_value());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(ParseDecimalI64Test, AgreesWithParseInt64OnEdges) {
  const std::string_view cases[] = {
      "", "-", "0", "-0", "+5", "42", "-42", " 42", "42 ", "4 2", "042",
      "9223372036854775807",   // INT64_MAX
      "9223372036854775808",   // INT64_MAX + 1: overflow
      "-9223372036854775808",  // INT64_MIN
      "-9223372036854775809",  // INT64_MIN - 1: overflow
      "99999999999999999999999", "1e3", "0x10", "12a", "--4",
  };
  for (const auto text : cases) {
    EXPECT_EQ(ParseDecimalI64(text), ParseInt64(text)) << '"' << text << '"';
  }
  EXPECT_EQ(ParseDecimalI64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseHexU64Test, AgreesWithParseUint64OnEdges) {
  const std::string_view cases[] = {
      "", "0x", "0", "ff", "FF", "0xff", "0xFF", "0Xff", "deadBEEF",
      "ffffffffffffffff",          // UINT64_MAX
      "10000000000000000",         // 17 nibbles: overflow
      "0x0000000000000000000010",  // leading zeros never overflow
      "g", "0xg", "-1", " ff", "ff ",
  };
  for (const auto text : cases) {
    EXPECT_EQ(ParseHexU64(text), ParseUint64(text, 16)) << '"' << text << '"';
  }
}

TEST(ParseParityTest, FuzzDecimalAndHexAgainstFromChars) {
  Rng rng(0xdecafULL);
  const char alphabet[] = {'0', '1', '7', '9', 'a', 'f', 'F', 'g',
                           'x', '-', '+', ' ', '0', '5'};
  for (int trial = 0; trial < 5000; ++trial) {
    std::string text;
    const std::size_t length = rng.UniformInt(std::uint64_t{24});
    for (std::size_t i = 0; i < length; ++i) {
      text += alphabet[rng.UniformInt(std::uint64_t{sizeof alphabet})];
    }
    EXPECT_EQ(ParseDecimalI64(text), ParseInt64(text)) << '"' << text << '"';
    EXPECT_EQ(ParseHexU64(text), ParseUint64(text, 16)) << '"' << text << '"';
  }
}

TEST(WithThousandsTest, Grouping) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(4369731), "4,369,731");
  EXPECT_EQ(WithThousands(1412738), "1,412,738");
  EXPECT_EQ(WithThousands(1000000000ULL), "1,000,000,000");
}

}  // namespace
}  // namespace astra
