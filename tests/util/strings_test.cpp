#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace astra {
namespace {

TEST(SplitViewTest, BasicSplit) {
  const auto fields = SplitView("a\tb\tc", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitViewTest, PreservesEmptyFields) {
  const auto fields = SplitView("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitViewTest, EmptyInput) {
  const auto fields = SplitView("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  const auto fields = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(TrimViewTest, TrimsBothEnds) {
  EXPECT_EQ(TrimView("  hi  "), "hi");
  EXPECT_EQ(TrimView("hi"), "hi");
  EXPECT_EQ(TrimView("   "), "");
  EXPECT_EQ(TrimView(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("timestamp\tnode", "timestamp"));
  EXPECT_FALSE(StartsWith("time", "timestamp"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("x42").has_value());
  EXPECT_FALSE(ParseInt64("4 2").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(ParseUint64Test, HexSupport) {
  EXPECT_EQ(ParseUint64("ff", 16), 255u);
  EXPECT_EQ(ParseUint64("0xff", 16), 255u);
  EXPECT_EQ(ParseUint64("0x0000000010", 16), 16u);
  EXPECT_FALSE(ParseUint64("0x", 16).has_value());
  EXPECT_FALSE(ParseUint64("-1").has_value());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("3.25C").has_value());
  EXPECT_FALSE(ParseDouble("NA").has_value());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(WithThousandsTest, Grouping) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(4369731), "4,369,731");
  EXPECT_EQ(WithThousands(1412738), "1,412,738");
  EXPECT_EQ(WithThousands(1000000000ULL), "1,000,000,000");
}

}  // namespace
}  // namespace astra
