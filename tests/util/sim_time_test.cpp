#include "util/sim_time.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace astra {
namespace {

TEST(CivilDateTest, EpochIsDayZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(CivilFromDays(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilDateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(2019, 1, 20), 17916);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

class CivilRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CivilRoundTripTest, RoundTrips) {
  const auto [y, m, d] = GetParam();
  const std::int64_t days = DaysFromCivil(y, m, d);
  const CivilDate back = CivilFromDays(days);
  EXPECT_EQ(back.year, y);
  EXPECT_EQ(back.month, m);
  EXPECT_EQ(back.day, d);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, CivilRoundTripTest,
    ::testing::Values(std::tuple{2019, 1, 20}, std::tuple{2019, 2, 28},
                      std::tuple{2019, 9, 14}, std::tuple{2020, 2, 29},
                      std::tuple{2000, 2, 29}, std::tuple{1900, 3, 1},
                      std::tuple{2100, 12, 31}, std::tuple{1970, 1, 1},
                      std::tuple{2019, 8, 23}, std::tuple{1999, 12, 31}));

TEST(SimTimeTest, FromCivilAndBack) {
  const SimTime t = SimTime::FromCivil(2019, 5, 20, 13, 45, 30);
  const CivilDateTime c = t.ToCivil();
  EXPECT_EQ(c.date, (CivilDate{2019, 5, 20}));
  EXPECT_EQ(c.hour, 13);
  EXPECT_EQ(c.minute, 45);
  EXPECT_EQ(c.second, 30);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(SimTime::FromCivil(2019, 1, 20).ToString(), "2019-01-20 00:00:00");
  EXPECT_EQ(SimTime::FromCivil(2019, 9, 14, 23, 59, 59).ToString(),
            "2019-09-14 23:59:59");
  EXPECT_EQ(SimTime::FromCivil(2019, 7, 4).ToDateString(), "2019-07-04");
}

TEST(SimTimeTest, ParseFullTimestamp) {
  SimTime t;
  ASSERT_TRUE(SimTime::Parse("2019-05-20 13:45:30", t));
  EXPECT_EQ(t, SimTime::FromCivil(2019, 5, 20, 13, 45, 30));
}

TEST(SimTimeTest, ParseDateOnly) {
  SimTime t;
  ASSERT_TRUE(SimTime::Parse("2019-05-20", t));
  EXPECT_EQ(t, SimTime::FromCivil(2019, 5, 20));
}

TEST(SimTimeTest, ParseMinuteResolution) {
  SimTime t;
  ASSERT_TRUE(SimTime::Parse("2019-05-20 13:45", t));
  EXPECT_EQ(t, SimTime::FromCivil(2019, 5, 20, 13, 45));
}

class BadTimestampTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BadTimestampTest, Rejected) {
  SimTime t;
  EXPECT_FALSE(SimTime::Parse(GetParam(), t)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadTimestampTest,
                         ::testing::Values("", "2019", "2019-13-01", "2019-00-10",
                                           "2019-01-32", "19-01-01",
                                           "2019/01/01", "2019-01-01 25:00",
                                           "2019-01-01 10:61", "2019-01-01 10:10:99",
                                           "2019-01-01T10", "garbage",
                                           "2019-01-01 10:10:10x"));

TEST(SimTimeTest, RoundTripThroughString) {
  const SimTime t = SimTime::FromCivil(2019, 8, 23, 6, 7, 8);
  SimTime parsed;
  ASSERT_TRUE(SimTime::Parse(t.ToString(), parsed));
  EXPECT_EQ(parsed, t);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t = SimTime::FromCivil(2019, 1, 31, 23, 0, 0);
  EXPECT_EQ(t.AddHours(2).ToString(), "2019-02-01 01:00:00");
  EXPECT_EQ(t.AddDays(1).ToCivil().date, (CivilDate{2019, 2, 1}));
  EXPECT_EQ(t.AddMinutes(90).ToCivil().minute, 30);
  EXPECT_EQ(t.AddSeconds(-3600), t.AddHours(-1));
}

TEST(TimeWindowTest, ContainsHalfOpen) {
  const TimeWindow w{SimTime::FromCivil(2019, 1, 1), SimTime::FromCivil(2019, 2, 1)};
  EXPECT_TRUE(w.Contains(w.begin));
  EXPECT_FALSE(w.Contains(w.end));
  EXPECT_TRUE(w.Contains(SimTime::FromCivil(2019, 1, 15)));
  EXPECT_FALSE(w.Contains(SimTime::FromCivil(2019, 2, 15)));
  EXPECT_DOUBLE_EQ(w.DurationDays(), 31.0);
}

TEST(SimTimeTest, FastPathQuirksFallThroughToGeneralParser) {
  // The 19-char fast path requires strictly digit-shaped fields; anything
  // else must fall through with the accepted language unchanged.  A signed
  // minutes field is the canonical from_chars quirk the general parser
  // accepts, so the fast path must not start rejecting it.
  SimTime quirky;
  ASSERT_TRUE(SimTime::Parse("2019-06-15 12:-5:56", quirky));
  EXPECT_EQ(quirky, SimTime::FromCivil(2019, 6, 15, 12, -5, 56));
  // 'T' separators take the fast path too.
  SimTime iso;
  ASSERT_TRUE(SimTime::Parse("2019-06-15T12:34:56", iso));
  EXPECT_EQ(iso, SimTime::FromCivil(2019, 6, 15, 12, 34, 56));
  // Out-of-range fields are rejected on both paths.
  SimTime t;
  EXPECT_FALSE(SimTime::Parse("2019-06-15 24:00:00", t));
  EXPECT_FALSE(SimTime::Parse("2019-06-15 12:60:00", t));
}

TEST(SimTimeTest, FastPathParityOverFormattedSweep) {
  // Every canonical "YYYY-MM-DD HH:MM:SS" takes the fast path; round-trip a
  // timestamp sweep (odd step so all second/minute/hour values appear) and
  // require exact agreement with what was formatted.
  SimTime t = SimTime::FromCivil(2018, 12, 31, 23, 59, 7);
  for (int i = 0; i < 5000; ++i) {
    SimTime parsed;
    ASSERT_TRUE(SimTime::Parse(t.ToString(), parsed)) << t.ToString();
    EXPECT_EQ(parsed, t);
    t = t.AddSeconds(86399);  // one second short of a day: drifts all fields
  }
}

TEST(CalendarMonthCacheTest, AgreesWithAbsoluteCalendarMonthEverywhere) {
  CalendarMonthCache cache;
  // Clustered lookups (the memo hit), month-boundary crossings in both
  // directions, and far jumps must all agree with the uncached function.
  const SimTime boundary = SimTime::FromCivil(2019, 7, 1);
  const SimTime probes[] = {
      boundary.AddSeconds(-1), boundary,          boundary.AddSeconds(1),
      boundary.AddSeconds(-1),                    // re-cross going backward
      SimTime::FromCivil(2019, 1, 1),             // far jump back
      SimTime::FromCivil(2024, 2, 29, 23, 59, 59),  // leap day, far forward
      SimTime::FromCivil(1970, 1, 1),
  };
  for (const SimTime t : probes) {
    EXPECT_EQ(cache.MonthOf(t), AbsoluteCalendarMonth(t)) << t.ToString();
  }
  // A dense sweep across several month boundaries, mostly cache hits.
  SimTime t = SimTime::FromCivil(2019, 5, 28);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(cache.MonthOf(t), AbsoluteCalendarMonth(t));
    t = t.AddSeconds(733);
  }
}

TEST(CalendarMonthIndexTest, SameMonthIsZero) {
  const SimTime origin = SimTime::FromCivil(2019, 1, 20);
  EXPECT_EQ(CalendarMonthIndex(origin, SimTime::FromCivil(2019, 1, 31)), 0);
  EXPECT_EQ(CalendarMonthIndex(origin, SimTime::FromCivil(2019, 2, 1)), 1);
  EXPECT_EQ(CalendarMonthIndex(origin, SimTime::FromCivil(2019, 9, 14)), 8);
  EXPECT_EQ(CalendarMonthIndex(origin, SimTime::FromCivil(2020, 1, 1)), 12);
  EXPECT_EQ(CalendarMonthIndex(origin, SimTime::FromCivil(2018, 12, 31)), -1);
}

}  // namespace
}  // namespace astra
