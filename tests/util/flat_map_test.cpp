#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace astra {
namespace {

TEST(FlatCountMapTest, StartsEmpty) {
  FlatCountMap<std::uint64_t> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);
}

TEST(FlatCountMapTest, SubscriptInsertsZeroInitialized) {
  FlatCountMap<std::uint64_t> map;
  EXPECT_EQ(map[7], 0u);
  map[7] += 3;
  map[9] += 1;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(7), 3u);
  EXPECT_EQ(map.at(9), 1u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 3u);
}

TEST(FlatCountMapTest, ZeroKeyIsAnOrdinaryKey) {
  // Open-addressing tables often reserve a sentinel key; key 0 must count.
  FlatCountMap<std::uint64_t> map;
  map[0] += 5;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(0), 5u);
}

TEST(FlatCountMapTest, GrowthPreservesEveryCount) {
  FlatCountMap<std::uint64_t> map;
  // Push well past several rehashes (kMinCapacity 16, load factor 0.7).
  for (std::uint64_t k = 0; k < 10000; ++k) map[k * 2654435761u] += k;
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.Find(k * 2654435761u), nullptr) << k;
    EXPECT_EQ(map.at(k * 2654435761u), k);
  }
}

TEST(FlatCountMapTest, SortedItemsIsAscendingAndComplete) {
  FlatCountMap<std::uint32_t> map;
  map[30] = 3;
  map[10] = 1;
  map[20] = 2;
  const auto items = map.SortedItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 10u);
  EXPECT_EQ(items[1].first, 20u);
  EXPECT_EQ(items[2].first, 30u);
  EXPECT_EQ(items[2].second, 3u);
}

TEST(FlatCountMapTest, EqualityIsOrderInsensitive) {
  FlatCountMap<std::uint64_t> a;
  FlatCountMap<std::uint64_t> b;
  b.Reserve(1000);  // different capacity, same contents
  for (std::uint64_t k = 1; k <= 50; ++k) {
    a[k] = k;
    b[51 - k] = 51 - k;
  }
  EXPECT_TRUE(a == b);
  b[99] = 1;
  EXPECT_FALSE(a == b);
}

TEST(FlatCountMapTest, FuzzParityWithUnorderedMap) {
  Rng rng(0xf1a7ULL);
  FlatCountMap<std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  // Skewed key range so the same key is hit repeatedly, like address counts.
  for (int op = 0; op < 50000; ++op) {
    const std::uint64_t key = rng.UniformInt(std::uint64_t{512});
    const std::uint64_t add = 1 + rng.UniformInt(std::uint64_t{4});
    flat[key] += add;
    reference[key] += add;
  }
  ASSERT_EQ(flat.size(), reference.size());
  for (const auto& [key, count] : reference) {
    ASSERT_NE(flat.Find(key), nullptr) << key;
    EXPECT_EQ(flat.at(key), count) << key;
  }
  std::uint64_t iterated = 0;
  for (const auto& [key, count] : flat) {
    EXPECT_EQ(reference.at(key), count);
    ++iterated;
  }
  EXPECT_EQ(iterated, reference.size());
}

}  // namespace
}  // namespace astra
