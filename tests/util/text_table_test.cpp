#include "util/text_table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace astra {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "count"});
  table.AddRow({"alpha", "12"});
  table.AddRow({"beta", "3456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3456"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable table({"k", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "2"});
  std::istringstream in(table.ToString());
  std::string header, rule, row1, row2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(rule.size(), row2.size());
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW(table.ToString());
}

TEST(RuleTest, Width) { EXPECT_EQ(Rule(10).size(), 10u); }

TEST(AsciiBarTest, Scaling) {
  EXPECT_EQ(AsciiBar(10.0, 10.0, 20).size(), 20u);
  EXPECT_EQ(AsciiBar(5.0, 10.0, 20).size(), 10u);
  EXPECT_TRUE(AsciiBar(0.0, 10.0).empty());
  EXPECT_TRUE(AsciiBar(5.0, 0.0).empty());
  // Nonzero values never round down to an empty bar.
  EXPECT_GE(AsciiBar(0.001, 100.0, 20).size(), 1u);
  // Values above max are clamped.
  EXPECT_EQ(AsciiBar(500.0, 10.0, 20).size(), 20u);
}

}  // namespace
}  // namespace astra
