file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_socket_bank_column.dir/bench_fig6_socket_bank_column.cpp.o"
  "CMakeFiles/bench_fig6_socket_bank_column.dir/bench_fig6_socket_bank_column.cpp.o.d"
  "bench_fig6_socket_bank_column"
  "bench_fig6_socket_bank_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_socket_bank_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
