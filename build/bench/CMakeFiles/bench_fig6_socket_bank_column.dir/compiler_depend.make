# Empty compiler generated dependencies file for bench_fig6_socket_bank_column.
# This may be replaced when dependencies are built.
