# Empty dependencies file for bench_fig5_per_node.
# This may be replaced when dependencies are built.
