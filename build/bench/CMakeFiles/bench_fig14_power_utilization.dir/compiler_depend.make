# Empty compiler generated dependencies file for bench_fig14_power_utilization.
# This may be replaced when dependencies are built.
