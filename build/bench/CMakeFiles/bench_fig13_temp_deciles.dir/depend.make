# Empty dependencies file for bench_fig13_temp_deciles.
# This may be replaced when dependencies are built.
