file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_temp_deciles.dir/bench_fig13_temp_deciles.cpp.o"
  "CMakeFiles/bench_fig13_temp_deciles.dir/bench_fig13_temp_deciles.cpp.o.d"
  "bench_fig13_temp_deciles"
  "bench_fig13_temp_deciles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_temp_deciles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
