file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_page_retirement.dir/bench_ablation_page_retirement.cpp.o"
  "CMakeFiles/bench_ablation_page_retirement.dir/bench_ablation_page_retirement.cpp.o.d"
  "bench_ablation_page_retirement"
  "bench_ablation_page_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_page_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
