# Empty compiler generated dependencies file for bench_ablation_page_retirement.
# This may be replaced when dependencies are built.
