file(REMOVE_RECURSE
  "CMakeFiles/bench_survival_lifetimes.dir/bench_survival_lifetimes.cpp.o"
  "CMakeFiles/bench_survival_lifetimes.dir/bench_survival_lifetimes.cpp.o.d"
  "bench_survival_lifetimes"
  "bench_survival_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_survival_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
