# Empty dependencies file for bench_survival_lifetimes.
# This may be replaced when dependencies are built.
