# Empty dependencies file for bench_fig10_11_rack_region.
# This may be replaced when dependencies are built.
