file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_rack_region.dir/bench_fig10_11_rack_region.cpp.o"
  "CMakeFiles/bench_fig10_11_rack_region.dir/bench_fig10_11_rack_region.cpp.o.d"
  "bench_fig10_11_rack_region"
  "bench_fig10_11_rack_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_rack_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
