# Empty dependencies file for bench_fig15_uncorrectable.
# This may be replaced when dependencies are built.
