file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_uncorrectable.dir/bench_fig15_uncorrectable.cpp.o"
  "CMakeFiles/bench_fig15_uncorrectable.dir/bench_fig15_uncorrectable.cpp.o.d"
  "bench_fig15_uncorrectable"
  "bench_fig15_uncorrectable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_uncorrectable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
