# Empty dependencies file for bench_fig4_fault_modes.
# This may be replaced when dependencies are built.
