file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rank_slot.dir/bench_fig7_rank_slot.cpp.o"
  "CMakeFiles/bench_fig7_rank_slot.dir/bench_fig7_rank_slot.cpp.o.d"
  "bench_fig7_rank_slot"
  "bench_fig7_rank_slot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rank_slot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
