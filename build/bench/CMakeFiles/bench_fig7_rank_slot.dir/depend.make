# Empty dependencies file for bench_fig7_rank_slot.
# This may be replaced when dependencies are built.
