file(REMOVE_RECURSE
  "CMakeFiles/bench_vendor_effects.dir/bench_vendor_effects.cpp.o"
  "CMakeFiles/bench_vendor_effects.dir/bench_vendor_effects.cpp.o.d"
  "bench_vendor_effects"
  "bench_vendor_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vendor_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
