# Empty compiler generated dependencies file for bench_vendor_effects.
# This may be replaced when dependencies are built.
