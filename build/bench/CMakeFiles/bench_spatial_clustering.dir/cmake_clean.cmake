file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_clustering.dir/bench_spatial_clustering.cpp.o"
  "CMakeFiles/bench_spatial_clustering.dir/bench_spatial_clustering.cpp.o.d"
  "bench_spatial_clustering"
  "bench_spatial_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
