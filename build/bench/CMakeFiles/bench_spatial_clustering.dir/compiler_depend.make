# Empty compiler generated dependencies file for bench_spatial_clustering.
# This may be replaced when dependencies are built.
