# Empty compiler generated dependencies file for bench_fig12_per_rack.
# This may be replaced when dependencies are built.
