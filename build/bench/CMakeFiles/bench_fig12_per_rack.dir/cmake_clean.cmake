file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_per_rack.dir/bench_fig12_per_rack.cpp.o"
  "CMakeFiles/bench_fig12_per_rack.dir/bench_fig12_per_rack.cpp.o.d"
  "bench_fig12_per_rack"
  "bench_fig12_per_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_per_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
