# Empty dependencies file for bench_ablation_log_buffer.
# This may be replaced when dependencies are built.
