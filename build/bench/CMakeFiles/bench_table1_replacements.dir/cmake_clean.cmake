file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_replacements.dir/bench_table1_replacements.cpp.o"
  "CMakeFiles/bench_table1_replacements.dir/bench_table1_replacements.cpp.o.d"
  "bench_table1_replacements"
  "bench_table1_replacements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_replacements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
