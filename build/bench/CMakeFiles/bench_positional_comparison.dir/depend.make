# Empty dependencies file for bench_positional_comparison.
# This may be replaced when dependencies are built.
