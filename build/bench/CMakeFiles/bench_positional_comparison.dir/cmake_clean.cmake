file(REMOVE_RECURSE
  "CMakeFiles/bench_positional_comparison.dir/bench_positional_comparison.cpp.o"
  "CMakeFiles/bench_positional_comparison.dir/bench_positional_comparison.cpp.o.d"
  "bench_positional_comparison"
  "bench_positional_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_positional_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
