# Empty compiler generated dependencies file for bench_fig9_temp_lookback.
# This may be replaced when dependencies are built.
