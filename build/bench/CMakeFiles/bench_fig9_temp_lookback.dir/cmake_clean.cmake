file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_temp_lookback.dir/bench_fig9_temp_lookback.cpp.o"
  "CMakeFiles/bench_fig9_temp_lookback.dir/bench_fig9_temp_lookback.cpp.o.d"
  "bench_fig9_temp_lookback"
  "bench_fig9_temp_lookback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_temp_lookback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
