# Empty dependencies file for bench_ablation_scrub.
# This may be replaced when dependencies are built.
