file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scrub.dir/bench_ablation_scrub.cpp.o"
  "CMakeFiles/bench_ablation_scrub.dir/bench_ablation_scrub.cpp.o.d"
  "bench_ablation_scrub"
  "bench_ablation_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
