file(REMOVE_RECURSE
  "libastra_bench_common.a"
)
