file(REMOVE_RECURSE
  "CMakeFiles/astra_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/astra_bench_common.dir/common/bench_common.cpp.o.d"
  "libastra_bench_common.a"
  "libastra_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
