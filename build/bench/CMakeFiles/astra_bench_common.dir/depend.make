# Empty dependencies file for astra_bench_common.
# This may be replaced when dependencies are built.
