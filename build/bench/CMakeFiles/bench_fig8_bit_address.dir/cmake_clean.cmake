file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bit_address.dir/bench_fig8_bit_address.cpp.o"
  "CMakeFiles/bench_fig8_bit_address.dir/bench_fig8_bit_address.cpp.o.d"
  "bench_fig8_bit_address"
  "bench_fig8_bit_address.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bit_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
