# Empty compiler generated dependencies file for bench_fig8_bit_address.
# This may be replaced when dependencies are built.
