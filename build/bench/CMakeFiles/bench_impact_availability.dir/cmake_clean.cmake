file(REMOVE_RECURSE
  "CMakeFiles/bench_impact_availability.dir/bench_impact_availability.cpp.o"
  "CMakeFiles/bench_impact_availability.dir/bench_impact_availability.cpp.o.d"
  "bench_impact_availability"
  "bench_impact_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impact_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
