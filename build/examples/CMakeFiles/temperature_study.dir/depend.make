# Empty dependencies file for temperature_study.
# This may be replaced when dependencies are built.
