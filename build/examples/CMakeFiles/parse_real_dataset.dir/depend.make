# Empty dependencies file for parse_real_dataset.
# This may be replaced when dependencies are built.
