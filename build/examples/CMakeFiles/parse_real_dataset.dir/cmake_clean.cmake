file(REMOVE_RECURSE
  "CMakeFiles/parse_real_dataset.dir/parse_real_dataset.cpp.o"
  "CMakeFiles/parse_real_dataset.dir/parse_real_dataset.cpp.o.d"
  "parse_real_dataset"
  "parse_real_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_real_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
