# Empty dependencies file for astra_geometry.
# This may be replaced when dependencies are built.
