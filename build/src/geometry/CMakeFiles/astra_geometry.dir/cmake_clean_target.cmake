file(REMOVE_RECURSE
  "libastra_geometry.a"
)
