file(REMOVE_RECURSE
  "CMakeFiles/astra_geometry.dir/topology.cpp.o"
  "CMakeFiles/astra_geometry.dir/topology.cpp.o.d"
  "libastra_geometry.a"
  "libastra_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
