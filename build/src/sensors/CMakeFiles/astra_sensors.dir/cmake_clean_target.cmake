file(REMOVE_RECURSE
  "libastra_sensors.a"
)
