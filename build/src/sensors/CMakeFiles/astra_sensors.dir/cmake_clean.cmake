file(REMOVE_RECURSE
  "CMakeFiles/astra_sensors.dir/environment.cpp.o"
  "CMakeFiles/astra_sensors.dir/environment.cpp.o.d"
  "CMakeFiles/astra_sensors.dir/sensor_field.cpp.o"
  "CMakeFiles/astra_sensors.dir/sensor_field.cpp.o.d"
  "CMakeFiles/astra_sensors.dir/sensor_store.cpp.o"
  "CMakeFiles/astra_sensors.dir/sensor_store.cpp.o.d"
  "CMakeFiles/astra_sensors.dir/thermal.cpp.o"
  "CMakeFiles/astra_sensors.dir/thermal.cpp.o.d"
  "CMakeFiles/astra_sensors.dir/workload.cpp.o"
  "CMakeFiles/astra_sensors.dir/workload.cpp.o.d"
  "libastra_sensors.a"
  "libastra_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
