# Empty dependencies file for astra_sensors.
# This may be replaced when dependencies are built.
