
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/environment.cpp" "src/sensors/CMakeFiles/astra_sensors.dir/environment.cpp.o" "gcc" "src/sensors/CMakeFiles/astra_sensors.dir/environment.cpp.o.d"
  "/root/repo/src/sensors/sensor_field.cpp" "src/sensors/CMakeFiles/astra_sensors.dir/sensor_field.cpp.o" "gcc" "src/sensors/CMakeFiles/astra_sensors.dir/sensor_field.cpp.o.d"
  "/root/repo/src/sensors/sensor_store.cpp" "src/sensors/CMakeFiles/astra_sensors.dir/sensor_store.cpp.o" "gcc" "src/sensors/CMakeFiles/astra_sensors.dir/sensor_store.cpp.o.d"
  "/root/repo/src/sensors/thermal.cpp" "src/sensors/CMakeFiles/astra_sensors.dir/thermal.cpp.o" "gcc" "src/sensors/CMakeFiles/astra_sensors.dir/thermal.cpp.o.d"
  "/root/repo/src/sensors/workload.cpp" "src/sensors/CMakeFiles/astra_sensors.dir/workload.cpp.o" "gcc" "src/sensors/CMakeFiles/astra_sensors.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
