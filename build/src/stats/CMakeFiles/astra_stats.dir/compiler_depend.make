# Empty compiler generated dependencies file for astra_stats.
# This may be replaced when dependencies are built.
