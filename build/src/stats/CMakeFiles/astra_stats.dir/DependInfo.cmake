
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/astra_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/chi_square.cpp" "src/stats/CMakeFiles/astra_stats.dir/chi_square.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/chi_square.cpp.o.d"
  "/root/repo/src/stats/deciles.cpp" "src/stats/CMakeFiles/astra_stats.dir/deciles.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/deciles.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/astra_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/astra_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/linear_fit.cpp" "src/stats/CMakeFiles/astra_stats.dir/linear_fit.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/linear_fit.cpp.o.d"
  "/root/repo/src/stats/power_law.cpp" "src/stats/CMakeFiles/astra_stats.dir/power_law.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/power_law.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/astra_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "src/stats/CMakeFiles/astra_stats.dir/survival.cpp.o" "gcc" "src/stats/CMakeFiles/astra_stats.dir/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
