file(REMOVE_RECURSE
  "libastra_stats.a"
)
