file(REMOVE_RECURSE
  "CMakeFiles/astra_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/astra_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/astra_stats.dir/chi_square.cpp.o"
  "CMakeFiles/astra_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/astra_stats.dir/deciles.cpp.o"
  "CMakeFiles/astra_stats.dir/deciles.cpp.o.d"
  "CMakeFiles/astra_stats.dir/descriptive.cpp.o"
  "CMakeFiles/astra_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/astra_stats.dir/histogram.cpp.o"
  "CMakeFiles/astra_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/astra_stats.dir/linear_fit.cpp.o"
  "CMakeFiles/astra_stats.dir/linear_fit.cpp.o.d"
  "CMakeFiles/astra_stats.dir/power_law.cpp.o"
  "CMakeFiles/astra_stats.dir/power_law.cpp.o.d"
  "CMakeFiles/astra_stats.dir/special.cpp.o"
  "CMakeFiles/astra_stats.dir/special.cpp.o.d"
  "CMakeFiles/astra_stats.dir/survival.cpp.o"
  "CMakeFiles/astra_stats.dir/survival.cpp.o.d"
  "libastra_stats.a"
  "libastra_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
