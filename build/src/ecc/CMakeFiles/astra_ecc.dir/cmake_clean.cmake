file(REMOVE_RECURSE
  "CMakeFiles/astra_ecc.dir/adjudicate.cpp.o"
  "CMakeFiles/astra_ecc.dir/adjudicate.cpp.o.d"
  "CMakeFiles/astra_ecc.dir/chipkill.cpp.o"
  "CMakeFiles/astra_ecc.dir/chipkill.cpp.o.d"
  "CMakeFiles/astra_ecc.dir/gf16.cpp.o"
  "CMakeFiles/astra_ecc.dir/gf16.cpp.o.d"
  "CMakeFiles/astra_ecc.dir/gf256.cpp.o"
  "CMakeFiles/astra_ecc.dir/gf256.cpp.o.d"
  "CMakeFiles/astra_ecc.dir/secded.cpp.o"
  "CMakeFiles/astra_ecc.dir/secded.cpp.o.d"
  "libastra_ecc.a"
  "libastra_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
