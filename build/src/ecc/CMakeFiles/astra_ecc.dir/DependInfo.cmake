
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/adjudicate.cpp" "src/ecc/CMakeFiles/astra_ecc.dir/adjudicate.cpp.o" "gcc" "src/ecc/CMakeFiles/astra_ecc.dir/adjudicate.cpp.o.d"
  "/root/repo/src/ecc/chipkill.cpp" "src/ecc/CMakeFiles/astra_ecc.dir/chipkill.cpp.o" "gcc" "src/ecc/CMakeFiles/astra_ecc.dir/chipkill.cpp.o.d"
  "/root/repo/src/ecc/gf16.cpp" "src/ecc/CMakeFiles/astra_ecc.dir/gf16.cpp.o" "gcc" "src/ecc/CMakeFiles/astra_ecc.dir/gf16.cpp.o.d"
  "/root/repo/src/ecc/gf256.cpp" "src/ecc/CMakeFiles/astra_ecc.dir/gf256.cpp.o" "gcc" "src/ecc/CMakeFiles/astra_ecc.dir/gf256.cpp.o.d"
  "/root/repo/src/ecc/secded.cpp" "src/ecc/CMakeFiles/astra_ecc.dir/secded.cpp.o" "gcc" "src/ecc/CMakeFiles/astra_ecc.dir/secded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
