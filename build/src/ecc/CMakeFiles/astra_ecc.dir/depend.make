# Empty dependencies file for astra_ecc.
# This may be replaced when dependencies are built.
