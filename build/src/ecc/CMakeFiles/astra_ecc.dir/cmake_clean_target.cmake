file(REMOVE_RECURSE
  "libastra_ecc.a"
)
