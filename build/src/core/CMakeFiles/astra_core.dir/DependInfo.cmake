
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/burstiness.cpp" "src/core/CMakeFiles/astra_core.dir/burstiness.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/burstiness.cpp.o.d"
  "/root/repo/src/core/coalesce.cpp" "src/core/CMakeFiles/astra_core.dir/coalesce.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/coalesce.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/astra_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/impact.cpp" "src/core/CMakeFiles/astra_core.dir/impact.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/impact.cpp.o.d"
  "/root/repo/src/core/lifetime.cpp" "src/core/CMakeFiles/astra_core.dir/lifetime.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/lifetime.cpp.o.d"
  "/root/repo/src/core/positional.cpp" "src/core/CMakeFiles/astra_core.dir/positional.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/positional.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/astra_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/replacement_analysis.cpp" "src/core/CMakeFiles/astra_core.dir/replacement_analysis.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/replacement_analysis.cpp.o.d"
  "/root/repo/src/core/spatial.cpp" "src/core/CMakeFiles/astra_core.dir/spatial.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/spatial.cpp.o.d"
  "/root/repo/src/core/temperature.cpp" "src/core/CMakeFiles/astra_core.dir/temperature.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/temperature.cpp.o.d"
  "/root/repo/src/core/temporal.cpp" "src/core/CMakeFiles/astra_core.dir/temporal.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/temporal.cpp.o.d"
  "/root/repo/src/core/uncorrectable.cpp" "src/core/CMakeFiles/astra_core.dir/uncorrectable.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/uncorrectable.cpp.o.d"
  "/root/repo/src/core/vendor_analysis.cpp" "src/core/CMakeFiles/astra_core.dir/vendor_analysis.cpp.o" "gcc" "src/core/CMakeFiles/astra_core.dir/vendor_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/astra_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/astra_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/astra_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/astra_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/replace/CMakeFiles/astra_replace.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/astra_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
