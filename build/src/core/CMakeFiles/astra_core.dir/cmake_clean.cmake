file(REMOVE_RECURSE
  "CMakeFiles/astra_core.dir/burstiness.cpp.o"
  "CMakeFiles/astra_core.dir/burstiness.cpp.o.d"
  "CMakeFiles/astra_core.dir/coalesce.cpp.o"
  "CMakeFiles/astra_core.dir/coalesce.cpp.o.d"
  "CMakeFiles/astra_core.dir/dataset.cpp.o"
  "CMakeFiles/astra_core.dir/dataset.cpp.o.d"
  "CMakeFiles/astra_core.dir/impact.cpp.o"
  "CMakeFiles/astra_core.dir/impact.cpp.o.d"
  "CMakeFiles/astra_core.dir/lifetime.cpp.o"
  "CMakeFiles/astra_core.dir/lifetime.cpp.o.d"
  "CMakeFiles/astra_core.dir/positional.cpp.o"
  "CMakeFiles/astra_core.dir/positional.cpp.o.d"
  "CMakeFiles/astra_core.dir/predictor.cpp.o"
  "CMakeFiles/astra_core.dir/predictor.cpp.o.d"
  "CMakeFiles/astra_core.dir/replacement_analysis.cpp.o"
  "CMakeFiles/astra_core.dir/replacement_analysis.cpp.o.d"
  "CMakeFiles/astra_core.dir/spatial.cpp.o"
  "CMakeFiles/astra_core.dir/spatial.cpp.o.d"
  "CMakeFiles/astra_core.dir/temperature.cpp.o"
  "CMakeFiles/astra_core.dir/temperature.cpp.o.d"
  "CMakeFiles/astra_core.dir/temporal.cpp.o"
  "CMakeFiles/astra_core.dir/temporal.cpp.o.d"
  "CMakeFiles/astra_core.dir/uncorrectable.cpp.o"
  "CMakeFiles/astra_core.dir/uncorrectable.cpp.o.d"
  "CMakeFiles/astra_core.dir/vendor_analysis.cpp.o"
  "CMakeFiles/astra_core.dir/vendor_analysis.cpp.o.d"
  "libastra_core.a"
  "libastra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
