# Empty dependencies file for astra_util.
# This may be replaced when dependencies are built.
