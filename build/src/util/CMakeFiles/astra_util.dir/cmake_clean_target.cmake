file(REMOVE_RECURSE
  "libastra_util.a"
)
