file(REMOVE_RECURSE
  "CMakeFiles/astra_util.dir/file_io.cpp.o"
  "CMakeFiles/astra_util.dir/file_io.cpp.o.d"
  "CMakeFiles/astra_util.dir/parallel.cpp.o"
  "CMakeFiles/astra_util.dir/parallel.cpp.o.d"
  "CMakeFiles/astra_util.dir/rng.cpp.o"
  "CMakeFiles/astra_util.dir/rng.cpp.o.d"
  "CMakeFiles/astra_util.dir/sim_time.cpp.o"
  "CMakeFiles/astra_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/astra_util.dir/strings.cpp.o"
  "CMakeFiles/astra_util.dir/strings.cpp.o.d"
  "CMakeFiles/astra_util.dir/text_table.cpp.o"
  "CMakeFiles/astra_util.dir/text_table.cpp.o.d"
  "libastra_util.a"
  "libastra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
