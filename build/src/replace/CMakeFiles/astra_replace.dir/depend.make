# Empty dependencies file for astra_replace.
# This may be replaced when dependencies are built.
