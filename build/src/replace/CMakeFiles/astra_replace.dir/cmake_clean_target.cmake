file(REMOVE_RECURSE
  "libastra_replace.a"
)
