file(REMOVE_RECURSE
  "CMakeFiles/astra_replace.dir/replacement_sim.cpp.o"
  "CMakeFiles/astra_replace.dir/replacement_sim.cpp.o.d"
  "libastra_replace.a"
  "libastra_replace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_replace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
