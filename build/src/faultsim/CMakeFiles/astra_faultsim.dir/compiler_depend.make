# Empty compiler generated dependencies file for astra_faultsim.
# This may be replaced when dependencies are built.
