file(REMOVE_RECURSE
  "libastra_faultsim.a"
)
