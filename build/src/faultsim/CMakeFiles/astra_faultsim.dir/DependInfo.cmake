
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/fault_model.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/fault_model.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/fault_model.cpp.o.d"
  "/root/repo/src/faultsim/fault_modes.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/fault_modes.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/fault_modes.cpp.o.d"
  "/root/repo/src/faultsim/fleet.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/fleet.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/fleet.cpp.o.d"
  "/root/repo/src/faultsim/injector.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/injector.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/injector.cpp.o.d"
  "/root/repo/src/faultsim/log_buffer.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/log_buffer.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/log_buffer.cpp.o.d"
  "/root/repo/src/faultsim/retirement.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/retirement.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/retirement.cpp.o.d"
  "/root/repo/src/faultsim/scrubber.cpp" "src/faultsim/CMakeFiles/astra_faultsim.dir/scrubber.cpp.o" "gcc" "src/faultsim/CMakeFiles/astra_faultsim.dir/scrubber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/astra_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/astra_logs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
