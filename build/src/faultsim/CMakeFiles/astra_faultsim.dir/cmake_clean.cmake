file(REMOVE_RECURSE
  "CMakeFiles/astra_faultsim.dir/fault_model.cpp.o"
  "CMakeFiles/astra_faultsim.dir/fault_model.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/fault_modes.cpp.o"
  "CMakeFiles/astra_faultsim.dir/fault_modes.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/fleet.cpp.o"
  "CMakeFiles/astra_faultsim.dir/fleet.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/injector.cpp.o"
  "CMakeFiles/astra_faultsim.dir/injector.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/log_buffer.cpp.o"
  "CMakeFiles/astra_faultsim.dir/log_buffer.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/retirement.cpp.o"
  "CMakeFiles/astra_faultsim.dir/retirement.cpp.o.d"
  "CMakeFiles/astra_faultsim.dir/scrubber.cpp.o"
  "CMakeFiles/astra_faultsim.dir/scrubber.cpp.o.d"
  "libastra_faultsim.a"
  "libastra_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
