file(REMOVE_RECURSE
  "libastra_logs.a"
)
