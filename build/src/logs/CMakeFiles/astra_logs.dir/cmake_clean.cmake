file(REMOVE_RECURSE
  "CMakeFiles/astra_logs.dir/records.cpp.o"
  "CMakeFiles/astra_logs.dir/records.cpp.o.d"
  "CMakeFiles/astra_logs.dir/serialize.cpp.o"
  "CMakeFiles/astra_logs.dir/serialize.cpp.o.d"
  "libastra_logs.a"
  "libastra_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
