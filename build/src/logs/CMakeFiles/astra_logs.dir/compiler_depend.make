# Empty compiler generated dependencies file for astra_logs.
# This may be replaced when dependencies are built.
