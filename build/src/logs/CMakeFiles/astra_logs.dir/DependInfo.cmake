
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/records.cpp" "src/logs/CMakeFiles/astra_logs.dir/records.cpp.o" "gcc" "src/logs/CMakeFiles/astra_logs.dir/records.cpp.o.d"
  "/root/repo/src/logs/serialize.cpp" "src/logs/CMakeFiles/astra_logs.dir/serialize.cpp.o" "gcc" "src/logs/CMakeFiles/astra_logs.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
