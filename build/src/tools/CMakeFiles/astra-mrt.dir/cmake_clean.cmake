file(REMOVE_RECURSE
  "CMakeFiles/astra-mrt.dir/astra_mrt_cli.cpp.o"
  "CMakeFiles/astra-mrt.dir/astra_mrt_cli.cpp.o.d"
  "astra-mrt"
  "astra-mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra-mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
