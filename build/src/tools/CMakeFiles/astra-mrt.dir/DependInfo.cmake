
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/astra_mrt_cli.cpp" "src/tools/CMakeFiles/astra-mrt.dir/astra_mrt_cli.cpp.o" "gcc" "src/tools/CMakeFiles/astra-mrt.dir/astra_mrt_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/astra_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/astra_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/astra_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/astra_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/replace/CMakeFiles/astra_replace.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/astra_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
