# Empty dependencies file for astra-mrt.
# This may be replaced when dependencies are built.
