# CMake generated Testfile for 
# Source directory: /root/repo/src/tools
# Build directory: /root/repo/build/src/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_report "/root/repo/build/src/tools/astra-mrt" "report" "--nodes=36" "--seed=3")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;7;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/src/tools/astra-mrt" "help")
set_tests_properties(cli_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;8;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "bash" "-c" "set -e; d=\$(mktemp -d);              /root/repo/build/src/tools/astra-mrt simulate --out=\$d --nodes=36 --seed=4 --sensor-stride=720;              /root/repo/build/src/tools/astra-mrt analyze \$d | grep -q 'coalesced faults';              rm -rf \$d")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;9;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
