file(REMOVE_RECURSE
  "CMakeFiles/replace_tests.dir/replace/replacement_test.cpp.o"
  "CMakeFiles/replace_tests.dir/replace/replacement_test.cpp.o.d"
  "replace_tests"
  "replace_tests.pdb"
  "replace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
