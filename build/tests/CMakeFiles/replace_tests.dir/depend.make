# Empty dependencies file for replace_tests.
# This may be replaced when dependencies are built.
