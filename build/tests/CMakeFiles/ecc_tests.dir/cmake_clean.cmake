file(REMOVE_RECURSE
  "CMakeFiles/ecc_tests.dir/ecc/adjudicate_test.cpp.o"
  "CMakeFiles/ecc_tests.dir/ecc/adjudicate_test.cpp.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/chipkill_test.cpp.o"
  "CMakeFiles/ecc_tests.dir/ecc/chipkill_test.cpp.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/ecc_property_test.cpp.o"
  "CMakeFiles/ecc_tests.dir/ecc/ecc_property_test.cpp.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/gf_test.cpp.o"
  "CMakeFiles/ecc_tests.dir/ecc/gf_test.cpp.o.d"
  "CMakeFiles/ecc_tests.dir/ecc/secded_test.cpp.o"
  "CMakeFiles/ecc_tests.dir/ecc/secded_test.cpp.o.d"
  "ecc_tests"
  "ecc_tests.pdb"
  "ecc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
