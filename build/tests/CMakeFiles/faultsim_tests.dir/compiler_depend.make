# Empty compiler generated dependencies file for faultsim_tests.
# This may be replaced when dependencies are built.
