file(REMOVE_RECURSE
  "CMakeFiles/faultsim_tests.dir/faultsim/fleet_test.cpp.o"
  "CMakeFiles/faultsim_tests.dir/faultsim/fleet_test.cpp.o.d"
  "CMakeFiles/faultsim_tests.dir/faultsim/injector_test.cpp.o"
  "CMakeFiles/faultsim_tests.dir/faultsim/injector_test.cpp.o.d"
  "CMakeFiles/faultsim_tests.dir/faultsim/log_buffer_test.cpp.o"
  "CMakeFiles/faultsim_tests.dir/faultsim/log_buffer_test.cpp.o.d"
  "CMakeFiles/faultsim_tests.dir/faultsim/retirement_test.cpp.o"
  "CMakeFiles/faultsim_tests.dir/faultsim/retirement_test.cpp.o.d"
  "CMakeFiles/faultsim_tests.dir/faultsim/scrubber_test.cpp.o"
  "CMakeFiles/faultsim_tests.dir/faultsim/scrubber_test.cpp.o.d"
  "faultsim_tests"
  "faultsim_tests.pdb"
  "faultsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
