file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/bootstrap_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/bootstrap_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/chi_square_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/chi_square_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/deciles_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/deciles_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/linear_fit_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/linear_fit_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/power_law_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/power_law_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/special_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/special_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/survival_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/survival_test.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
