
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/burstiness_test.cpp" "tests/CMakeFiles/core_tests.dir/core/burstiness_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/burstiness_test.cpp.o.d"
  "/root/repo/tests/core/coalesce_property_test.cpp" "tests/CMakeFiles/core_tests.dir/core/coalesce_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/coalesce_property_test.cpp.o.d"
  "/root/repo/tests/core/coalesce_test.cpp" "tests/CMakeFiles/core_tests.dir/core/coalesce_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/coalesce_test.cpp.o.d"
  "/root/repo/tests/core/dataset_test.cpp" "tests/CMakeFiles/core_tests.dir/core/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dataset_test.cpp.o.d"
  "/root/repo/tests/core/edge_cases_test.cpp" "tests/CMakeFiles/core_tests.dir/core/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/edge_cases_test.cpp.o.d"
  "/root/repo/tests/core/impact_test.cpp" "tests/CMakeFiles/core_tests.dir/core/impact_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/impact_test.cpp.o.d"
  "/root/repo/tests/core/lifetime_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lifetime_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lifetime_test.cpp.o.d"
  "/root/repo/tests/core/positional_test.cpp" "tests/CMakeFiles/core_tests.dir/core/positional_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/positional_test.cpp.o.d"
  "/root/repo/tests/core/predictor_test.cpp" "tests/CMakeFiles/core_tests.dir/core/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/predictor_test.cpp.o.d"
  "/root/repo/tests/core/replacement_analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/replacement_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/replacement_analysis_test.cpp.o.d"
  "/root/repo/tests/core/spatial_test.cpp" "tests/CMakeFiles/core_tests.dir/core/spatial_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/spatial_test.cpp.o.d"
  "/root/repo/tests/core/temperature_test.cpp" "tests/CMakeFiles/core_tests.dir/core/temperature_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/temperature_test.cpp.o.d"
  "/root/repo/tests/core/temporal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/temporal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/temporal_test.cpp.o.d"
  "/root/repo/tests/core/uncorrectable_test.cpp" "tests/CMakeFiles/core_tests.dir/core/uncorrectable_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/uncorrectable_test.cpp.o.d"
  "/root/repo/tests/core/vendor_analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/vendor_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/vendor_analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/astra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/astra_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/astra_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/astra_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/astra_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/replace/CMakeFiles/astra_replace.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/astra_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/astra_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
