file(REMOVE_RECURSE
  "CMakeFiles/geometry_tests.dir/geometry/topology_test.cpp.o"
  "CMakeFiles/geometry_tests.dir/geometry/topology_test.cpp.o.d"
  "geometry_tests"
  "geometry_tests.pdb"
  "geometry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
