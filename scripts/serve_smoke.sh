#!/usr/bin/env bash
# End-to-end smoke test for the astra_serve monitoring daemon.
#
# Generates a small fleet with examples/serve_fleet, batch-analyzes the
# combined dataset as the oracle, then runs the daemon for real: wait for it
# to quiesce, assert /fleet/report is byte-identical to the batch report,
# SIGTERM it, assert a clean exit with a checkpoint manifest on disk, delete
# the primary logs, and prove a second daemon restores the identical report
# from the checkpoint alone.
#
# Usage: serve_smoke.sh BUILD_DIR
set -euo pipefail

build_dir=${1:?usage: serve_smoke.sh BUILD_DIR}
serve_fleet=$build_dir/examples/serve_fleet
astra_mrt=$build_dir/src/tools/astra-mrt
astra_serve=$build_dir/src/tools/astra_serve

for binary in "$serve_fleet" "$astra_mrt" "$astra_serve"; do
  if [ ! -x "$binary" ]; then
    echo "serve-smoke: missing binary $binary" >&2
    exit 2
  fi
done

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

topology="--racks=2 --nodes-per-rack=6"

echo "serve-smoke: generating fleet + batch oracle"
"$serve_fleet" "$work/fleet" $topology --seed=42 > /dev/null
"$astra_mrt" analyze "$work/fleet/combined" > "$work/batch.txt"

echo "serve-smoke: starting daemon"
"$astra_serve" "$work/fleet" $topology \
  --poll-ms=50 --merge-ms=100 --quiesce-ms=300 \
  --port-file="$work/port" --checkpoint-dir="$work/ckp" \
  2> "$work/serve.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
  [ -s "$work/port" ] && break
  sleep 0.1
done
if [ ! -s "$work/port" ]; then
  echo "serve-smoke: daemon never wrote its port file" >&2
  cat "$work/serve.log" >&2
  exit 1
fi
port=$(cat "$work/port")
base="http://127.0.0.1:$port"

echo "serve-smoke: waiting for quiesce on port $port"
quiesced=0
for _ in $(seq 1 300); do
  if "$astra_serve" get "$base/stats" 2>/dev/null \
      | grep -q '"quiesced": true'; then
    quiesced=1
    break
  fi
  sleep 0.1
done
if [ "$quiesced" -ne 1 ]; then
  echo "serve-smoke: daemon never quiesced" >&2
  cat "$work/serve.log" >&2
  exit 1
fi

"$astra_serve" get "$base/healthz" | grep -qx "ok"
"$astra_serve" get "$base/fleet/report" > "$work/served.txt"
cmp "$work/batch.txt" "$work/served.txt"
echo "serve-smoke: /fleet/report is byte-identical to batch analyze"

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
echo "serve-smoke: daemon exited cleanly on SIGTERM"

if [ ! -f "$work/ckp/manifest.ckp" ]; then
  echo "serve-smoke: no checkpoint manifest after shutdown" >&2
  exit 1
fi

echo "serve-smoke: deleting primary logs, restoring from checkpoint"
rm "$work"/fleet/node-*/memory_errors.tsv "$work"/fleet/node-*/het_events.tsv
"$astra_serve" "$work/fleet" $topology --drain \
  --checkpoint-dir="$work/ckp" > "$work/restored.txt"
cmp "$work/batch.txt" "$work/restored.txt"

echo "serve-smoke: OK (live report, clean shutdown, checkpoint restore)"
