#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced BENCH_*.json sweeps against the baselines committed
at the repo root and fails (exit 1) when any gated throughput metric regresses
by more than the tolerance (default 15%).

Gated metrics:
  BENCH_ingest.json  parse_only_mb_per_s (top level) and per-thread mb_per_s
                     for rows that are not oversubscribed (an oversubscribed
                     row measures contention on the runner, not the code)
  BENCH_engine.json  records_per_s per driver (serial / merge_N /
                     observe_only / stream_replay)
  BENCH_stream.json  records_per_s per pipeline (batch / stream_replay /
                     stream_per_N)

Faster-than-baseline is never an error: the gate is one-sided.  A metric that
exists in the baseline but is missing from the fresh run fails the gate (a
silently dropped lane would otherwise hide a regression forever); new lanes in
the fresh run are ignored until their baseline is committed.

Usage:
  bench_gate.py --baseline-dir REPO_ROOT --fresh-dir BUILD_DIR [--tolerance 0.15]
  bench_gate.py --self-test --baseline-dir REPO_ROOT

--self-test fabricates a 20% slowdown from the committed baselines and asserts
the gate trips on it, so CI proves the gate can actually fail.
"""

import argparse
import copy
import json
import os
import sys

DEFAULT_TOLERANCE = 0.15
BENCH_FILES = ("BENCH_ingest.json", "BENCH_engine.json", "BENCH_stream.json")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gated_metrics(name, doc):
    """Flatten one sweep document into {metric_name: value}."""
    metrics = {}
    if name == "BENCH_ingest.json":
        if "parse_only_mb_per_s" in doc:
            metrics["parse_only_mb_per_s"] = doc["parse_only_mb_per_s"]
        for row in doc.get("sweep", []):
            if row.get("oversubscribed", False):
                continue
            threads = row.get("threads_requested", row.get("threads"))
            metrics["ingest_mb_per_s[threads=%s]" % threads] = row["mb_per_s"]
    elif name == "BENCH_engine.json":
        for row in doc.get("sweep", []):
            metrics["engine_records_per_s[%s]" % row["driver"]] = row[
                "records_per_s"
            ]
    elif name == "BENCH_stream.json":
        for row in doc.get("sweep", []):
            metrics["stream_records_per_s[%s]" % row["pipeline"]] = row[
                "records_per_s"
            ]
    return metrics


def compare(baseline_docs, fresh_docs, tolerance):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    for name, baseline in baseline_docs.items():
        fresh = fresh_docs.get(name)
        if fresh is None:
            failures.append("%s: fresh run produced no file" % name)
            continue
        base_metrics = gated_metrics(name, baseline)
        fresh_metrics = gated_metrics(name, fresh)
        for metric, base_value in sorted(base_metrics.items()):
            if base_value <= 0:
                continue  # degenerate baseline carries no information
            if metric not in fresh_metrics:
                failures.append(
                    "%s: %s missing from fresh run (baseline %.4g)"
                    % (name, metric, base_value)
                )
                continue
            fresh_value = fresh_metrics[metric]
            floor = base_value * (1.0 - tolerance)
            if fresh_value < floor:
                failures.append(
                    "%s: %s regressed %.1f%% (baseline %.4g, fresh %.4g, "
                    "floor %.4g at %.0f%% tolerance)"
                    % (
                        name,
                        metric,
                        100.0 * (1.0 - fresh_value / base_value),
                        base_value,
                        fresh_value,
                        floor,
                        100.0 * tolerance,
                    )
                )
    return failures


def load_dir(directory, required):
    docs = {}
    for name in BENCH_FILES:
        path = os.path.join(directory, name)
        if os.path.exists(path):
            docs[name] = load(path)
        elif required:
            print("bench-gate: missing %s" % path, file=sys.stderr)
            sys.exit(2)
    return docs


def scale_doc(doc, factor):
    """Fabricate a uniformly slower copy of one sweep document."""
    slowed = copy.deepcopy(doc)
    for key in ("parse_only_mb_per_s", "parse_only_records_per_s"):
        if key in slowed:
            slowed[key] *= factor
    for row in slowed.get("sweep", []):
        for key in ("mb_per_s", "records_per_s"):
            if key in row:
                row[key] *= factor
    return slowed


def self_test(baseline_docs, tolerance):
    """Prove the gate trips on a synthetic 20% slowdown and passes on equal."""
    if not baseline_docs:
        print("bench-gate self-test: no baselines to test", file=sys.stderr)
        return 2

    equal = compare(baseline_docs, copy.deepcopy(baseline_docs), tolerance)
    if equal:
        print(
            "bench-gate self-test FAILED: identical run reported regressions:",
            file=sys.stderr,
        )
        for line in equal:
            print("  " + line, file=sys.stderr)
        return 1

    slowed = {
        name: scale_doc(doc, 0.80) for name, doc in baseline_docs.items()
    }
    tripped = compare(baseline_docs, slowed, tolerance)
    if not tripped:
        print(
            "bench-gate self-test FAILED: 20%% synthetic slowdown passed the "
            "gate at %.0f%% tolerance" % (100.0 * tolerance),
            file=sys.stderr,
        )
        return 1

    print(
        "bench-gate self-test OK: identical run passes, 20%% slowdown trips "
        "%d metric(s), e.g.:" % len(tripped)
    )
    print("  " + tripped[0])
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--fresh-dir")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    baseline_docs = load_dir(args.baseline_dir, required=False)
    if not baseline_docs:
        print(
            "bench-gate: no BENCH_*.json baselines in %s" % args.baseline_dir,
            file=sys.stderr,
        )
        return 2

    if args.self_test:
        return self_test(baseline_docs, args.tolerance)

    if not args.fresh_dir:
        parser.error("--fresh-dir is required unless --self-test")
    fresh_docs = load_dir(args.fresh_dir, required=False)
    failures = compare(baseline_docs, fresh_docs, args.tolerance)
    if failures:
        print("bench-gate: FAIL", file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 1

    total = sum(len(gated_metrics(n, d)) for n, d in baseline_docs.items())
    print(
        "bench-gate: OK (%d metric(s) within %.0f%% of baseline)"
        % (total, 100.0 * args.tolerance)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
