#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced BENCH_*.json sweeps against the baselines committed
at the repo root and fails (exit 1) when any gated throughput metric regresses
by more than the tolerance (default 15%).

Gated metrics:
  BENCH_ingest.json  parse_only_mb_per_s (top level) and per-thread mb_per_s
                     for rows that are not oversubscribed (an oversubscribed
                     row measures contention on the runner, not the code)
  BENCH_engine.json  records_per_s per driver (serial / merge_N /
                     observe_only / stream_replay)
  BENCH_stream.json  records_per_s per pipeline (batch / stream_replay /
                     stream_per_N)
  BENCH_campaign.json  trials_per_s for the in_memory lane only (the
                     disk_roundtrip lane measures the runner's filesystem,
                     not the code; it is reported for the speedup headline
                     but not gated)
  BENCH_serve.json   ingest_records_per_s and quiesced_qps per stream count,
                     at a wider 50% tolerance: the serve bench is a
                     multi-threaded load test, so its wall-clock rates are
                     contention-dominated on a shared runner — the wide gate
                     catches a collapse, not drift.  The live query_qps lane
                     is reported for humans but not gated (it measures the
                     runner's scheduler more than the code).

Faster-than-baseline is never an error: the gate is one-sided.  A metric that
exists in the baseline but is missing from the fresh run fails the gate (a
silently dropped lane would otherwise hide a regression forever).  A metric
that exists in the fresh run but not in the committed baseline ALSO fails,
with a message naming the lane — commit a refreshed baseline to adopt it.  A
whole fresh FILE with no committed baseline (a brand-new bench on first
landing) is skipped with a warning instead: the baseline lands in the same PR
or the next one, and until then there is nothing to compare against.
Malformed sweep rows (missing keys) are reported as gate failures, never as
tracebacks.

Usage:
  bench_gate.py --baseline-dir REPO_ROOT --fresh-dir BUILD_DIR [--tolerance 0.15]
  bench_gate.py --self-test --baseline-dir REPO_ROOT

--self-test fabricates a 20% slowdown from the committed baselines and asserts
the gate trips on it, so CI proves the gate can actually fail.
"""

import argparse
import copy
import json
import os
import sys

DEFAULT_TOLERANCE = 0.15
BENCH_FILES = (
    "BENCH_ingest.json",
    "BENCH_engine.json",
    "BENCH_stream.json",
    "BENCH_serve.json",
    "BENCH_campaign.json",
)
# Per-file tolerance overrides (the effective tolerance is the larger of the
# CLI value and this).  See the module docstring for the serve rationale.
FILE_TOLERANCE = {"BENCH_serve.json": 0.50}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gated_metrics(name, doc, malformed=None):
    """Flatten one sweep document into {metric_name: value}.

    Rows missing an expected key are skipped and recorded in `malformed`
    (when given) so the caller can fail loudly instead of raising KeyError.
    """

    def take(row, key, metric_name):
        value = row.get(key)
        if value is None and malformed is not None:
            malformed.append("%s: row %r has no %r" % (name, metric_name, key))
        return value

    metrics = {}
    if name == "BENCH_ingest.json":
        if "parse_only_mb_per_s" in doc:
            metrics["parse_only_mb_per_s"] = doc["parse_only_mb_per_s"]
        for row in doc.get("sweep", []):
            if row.get("oversubscribed", False):
                continue
            threads = row.get("threads_requested", row.get("threads"))
            value = take(row, "mb_per_s", "threads=%s" % threads)
            if value is not None:
                metrics["ingest_mb_per_s[threads=%s]" % threads] = value
    elif name == "BENCH_engine.json":
        for row in doc.get("sweep", []):
            driver = row.get("driver", "?")
            value = take(row, "records_per_s", driver)
            if value is not None:
                metrics["engine_records_per_s[%s]" % driver] = value
    elif name == "BENCH_stream.json":
        for row in doc.get("sweep", []):
            pipeline = row.get("pipeline", "?")
            value = take(row, "records_per_s", pipeline)
            if value is not None:
                metrics["stream_records_per_s[%s]" % pipeline] = value
    elif name == "BENCH_campaign.json":
        for row in doc.get("sweep", []):
            if row.get("lane") != "in_memory":
                continue
            value = take(row, "trials_per_s", "in_memory")
            if value is not None:
                metrics["campaign_trials_per_s[in_memory]"] = value
    elif name == "BENCH_serve.json":
        for row in doc.get("sweep", []):
            streams = row.get("streams", "?")
            for key in ("ingest_records_per_s", "quiesced_qps"):
                value = take(row, key, "streams=%s" % streams)
                if value is not None:
                    metrics["serve_%s[streams=%s]" % (key, streams)] = value
    return metrics


def compare(baseline_docs, fresh_docs, tolerance):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    for name, baseline in baseline_docs.items():
        fresh = fresh_docs.get(name)
        if fresh is None:
            failures.append("%s: fresh run produced no file" % name)
            continue
        file_tolerance = max(tolerance, FILE_TOLERANCE.get(name, 0.0))
        base_metrics = gated_metrics(name, baseline, malformed=failures)
        fresh_metrics = gated_metrics(name, fresh, malformed=failures)
        for metric, base_value in sorted(base_metrics.items()):
            if base_value <= 0:
                continue  # degenerate baseline carries no information
            if metric not in fresh_metrics:
                failures.append(
                    "%s: %s missing from fresh run (baseline %.4g)"
                    % (name, metric, base_value)
                )
                continue
            fresh_value = fresh_metrics[metric]
            floor = base_value * (1.0 - file_tolerance)
            if fresh_value < floor:
                failures.append(
                    "%s: %s regressed %.1f%% (baseline %.4g, fresh %.4g, "
                    "floor %.4g at %.0f%% tolerance)"
                    % (
                        name,
                        metric,
                        100.0 * (1.0 - fresh_value / base_value),
                        base_value,
                        fresh_value,
                        floor,
                        100.0 * file_tolerance,
                    )
                )
        # A lane only the candidate has is a gate hole, not a freebie: it
        # would run ungated forever if we silently ignored it.
        for metric in sorted(set(fresh_metrics) - set(base_metrics)):
            failures.append(
                "%s: %s exists in the fresh run but not in the committed "
                "baseline — commit a refreshed %s to adopt the new lane"
                % (name, metric, name)
            )
    # A whole new bench file has nothing to compare against yet: warn, don't
    # fail, so a brand-new bench and its baseline can land in one PR.
    for name in sorted(set(fresh_docs) - set(baseline_docs)):
        print(
            "bench-gate: WARNING: %s has no committed baseline yet — "
            "skipping it (commit it to the repo root to arm the gate)" % name,
            file=sys.stderr,
        )
    return failures


def load_dir(directory, required):
    docs = {}
    for name in BENCH_FILES:
        path = os.path.join(directory, name)
        if os.path.exists(path):
            docs[name] = load(path)
        elif required:
            print("bench-gate: missing %s" % path, file=sys.stderr)
            sys.exit(2)
    return docs


def scale_doc(doc, factor):
    """Fabricate a uniformly slower copy of one sweep document."""
    slowed = copy.deepcopy(doc)
    for key in ("parse_only_mb_per_s", "parse_only_records_per_s"):
        if key in slowed:
            slowed[key] *= factor
    for row in slowed.get("sweep", []):
        for key in (
            "mb_per_s",
            "records_per_s",
            "ingest_records_per_s",
            "query_qps",
            "quiesced_qps",
            "trials_per_s",
        ):
            if key in row:
                row[key] *= factor
    return slowed


def self_test(baseline_docs, tolerance):
    """Prove the gate trips on a synthetic slowdown and passes on equal."""
    if not baseline_docs:
        print("bench-gate self-test: no baselines to test", file=sys.stderr)
        return 2

    equal = compare(baseline_docs, copy.deepcopy(baseline_docs), tolerance)
    if equal:
        print(
            "bench-gate self-test FAILED: identical run reported regressions:",
            file=sys.stderr,
        )
        for line in equal:
            print("  " + line, file=sys.stderr)
        return 1

    # 20% trips the default-tolerance files; files with a wider per-file
    # tolerance (BENCH_serve.json) are checked with their own margin below.
    slowed = {
        name: scale_doc(doc, 0.80) for name, doc in baseline_docs.items()
    }
    tripped = compare(baseline_docs, slowed, tolerance)
    if not tripped:
        print(
            "bench-gate self-test FAILED: 20%% synthetic slowdown passed the "
            "gate at %.0f%% tolerance" % (100.0 * tolerance),
            file=sys.stderr,
        )
        return 1

    for name, file_tolerance in FILE_TOLERANCE.items():
        if name not in baseline_docs:
            continue
        factor = 1.0 - file_tolerance - 0.1
        collapsed = {name: scale_doc(baseline_docs[name], factor)}
        if not compare({name: baseline_docs[name]}, collapsed, tolerance):
            print(
                "bench-gate self-test FAILED: %.0f%% collapse in %s passed "
                "its %.0f%% gate"
                % (100.0 * (1.0 - factor), name, 100.0 * file_tolerance),
                file=sys.stderr,
            )
            return 1

    print(
        "bench-gate self-test OK: identical run passes, 20%% slowdown trips "
        "%d metric(s), e.g.:" % len(tripped)
    )
    print("  " + tripped[0])
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--fresh-dir")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    baseline_docs = load_dir(args.baseline_dir, required=False)
    if not baseline_docs:
        print(
            "bench-gate: no BENCH_*.json baselines in %s" % args.baseline_dir,
            file=sys.stderr,
        )
        return 2

    if args.self_test:
        return self_test(baseline_docs, args.tolerance)

    if not args.fresh_dir:
        parser.error("--fresh-dir is required unless --self-test")
    fresh_docs = load_dir(args.fresh_dir, required=False)
    failures = compare(baseline_docs, fresh_docs, args.tolerance)
    if failures:
        print("bench-gate: FAIL", file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 1

    total = sum(len(gated_metrics(n, d)) for n, d in baseline_docs.items())
    print(
        "bench-gate: OK (%d metric(s) within tolerance of baseline)" % total
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
